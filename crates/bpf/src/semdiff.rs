//! Semantic comparison of seccomp decision functions.
//!
//! Draco's hot-path cache is sound only because the slow-path filter is
//! the ground truth — so a profile change (a Docker-import tweak, a hot
//! reload, a DAG recompile) that silently changes semantics is the
//! scariest bug class in the system. This module answers "is the new
//! policy safe to swap in?" *statically*: given two decision functions
//! (filters, filter stacks, or a filter and its [`CompiledDag`]), it
//! classifies their relationship **per syscall** as a [`Relation`]:
//!
//! * [`Relation::Equivalent`] — identical action on every input;
//! * [`Relation::Refines`] — the new side is at least as restrictive
//!   everywhere and strictly more restrictive somewhere (a safe
//!   tightening under the kernel's most-restrictive action precedence);
//! * [`Relation::Relaxes`] — the new side permits something the old
//!   side denied (or weakens a denial);
//! * [`Relation::Incomparable`] — divergence in both directions, a
//!   same-precedence action change (e.g. `errno(1)` → `errno(2)`), or
//!   no ordering provable within the search budget.
//!
//! # How it decides
//!
//! The comparison is layered, cheapest first:
//!
//! 1. **Product abstract interpretation.** Both sides are run through
//!    the [`crate::analysis`] abstract domain (interval × known-bits ×
//!    byte-taint × symbolic-field) with the syscall number and
//!    architecture pinned, each stack element's verdict combined
//!    most-restrictively exactly like kernel filter stacking. If both
//!    sides' decisions are proven constant, the relation follows
//!    directly from [`SeccompAction::precedence`] — proof
//!    [`Proof::Abstract`], with at most one probe execution (to keep
//!    any witness VM-backed).
//! 2. **Bounded concrete search.** Where the abstract verdict is
//!    undecided, a symbolic scan over both programs derives, per
//!    `seccomp_data` field, the masked-compare predicates the decision
//!    can depend on. The compare boundaries (`k`, `k±1`, mask-overwrite
//!    combinations) shrink the input space to an enumerable candidate
//!    grid, which is executed through the *real* VM (or DAG) on both
//!    sides. When every program is mask-compare simple and every
//!    field's predicate family is boundary-complete, the grid provably
//!    covers every decision region and the search is
//!    [`Proof::Exhaustive`] — `Equivalent` may be claimed. Otherwise
//!    the search is [`Proof::Bounded`]: divergences found are real
//!    (they come with a VM-verified [`Witness`]), but equivalence is
//!    *never* claimed from a bounded search.
//!
//! Sides that execute through a [`CompiledDag`] are never resolved by
//! the abstract shortcut alone: the DAG is always concretely exercised,
//! so the compile-time self-check actually runs the artifact it
//! certifies. Candidate derivation still comes from the *source*
//! programs — sound for the self-check because the DAG's decision
//! boundaries are lowered from those very compares.
//!
//! Every reported witness is an input that was actually executed on
//! both sides and observed to diverge — witnesses are never synthesized
//! from the abstract pass alone (differentially property-tested below
//! and fuzzed by the `semdiff_witness` target).

use std::collections::BTreeMap;

use crate::analysis::{self, AnalysisConfig};
use crate::insn::MEMWORDS;
use crate::{
    AluOp, CompiledDag, Cond, Insn, Interpreter, Program, SeccompAction, SeccompData, Src,
    Verdict, AUDIT_ARCH_X86_64, SECCOMP_DATA_SIZE,
};
use draco_syscalls::ArgBitmask;

/// Byte offset where the argument area starts in `seccomp_data`.
const ARG_BYTE_BASE: u32 = 16;

/// Word offsets of the instruction pointer halves.
const IP_LO: u32 = 8;
const IP_HI: u32 = 12;

/// How two decision functions relate, per syscall or overall.
///
/// The four points form a join lattice with [`Relation::Equivalent`] at
/// the bottom and [`Relation::Incomparable`] at the top; per-syscall
/// results [`Relation::join`] into the report-level answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Relation {
    /// Identical action on every input.
    Equivalent,
    /// The new side denies a superset: at least as restrictive
    /// everywhere, strictly more restrictive somewhere. Safe to swap in
    /// under a tightening-only reload policy.
    Refines,
    /// The new side is strictly less restrictive somewhere — it permits
    /// (or weakens the denial of) an input the old side denied.
    Relaxes,
    /// Divergence in both directions, a same-precedence action change,
    /// or no ordering provable within the search budget.
    Incomparable,
}

impl Relation {
    /// Lattice join: the weakest claim consistent with both inputs.
    #[must_use]
    pub const fn join(self, other: Relation) -> Relation {
        match (self, other) {
            (Relation::Equivalent, r) | (r, Relation::Equivalent) => r,
            (Relation::Refines, Relation::Refines) => Relation::Refines,
            (Relation::Relaxes, Relation::Relaxes) => Relation::Relaxes,
            _ => Relation::Incomparable,
        }
    }

    /// True if swapping the old side for the new cannot permit anything
    /// new (`Equivalent` or `Refines`).
    #[must_use]
    pub const fn is_safe_swap(self) -> bool {
        matches!(self, Relation::Equivalent | Relation::Refines)
    }

    /// Stable lower-case name (the CLI's JSON schema uses it).
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            Relation::Equivalent => "equivalent",
            Relation::Refines => "refines",
            Relation::Relaxes => "relaxes",
            Relation::Incomparable => "incomparable",
        }
    }
}

impl core::fmt::Display for Relation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a per-syscall relation was established.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proof {
    /// Both sides' decisions were proven constant by the abstract pass.
    Abstract,
    /// The candidate grid provably covered every decision region of
    /// both sides; the stated relation holds for *all* inputs.
    Exhaustive {
        /// Concrete inputs executed on both sides.
        inputs: u64,
    },
    /// The search was truncated (budget, non-simple program, or
    /// incomplete boundary coverage). Divergences found are real, but
    /// their absence proves nothing — `Equivalent` is never claimed
    /// from a bounded search.
    Bounded {
        /// Concrete inputs executed on both sides.
        inputs: u64,
    },
}

impl Proof {
    /// True if the stated relation is proven for every input.
    #[must_use]
    pub const fn is_proven(self) -> bool {
        matches!(self, Proof::Abstract | Proof::Exhaustive { .. })
    }
}

/// One side's decision on a concrete input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SideDecision {
    /// The side returned this action.
    Action(SeccompAction),
    /// The side faulted at run time (division by a zero `X`).
    Fault,
}

impl core::fmt::Display for SideDecision {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SideDecision::Action(a) => write!(f, "{a}"),
            SideDecision::Fault => f.write_str("fault"),
        }
    }
}

/// A concrete input on which the two sides diverge, together with both
/// decisions. Witnesses are produced by executing *both* sides on the
/// input — never synthesized from the abstract pass alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Witness {
    /// The diverging input.
    pub data: SeccompData,
    /// The old side's decision on it.
    pub old: SideDecision,
    /// The new side's decision on it.
    pub new: SideDecision,
}

/// The per-syscall comparison result.
#[derive(Clone, Copy, Debug)]
pub struct SyscallDiff {
    /// The syscall number the comparison was pinned to.
    pub nr: u32,
    /// The established relation.
    pub relation: Relation,
    /// How it was established.
    pub proof: Proof,
    /// A VM-verified diverging input, when one was found. Relaxing
    /// witnesses are preferred over incomparable ones, which are
    /// preferred over tightening ones.
    pub witness: Option<Witness>,
}

/// The full comparison across all requested syscall numbers.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Join of the per-syscall relations.
    pub relation: Relation,
    /// Per-syscall results, in the order the numbers were given
    /// (duplicates removed).
    pub syscalls: Vec<SyscallDiff>,
    /// Total concrete inputs executed (on both sides each).
    pub inputs_executed: u64,
}

impl DiffReport {
    /// Per-syscall entries whose relation is not `Equivalent`.
    pub fn divergent(&self) -> impl Iterator<Item = &SyscallDiff> {
        self.syscalls
            .iter()
            .filter(|s| s.relation != Relation::Equivalent)
    }

    /// All collected witnesses.
    pub fn witnesses(&self) -> impl Iterator<Item = &Witness> {
        self.syscalls.iter().filter_map(|s| s.witness.as_ref())
    }

    /// True if every per-syscall relation is proven (abstract or
    /// exhaustive) rather than merely bounded-searched.
    #[must_use]
    pub fn fully_proven(&self) -> bool {
        self.syscalls.iter().all(|s| s.proof.is_proven())
    }
}

/// Tuning for the comparison.
#[derive(Clone, Copy, Debug)]
pub struct DiffConfig {
    /// Cap on concrete inputs per syscall number. When the candidate
    /// grid exceeds it, enumeration truncates and the proof degrades to
    /// [`Proof::Bounded`].
    pub max_inputs_per_nr: usize,
    /// Architecture word pinned into every input.
    pub arch: u32,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            max_inputs_per_nr: 4096,
            arch: AUDIT_ARCH_X86_64,
        }
    }
}

// ---------------------------------------------------------------------
// Sides: a decision function plus the programs that inform analysis.
// ---------------------------------------------------------------------

/// How one stack element executes.
#[derive(Clone, Copy, Debug)]
enum Exec<'a> {
    /// Interpret the element's source program.
    Vm,
    /// Run this specialized DAG, compiled from the element's source
    /// program (which still drives the abstract pass and candidate
    /// derivation).
    Dag(&'a CompiledDag),
}

#[derive(Clone, Copy, Debug)]
struct Elem<'a> {
    program: &'a Program,
    exec: Exec<'a>,
}

/// One side of a semantic diff: an ordered stack of filters (each
/// optionally executed through its compiled DAG) whose verdicts combine
/// most-restrictively, exactly like kernel filter stacking. An empty
/// side decides its default action for every input.
#[derive(Clone, Debug)]
pub struct SemSide<'a> {
    elems: Vec<Elem<'a>>,
    default_action: SeccompAction,
}

impl<'a> SemSide<'a> {
    /// A single filter, executed by the reference interpreter.
    #[must_use]
    pub fn filter(program: &'a Program) -> Self {
        SemSide {
            elems: vec![Elem {
                program,
                exec: Exec::Vm,
            }],
            default_action: SeccompAction::KillProcess,
        }
    }

    /// A compiled DAG, executed as such; `source` is the filter it was
    /// compiled from and drives the abstract pass.
    #[must_use]
    pub fn dag(source: &'a Program, dag: &'a CompiledDag) -> Self {
        SemSide {
            elems: vec![Elem {
                program: source,
                exec: Exec::Dag(dag),
            }],
            default_action: SeccompAction::KillProcess,
        }
    }

    /// A stack of interpreted filters combined most-restrictively; an
    /// empty stack decides `default_action`.
    #[must_use]
    pub fn stack(
        programs: impl IntoIterator<Item = &'a Program>,
        default_action: SeccompAction,
    ) -> Self {
        SemSide {
            elems: programs
                .into_iter()
                .map(|program| Elem {
                    program,
                    exec: Exec::Vm,
                })
                .collect(),
            default_action,
        }
    }

    /// A stack of compiled DAGs (each paired with its source filter)
    /// combined most-restrictively.
    #[must_use]
    pub fn dag_stack(
        pairs: impl IntoIterator<Item = (&'a Program, &'a CompiledDag)>,
        default_action: SeccompAction,
    ) -> Self {
        SemSide {
            elems: pairs
                .into_iter()
                .map(|(program, dag)| Elem {
                    program,
                    exec: Exec::Dag(dag),
                })
                .collect(),
            default_action,
        }
    }

    /// Executes the side on one input, combining element verdicts
    /// most-restrictively (kernel stacking semantics).
    fn decide(&self, data: &SeccompData) -> SideDecision {
        if self.elems.is_empty() {
            return SideDecision::Action(self.default_action);
        }
        let mut action = SeccompAction::Allow;
        for elem in &self.elems {
            let out = match elem.exec {
                Exec::Vm => Interpreter::new(elem.program).run(data),
                Exec::Dag(dag) => dag.run(data),
            };
            match out {
                Ok(out) => action = action.most_restrictive(out.action),
                Err(_) => return SideDecision::Fault,
            }
        }
        SideDecision::Action(action)
    }

    /// Abstract summary at one pinned syscall number.
    fn abstract_at(&self, nr: u32, arch: u32) -> SideAbstract {
        let cfg = AnalysisConfig {
            nr: Some(nr),
            arch: Some(arch),
        };
        let mut combined: Option<SeccompAction> = Some(SeccompAction::Allow);
        let mut floor = SeccompAction::Allow;
        let mut mask = ArgBitmask::EMPTY;
        let mut ip_dependent = false;
        let mut may_fault = false;
        for elem in &self.elems {
            let v = analysis::analyze_with(elem.program, &cfg);
            mask = mask.union(v.mask);
            ip_dependent |= v.ip_dependent;
            may_fault |= v.may_fault;
            match v.verdict {
                Verdict::AlwaysAllow => {}
                Verdict::AlwaysDeny(a) => {
                    floor = floor.most_restrictive(a);
                    if let Some(c) = combined.as_mut() {
                        *c = c.most_restrictive(a);
                    }
                }
                Verdict::ArgDependent => combined = None,
            }
        }
        if self.elems.is_empty() {
            combined = Some(self.default_action);
        }
        // A constant KillProcess element pins the whole stack: no other
        // element can out-restrict it, so the stack is constant even if
        // siblings are argument-dependent.
        if combined.is_none() && floor == SeccompAction::KillProcess && !may_fault {
            combined = Some(SeccompAction::KillProcess);
        }
        SideAbstract {
            constant: if may_fault { None } else { combined },
            mask,
            ip_dependent,
            may_fault,
        }
    }

    fn has_dag(&self) -> bool {
        self.elems.iter().any(|e| matches!(e.exec, Exec::Dag(_)))
    }

    /// True if the two sides are structurally identical interpreted
    /// stacks — trivially equivalent without any analysis.
    fn same_structure(&self, other: &SemSide<'_>) -> bool {
        self.elems.len() == other.elems.len()
            && (self.default_action == other.default_action || !self.elems.is_empty())
            && self.elems.iter().zip(other.elems.iter()).all(|(a, b)| {
                matches!((a.exec, b.exec), (Exec::Vm, Exec::Vm))
                    && a.program.insns() == b.program.insns()
            })
    }
}

struct SideAbstract {
    /// `Some(action)` if the side's decision is proven constant at this
    /// syscall number.
    constant: Option<SeccompAction>,
    mask: ArgBitmask,
    ip_dependent: bool,
    may_fault: bool,
}

// ---------------------------------------------------------------------
// Symbolic predicate harvesting (candidate derivation).
// ---------------------------------------------------------------------

/// A compare the decision can branch on: `(field & mask) cond k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Pred {
    mask: u32,
    cond: Cond,
    k: u32,
}

/// What the symbolic scan learned about one program.
#[derive(Clone, Debug, Default)]
struct ProgramFacts {
    /// Predicates grouped by `seccomp_data` word offset.
    preds: BTreeMap<u32, Vec<Pred>>,
    /// Every compare and return was over a constant or a (masked)
    /// direct field load — the shape for which boundary enumeration is
    /// region-complete.
    simple: bool,
}

/// The symbolic value domain of the scan: just enough provenance to map
/// compare constants back to input fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Sym {
    Const(u32),
    /// `field(off) & mask`.
    Masked { off: u32, mask: u32 },
    Opaque,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SymState {
    a: Sym,
    x: Sym,
    mem: [Sym; MEMWORDS],
}

impl SymState {
    fn entry() -> SymState {
        SymState {
            a: Sym::Const(0),
            x: Sym::Const(0),
            mem: [Sym::Const(0); MEMWORDS],
        }
    }

    fn join(&mut self, other: &SymState) {
        fn j(a: &mut Sym, b: Sym) {
            if *a != b {
                *a = Sym::Opaque;
            }
        }
        j(&mut self.a, other.a);
        j(&mut self.x, other.x);
        for (slot, &o) in self.mem.iter_mut().zip(other.mem.iter()) {
            j(slot, o);
        }
    }
}

fn seed(states: &mut [Option<SymState>], target: usize, st: SymState) {
    match &mut states[target] {
        Some(existing) => existing.join(&st),
        slot @ None => *slot = Some(st),
    }
}

/// One forward program-order scan harvesting compare predicates; the
/// forward-only jump DAG guarantees a single pass suffices. No path
/// refinement is done — extra predicates from infeasible paths only add
/// candidates, never unsoundness.
fn scan_program(program: &Program) -> ProgramFacts {
    let insns = program.insns();
    let n = insns.len();
    let mut states: Vec<Option<SymState>> = vec![None; n];
    states[0] = Some(SymState::entry());
    let mut facts = ProgramFacts {
        preds: BTreeMap::new(),
        simple: true,
    };
    for at in 0..n {
        let Some(mut st) = states[at].take() else {
            continue;
        };
        match insns[at] {
            Insn::LdAbs(off) => {
                st.a = Sym::Masked {
                    off,
                    mask: u32::MAX,
                };
                seed(&mut states, at + 1, st);
            }
            Insn::LdImm(k) => {
                st.a = Sym::Const(k);
                seed(&mut states, at + 1, st);
            }
            Insn::LdMem(i) => {
                st.a = st.mem[i as usize];
                seed(&mut states, at + 1, st);
            }
            Insn::LdLen => {
                st.a = Sym::Const(SECCOMP_DATA_SIZE);
                seed(&mut states, at + 1, st);
            }
            Insn::LdxImm(k) => {
                st.x = Sym::Const(k);
                seed(&mut states, at + 1, st);
            }
            Insn::LdxMem(i) => {
                st.x = st.mem[i as usize];
                seed(&mut states, at + 1, st);
            }
            Insn::LdxLen => {
                st.x = Sym::Const(SECCOMP_DATA_SIZE);
                seed(&mut states, at + 1, st);
            }
            Insn::St(i) => {
                st.mem[i as usize] = st.a;
                seed(&mut states, at + 1, st);
            }
            Insn::Stx(i) => {
                st.mem[i as usize] = st.x;
                seed(&mut states, at + 1, st);
            }
            Insn::Alu(op, src) => {
                let rhs = match src {
                    Src::K(k) => Sym::Const(k),
                    Src::X => st.x,
                };
                st.a = match (op, st.a, rhs) {
                    (AluOp::Div, _, rhs) if !matches!(rhs, Sym::Const(k) if k != 0) => {
                        // A symbolic divisor may be zero at run time: a
                        // reachable fault is not a decision the boundary
                        // grid can account for. (Constant zero divisors
                        // are rejected at validation.)
                        facts.simple = false;
                        Sym::Opaque
                    }
                    (_, Sym::Const(a), Sym::Const(b)) => Sym::Const(fold_alu(op, a, b)),
                    (AluOp::And, Sym::Masked { off, mask }, Sym::Const(m)) => Sym::Masked {
                        off,
                        mask: mask & m,
                    },
                    _ => Sym::Opaque,
                };
                seed(&mut states, at + 1, st);
            }
            Insn::Neg => {
                st.a = match st.a {
                    Sym::Const(v) => Sym::Const(v.wrapping_neg()),
                    _ => Sym::Opaque,
                };
                seed(&mut states, at + 1, st);
            }
            Insn::Ja(off) => {
                seed(&mut states, at + 1 + off as usize, st);
            }
            Insn::Jmp { cond, src, jt, jf } => {
                let rhs = match src {
                    Src::K(k) => Sym::Const(k),
                    Src::X => st.x,
                };
                match (st.a, rhs) {
                    (Sym::Masked { off, mask }, Sym::Const(k)) => {
                        let preds = facts.preds.entry(off).or_default();
                        let pred = Pred { mask, cond, k };
                        if !preds.contains(&pred) {
                            preds.push(pred);
                        }
                    }
                    (Sym::Const(_), Sym::Const(_)) => {}
                    // A compare over an opaque value or between two
                    // fields: the boundary grid cannot cover it.
                    _ => facts.simple = false,
                }
                seed(&mut states, at + 1 + jt as usize, st);
                seed(&mut states, at + 1 + jf as usize, st);
            }
            Insn::RetK(_) => {}
            Insn::RetA => {
                if !matches!(st.a, Sym::Const(_)) {
                    // The return value itself tracks an input field:
                    // action boundaries are not compare boundaries.
                    facts.simple = false;
                }
            }
            Insn::Tax => {
                st.x = st.a;
                seed(&mut states, at + 1, st);
            }
            Insn::Txa => {
                st.a = st.x;
                seed(&mut states, at + 1, st);
            }
        }
    }
    facts
}

fn fold_alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        // Constant zero divisors never validate; the `max` only guards
        // the arithmetic here.
        AluOp::Div => a / b.max(1),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Lsh => a.wrapping_shl(b),
        AluOp::Rsh => a.wrapping_shr(b),
    }
}

/// Cap on candidate values per field; exceeding it degrades the proof
/// to bounded.
const MAX_CANDIDATES_PER_FIELD: usize = 96;

/// Builds the candidate grid for one field from its predicate set.
/// Returns the values and whether they provably cover every region the
/// predicates can distinguish.
fn field_candidates(preds: &[Pred]) -> (Vec<u32>, bool) {
    let mut values: Vec<u32> = vec![0, u32::MAX];
    let mut complete = !preds.is_empty();

    // Region-completeness: group predicates by mask. Within one group
    // the boundary pieces (`k`, `k±1`) hit every interval/point atom of
    // a Jeq/Jgt/Jge family, and both atoms of a lone Jset. Across
    // groups, pairwise-disjoint masks let the overwrite closure below
    // reach every combination of per-group atoms. Anything else
    // (overlapping distinct masks, Jset mixed with other compares on
    // one mask) falls back to a bounded search.
    let mut groups: BTreeMap<u32, Vec<Pred>> = BTreeMap::new();
    for p in preds {
        groups.entry(p.mask).or_default().push(*p);
    }
    let masks: Vec<u32> = groups.keys().copied().collect();
    for (i, &m1) in masks.iter().enumerate() {
        if masks[i + 1..].iter().any(|&m2| m1 & m2 != 0) {
            complete = false;
        }
    }
    for group in groups.values() {
        if group.len() > 1 && group.iter().any(|p| p.cond == Cond::Jset) {
            complete = false;
        }
    }

    // Overwrite closure: for each predicate, splice each boundary piece
    // into every existing candidate's mask bits. Two rounds improve
    // coverage when masks overlap (where the proof is bounded anyway).
    for _ in 0..2 {
        for p in preds {
            let pieces: [u32; 3] = match p.cond {
                Cond::Jeq | Cond::Jgt | Cond::Jge => {
                    [p.k, p.k.wrapping_add(1), p.k.wrapping_sub(1)]
                }
                Cond::Jset => [p.k, 0, 0],
            };
            let snapshot_len = values.len();
            for piece in pieces {
                let piece = piece & p.mask;
                for ci in 0..snapshot_len {
                    let v = (values[ci] & !p.mask) | piece;
                    if !values.contains(&v) {
                        if values.len() >= MAX_CANDIDATES_PER_FIELD {
                            complete = false;
                        } else {
                            values.push(v);
                        }
                    }
                }
            }
        }
    }
    values.sort_unstable();
    values.dedup();
    (values, complete)
}

// ---------------------------------------------------------------------
// The per-syscall comparison.
// ---------------------------------------------------------------------

/// Divergence evidence accumulated over the concrete grid for one
/// syscall, keeping the first witness of each kind.
#[derive(Default)]
struct Evidence {
    tighten: Option<Witness>,
    relax: Option<Witness>,
    incomparable: Option<Witness>,
}

impl Evidence {
    fn record(&mut self, data: SeccompData, old: SideDecision, new: SideDecision) {
        let slot = match (old, new) {
            (SideDecision::Action(o), SideDecision::Action(n)) => {
                if o == n {
                    return;
                } else if n.precedence() < o.precedence() {
                    &mut self.tighten
                } else if n.precedence() > o.precedence() {
                    &mut self.relax
                } else {
                    // Same restrictiveness class, different action
                    // (e.g. an errno value change): unordered.
                    &mut self.incomparable
                }
            }
            (SideDecision::Fault, SideDecision::Fault) => return,
            _ => &mut self.incomparable,
        };
        if slot.is_none() {
            *slot = Some(Witness { data, old, new });
        }
    }

    fn classify(self, exhaustive: bool, inputs: u64) -> (Relation, Proof, Option<Witness>) {
        let proof = if exhaustive {
            Proof::Exhaustive { inputs }
        } else {
            Proof::Bounded { inputs }
        };
        match (self.relax, self.incomparable, self.tighten) {
            (Some(w), _, Some(_)) => (Relation::Incomparable, proof, Some(w)),
            (Some(w), _, None) => (Relation::Relaxes, proof, Some(w)),
            (None, Some(w), _) => (Relation::Incomparable, proof, Some(w)),
            (None, None, Some(w)) => (Relation::Refines, proof, Some(w)),
            (None, None, None) if exhaustive => (Relation::Equivalent, proof, None),
            // No divergence found, but the grid was not region-complete:
            // equivalence cannot be claimed from absence of evidence.
            (None, None, None) => (Relation::Incomparable, proof, None),
        }
    }
}

/// Compares two decision functions at the given syscall numbers.
///
/// This is the general entry point; [`diff_filters`] and
/// [`diff_filter_vs_dag`] wrap it for the common shapes, and
/// `draco-profiles` lifts it to whole profile stacks.
#[must_use]
pub fn diff_sides(
    old: &SemSide<'_>,
    new: &SemSide<'_>,
    nrs: &[u32],
    cfg: &DiffConfig,
) -> DiffReport {
    let mut seen = Vec::new();
    let mut syscalls = Vec::new();
    let mut inputs_executed = 0u64;
    let same = old.same_structure(new);
    // Predicate facts are nr-independent; harvest once per program.
    let (old_facts, new_facts): (Vec<ProgramFacts>, Vec<ProgramFacts>) = if same {
        (Vec::new(), Vec::new())
    } else {
        (
            old.elems.iter().map(|e| scan_program(e.program)).collect(),
            new.elems.iter().map(|e| scan_program(e.program)).collect(),
        )
    };
    for &nr in nrs {
        if seen.contains(&nr) {
            continue;
        }
        seen.push(nr);
        if same {
            syscalls.push(SyscallDiff {
                nr,
                relation: Relation::Equivalent,
                proof: Proof::Abstract,
                witness: None,
            });
            continue;
        }
        let (diff, inputs) = diff_nr(old, new, &old_facts, &new_facts, nr, cfg);
        inputs_executed = inputs_executed.saturating_add(inputs);
        syscalls.push(diff);
    }
    let relation = syscalls
        .iter()
        .fold(Relation::Equivalent, |acc, s| acc.join(s.relation));
    DiffReport {
        relation,
        syscalls,
        inputs_executed,
    }
}

fn diff_nr(
    old: &SemSide<'_>,
    new: &SemSide<'_>,
    old_facts: &[ProgramFacts],
    new_facts: &[ProgramFacts],
    nr: u32,
    cfg: &DiffConfig,
) -> (SyscallDiff, u64) {
    let a_old = old.abstract_at(nr, cfg.arch);
    let a_new = new.abstract_at(nr, cfg.arch);

    // Layer 1: the product of the two abstract interpretations decides
    // outright when both sides are constant — except when a side runs a
    // compiled DAG, which must always be concretely exercised (layer 2
    // then costs exactly one probe input, since a constant side has an
    // empty argument mask).
    if !old.has_dag() && !new.has_dag() {
        if let (Some(o), Some(n)) = (a_old.constant, a_new.constant) {
            let relation = relate_actions(o, n);
            let witness = if relation == Relation::Equivalent {
                None
            } else {
                // The decisions are input-independent, so any probe
                // realizes the divergence; executing it keeps the
                // witness VM-backed.
                let data = build_data(nr, cfg.arch, 0, [0; 6]);
                let (wo, wn) = (old.decide(&data), new.decide(&data));
                debug_assert_eq!(wo, SideDecision::Action(o), "abstract constant vs VM");
                debug_assert_eq!(wn, SideDecision::Action(n), "abstract constant vs VM");
                Some(Witness {
                    data,
                    old: wo,
                    new: wn,
                })
            };
            let executed = u64::from(witness.is_some());
            return (
                SyscallDiff {
                    nr,
                    relation,
                    proof: Proof::Abstract,
                    witness,
                },
                executed,
            );
        }
    }

    // Layer 2: bounded concrete search over the derived candidate grid.
    let mut fields: Vec<u32> = Vec::new();
    for mask in [a_old.mask, a_new.mask] {
        let raw = mask.raw();
        for byte in 0..48u32 {
            if raw & (1u64 << byte) != 0 {
                let off = ARG_BYTE_BASE + (byte / 8) * 8 + ((byte % 8) / 4) * 4;
                if !fields.contains(&off) {
                    fields.push(off);
                }
            }
        }
    }
    if a_old.ip_dependent || a_new.ip_dependent {
        fields.push(IP_LO);
        fields.push(IP_HI);
    }
    fields.sort_unstable();
    fields.dedup();

    let mut simple = !a_old.may_fault && !a_new.may_fault;
    for f in old_facts.iter().chain(new_facts.iter()) {
        simple &= f.simple;
    }
    let mut grids: Vec<Vec<u32>> = Vec::with_capacity(fields.len());
    let mut complete = simple;
    for &off in &fields {
        let mut preds: Vec<Pred> = Vec::new();
        for f in old_facts.iter().chain(new_facts.iter()) {
            if let Some(ps) = f.preds.get(&off) {
                for p in ps {
                    if !preds.contains(p) {
                        preds.push(*p);
                    }
                }
            }
        }
        let (values, field_complete) = field_candidates(&preds);
        complete &= field_complete;
        grids.push(values);
    }

    // Odometer over the grid, truncated at the budget.
    let total: u128 = grids.iter().map(|g| g.len() as u128).product();
    let budget = cfg.max_inputs_per_nr.max(1);
    let mut evidence = Evidence::default();
    let mut idx = vec![0usize; grids.len()];
    let mut executed = 0u64;
    loop {
        let mut ip = 0u64;
        let mut args = [0u64; 6];
        for (i, &off) in fields.iter().enumerate() {
            place_field(off, u64::from(grids[i][idx[i]]), &mut ip, &mut args);
        }
        let data = build_data(nr, cfg.arch, ip, args);
        evidence.record(data, old.decide(&data), new.decide(&data));
        executed += 1;
        if executed as usize >= budget || !advance(&mut idx, &grids) {
            break;
        }
    }
    let exhaustive = complete && u128::from(executed) >= total;
    let (relation, proof, witness) = evidence.classify(exhaustive, executed);
    (
        SyscallDiff {
            nr,
            relation,
            proof,
            witness,
        },
        executed,
    )
}

fn place_field(off: u32, value: u64, ip: &mut u64, args: &mut [u64; 6]) {
    match off {
        IP_LO => *ip |= value,
        IP_HI => *ip |= value << 32,
        _ => {
            let arg = ((off - ARG_BYTE_BASE) / 8) as usize;
            let hi_word = (off - ARG_BYTE_BASE) % 8 == 4;
            args[arg] |= if hi_word { value << 32 } else { value };
        }
    }
}

fn advance(idx: &mut [usize], grids: &[Vec<u32>]) -> bool {
    for (slot, grid) in idx.iter_mut().zip(grids.iter()) {
        *slot += 1;
        if *slot < grid.len() {
            return true;
        }
        *slot = 0;
    }
    false
}

fn build_data(nr: u32, arch: u32, ip: u64, args: [u64; 6]) -> SeccompData {
    SeccompData {
        nr: nr as i32,
        arch,
        instruction_pointer: ip,
        args,
    }
}

const fn relate_actions(old: SeccompAction, new: SeccompAction) -> Relation {
    if old.encode() == new.encode() {
        Relation::Equivalent
    } else if new.precedence() < old.precedence() {
        Relation::Refines
    } else if new.precedence() > old.precedence() {
        Relation::Relaxes
    } else {
        Relation::Incomparable
    }
}

/// Compares two filters.
#[must_use]
pub fn diff_filters(old: &Program, new: &Program, nrs: &[u32], cfg: &DiffConfig) -> DiffReport {
    diff_sides(&SemSide::filter(old), &SemSide::filter(new), nrs, cfg)
}

/// Compares a filter against a [`CompiledDag`] compiled from it — the
/// compiler self-check. Any relation but `Equivalent` (or
/// `Incomparable` with no witness, for programs beyond the exhaustive
/// grid) indicates a specialization bug; a witness is a concrete input
/// on which the DAG diverges from its source.
#[must_use]
pub fn diff_filter_vs_dag(
    source: &Program,
    dag: &CompiledDag,
    nrs: &[u32],
    cfg: &DiffConfig,
) -> DiffReport {
    diff_sides(
        &SemSide::filter(source),
        &SemSide::dag(source, dag),
        nrs,
        cfg,
    )
}

/// Derives a syscall-number probe set from the compares both sides
/// perform on the `nr` word: every compared constant, its neighbours,
/// zero, and the extras the caller supplies (typically both profiles'
/// whitelists plus an out-of-table probe). Sorted and deduplicated.
#[must_use]
pub fn interesting_nrs(
    old: &SemSide<'_>,
    new: &SemSide<'_>,
    extra: impl IntoIterator<Item = u32>,
) -> Vec<u32> {
    let mut nrs: Vec<u32> = vec![0];
    for side in [old, new] {
        for elem in &side.elems {
            let facts = scan_program(elem.program);
            if let Some(preds) = facts.preds.get(&SeccompData::OFF_NR) {
                for p in preds {
                    nrs.push(p.k);
                    nrs.push(p.k.wrapping_add(1));
                    nrs.push(p.k.wrapping_sub(1));
                }
            }
        }
    }
    nrs.extend(extra);
    nrs.sort_unstable();
    nrs.dedup();
    nrs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    const ALLOW: u32 = 0x7fff_0000;
    const KILL: u32 = 0x8000_0000;

    fn jeq(k: u32, jt: u8, jf: u8) -> Insn {
        Insn::Jmp {
            cond: Cond::Jeq,
            src: Src::K(k),
            jt,
            jf,
        }
    }

    fn prog(insns: Vec<Insn>) -> Program {
        Program::new(insns).expect("valid program")
    }

    /// Allow the given nrs (any args), kill everything else.
    fn nr_whitelist(nrs: &[u32]) -> Program {
        let mut b = ProgramBuilder::new();
        b.load_nr();
        for (i, &nr) in nrs.iter().enumerate() {
            b.jeq_imm(nr, "allow", format!("n{i}"));
            b.label(format!("n{i}"));
        }
        b.ret_action(SeccompAction::KillProcess);
        b.label("allow");
        b.ret_action(SeccompAction::Allow);
        b.build().expect("valid whitelist")
    }

    #[test]
    fn identical_filters_are_equivalent_abstractly() {
        let a = nr_whitelist(&[0, 1, 39]);
        let b = nr_whitelist(&[0, 1, 39]);
        let report = diff_filters(&a, &b, &[0, 1, 2, 39, 500], &DiffConfig::default());
        assert_eq!(report.relation, Relation::Equivalent);
        assert_eq!(report.inputs_executed, 0, "same structure needs no VM runs");
        assert!(report.fully_proven());
    }

    #[test]
    fn dropping_a_syscall_refines() {
        let old = nr_whitelist(&[0, 1, 39]);
        let new = nr_whitelist(&[0, 39]);
        let nrs = interesting_nrs(&SemSide::filter(&old), &SemSide::filter(&new), [500u32]);
        let report = diff_filters(&old, &new, &nrs, &DiffConfig::default());
        assert_eq!(report.relation, Relation::Refines);
        let w = report.witnesses().next().expect("tightening witness");
        assert_eq!(w.data.nr, 1);
        assert_eq!(w.old, SideDecision::Action(SeccompAction::Allow));
        assert_eq!(w.new, SideDecision::Action(SeccompAction::KillProcess));
    }

    #[test]
    fn adding_a_syscall_relaxes_with_vm_verified_witness() {
        let old = nr_whitelist(&[0]);
        let new = nr_whitelist(&[0, 7]);
        let nrs = interesting_nrs(&SemSide::filter(&old), &SemSide::filter(&new), []);
        let report = diff_filters(&old, &new, &nrs, &DiffConfig::default());
        assert_eq!(report.relation, Relation::Relaxes);
        let w = report.witnesses().next().expect("relaxing witness");
        // Re-execute the witness: it must actually diverge in the VM.
        let o = Interpreter::new(&old).run(&w.data).unwrap();
        let n = Interpreter::new(&new).run(&w.data).unwrap();
        assert_ne!(o.action, n.action);
    }

    #[test]
    fn errno_value_change_is_incomparable() {
        let old = prog(vec![Insn::RetK(SeccompAction::Errno(1).encode())]);
        let new = prog(vec![Insn::RetK(SeccompAction::Errno(2).encode())]);
        let report = diff_filters(&old, &new, &[0], &DiffConfig::default());
        assert_eq!(report.relation, Relation::Incomparable);
        let w = report.witnesses().next().expect("witness");
        assert_eq!(w.old, SideDecision::Action(SeccompAction::Errno(1)));
        assert_eq!(w.new, SideDecision::Action(SeccompAction::Errno(2)));
    }

    #[test]
    fn arg_tightening_is_found_exhaustively() {
        // old: allow nr 5 when arg0-lo == 3 or == 4; new: only == 3.
        let arg0 = SeccompData::off_arg_lo(0);
        let old = prog(vec![
            Insn::LdAbs(arg0),
            jeq(3, 1, 0),
            jeq(4, 0, 1),
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        let new = prog(vec![
            Insn::LdAbs(arg0),
            jeq(3, 0, 1),
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        let report = diff_filters(&old, &new, &[5], &DiffConfig::default());
        assert_eq!(report.relation, Relation::Refines);
        assert!(report.fully_proven(), "simple compares must be exhaustive");
        let w = report.witnesses().next().expect("witness");
        assert_eq!(w.data.args[0], 4);
    }

    #[test]
    fn masked_compare_equivalence_is_proven() {
        // Both allow iff (arg1-lo & 0xff00) == 0x1200, spelled with
        // different surrounding code.
        let arg1 = SeccompData::off_arg_lo(1);
        let a = prog(vec![
            Insn::LdAbs(arg1),
            Insn::Alu(AluOp::And, Src::K(0xff00)),
            jeq(0x1200, 0, 1),
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        let b = prog(vec![
            Insn::LdAbs(arg1),
            Insn::Alu(AluOp::And, Src::K(0xffff)),
            Insn::Alu(AluOp::And, Src::K(0xff00)),
            jeq(0x1200, 1, 0),
            Insn::RetK(KILL),
            Insn::RetK(ALLOW),
        ]);
        let report = diff_filters(&a, &b, &[9], &DiffConfig::default());
        assert_eq!(report.relation, Relation::Equivalent, "{report:?}");
        assert!(report.fully_proven());
        assert!(report.inputs_executed > 0, "decided by the concrete grid");
    }

    #[test]
    fn bounded_search_never_claims_equivalence() {
        // Decision keyed on arg0-lo * 3 == 9: the multiply makes the
        // program non-simple, so even though the bounded search finds no
        // divergence the verdict must stay incomparable, not equivalent.
        let arg0 = SeccompData::off_arg_lo(0);
        let a = prog(vec![
            Insn::LdAbs(arg0),
            Insn::Alu(AluOp::Mul, Src::K(3)),
            jeq(9, 0, 1),
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        let b = prog(vec![
            Insn::LdAbs(arg0),
            Insn::Alu(AluOp::Mul, Src::K(3)),
            jeq(9, 1, 0),
            Insn::RetK(KILL),
            Insn::RetK(ALLOW),
        ]);
        let report = diff_filters(&a, &b, &[1], &DiffConfig::default());
        assert_eq!(report.relation, Relation::Incomparable);
        assert!(!report.fully_proven());
        assert!(report.witnesses().next().is_none(), "no real divergence");
    }

    #[test]
    fn dag_selfcheck_is_equivalent_and_concretely_exercised() {
        let p = nr_whitelist(&[0, 1, 39, 231]);
        let dag = CompiledDag::compile(&p, &[0, 1, 39, 231]);
        let nrs = [0u32, 1, 2, 38, 39, 40, 231, 5000];
        let report = diff_filter_vs_dag(&p, &dag, &nrs, &DiffConfig::default());
        assert_eq!(report.relation, Relation::Equivalent, "{report:?}");
        assert!(
            report.inputs_executed >= nrs.len() as u64,
            "a DAG side must be executed, not trusted abstractly"
        );
    }

    #[test]
    fn stack_combining_is_most_restrictive() {
        // Stack [allow-all, deny-7] vs the single deny-7 filter.
        let allow_all = prog(vec![Insn::RetK(ALLOW)]);
        let deny7 = prog(vec![
            Insn::LdAbs(0),
            jeq(7, 0, 1),
            Insn::RetK(KILL),
            Insn::RetK(ALLOW),
        ]);
        let stack = SemSide::stack([&allow_all, &deny7], SeccompAction::KillProcess);
        let single = SemSide::filter(&deny7);
        let report = diff_sides(&stack, &single, &[6, 7, 8], &DiffConfig::default());
        assert_eq!(report.relation, Relation::Equivalent, "{report:?}");
    }

    #[test]
    fn empty_side_uses_default_action() {
        let deny_all = prog(vec![Insn::RetK(KILL)]);
        let empty = SemSide::stack([], SeccompAction::KillProcess);
        let report = diff_sides(
            &empty,
            &SemSide::filter(&deny_all),
            &[0, 9],
            &DiffConfig::default(),
        );
        assert_eq!(report.relation, Relation::Equivalent);
    }

    #[test]
    fn constant_kill_element_pins_a_stack() {
        // [kill-all, arg-dependent] is constant KillProcess: the product
        // pass should decide it abstractly, with no concrete runs.
        let kill_all = prog(vec![Insn::RetK(KILL)]);
        let argdep = prog(vec![
            Insn::LdAbs(SeccompData::off_arg_lo(0)),
            jeq(1, 0, 1),
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        let stack = SemSide::stack([&kill_all, &argdep], SeccompAction::KillProcess);
        let single = SemSide::filter(&kill_all);
        let report = diff_sides(&stack, &single, &[3], &DiffConfig::default());
        assert_eq!(report.relation, Relation::Equivalent);
        assert_eq!(report.inputs_executed, 0, "decided abstractly");
    }

    #[test]
    fn interesting_nrs_cover_compare_boundaries() {
        let p = nr_whitelist(&[39]);
        let nrs = interesting_nrs(&SemSide::filter(&p), &SemSide::filter(&p), [1000u32]);
        for expected in [0u32, 38, 39, 40, 1000] {
            assert!(nrs.contains(&expected), "{expected} missing from {nrs:?}");
        }
    }

    #[test]
    fn relation_join_is_a_lattice() {
        use Relation::{Equivalent, Incomparable, Refines, Relaxes};
        for r in [Equivalent, Refines, Relaxes, Incomparable] {
            assert_eq!(Equivalent.join(r), r);
            assert_eq!(r.join(Equivalent), r);
            assert_eq!(r.join(Incomparable), Incomparable);
            assert_eq!(r.join(r), r);
        }
        assert_eq!(Refines.join(Relaxes), Incomparable);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Small valid programs biased toward masked-compare chains over
        /// nr and the first arguments — the shapes real profiles use.
        fn arb_program() -> impl Strategy<Value = Program> {
            let block = (
                prop_oneof![
                    Just(SeccompData::OFF_NR),
                    Just(SeccompData::off_arg_lo(0)),
                    Just(SeccompData::off_arg_hi(0)),
                    Just(SeccompData::off_arg_lo(1)),
                ],
                0u32..6,
                proptest::option::of(1u32..0x300),
            );
            (proptest::collection::vec(block, 1..4), any::<bool>()).prop_map(
                |(blocks, kill_tail)| {
                    let mut b = ProgramBuilder::new();
                    for (i, (off, k, mask)) in blocks.iter().enumerate() {
                        b.insn(Insn::LdAbs(*off));
                        if let Some(m) = mask {
                            b.insn(Insn::Alu(AluOp::And, Src::K(*m)));
                        }
                        b.jeq_imm(*k, "allow", format!("n{i}"));
                        b.label(format!("n{i}"));
                    }
                    b.ret_action(if kill_tail {
                        SeccompAction::KillProcess
                    } else {
                        SeccompAction::Errno(1)
                    });
                    b.label("allow");
                    b.ret_action(SeccompAction::Allow);
                    b.build().expect("generated program is valid")
                },
            )
        }

        proptest! {
            /// Pairs classified `Equivalent` never diverge on random
            /// concrete inputs — the core soundness statement.
            #[test]
            fn equivalent_never_diverges(
                a in arb_program(),
                b in arb_program(),
                probes in proptest::collection::vec(
                    proptest::array::uniform6(0u64..8), 1..24),
            ) {
                let nrs = interesting_nrs(
                    &SemSide::filter(&a), &SemSide::filter(&b), 0..8u32);
                let report = diff_filters(&a, &b, &nrs, &DiffConfig::default());
                for s in &report.syscalls {
                    if s.relation != Relation::Equivalent {
                        continue;
                    }
                    for args in &probes {
                        let data = SeccompData {
                            nr: s.nr as i32,
                            arch: AUDIT_ARCH_X86_64,
                            instruction_pointer: 0,
                            args: *args,
                        };
                        let va = Interpreter::new(&a).run(&data).unwrap().action;
                        let vb = Interpreter::new(&b).run(&data).unwrap().action;
                        prop_assert_eq!(va, vb,
                            "claimed equivalent at nr {} but diverges on {:?}",
                            s.nr, data);
                    }
                }
            }

            /// Every emitted witness re-executes divergently in the VM,
            /// and the recorded decisions match the replay.
            #[test]
            fn witnesses_diverge(a in arb_program(), b in arb_program()) {
                let nrs = interesting_nrs(
                    &SemSide::filter(&a), &SemSide::filter(&b), 0..8u32);
                let report = diff_filters(&a, &b, &nrs, &DiffConfig::default());
                for w in report.witnesses() {
                    let va = Interpreter::new(&a).run(&w.data).unwrap().action;
                    let vb = Interpreter::new(&b).run(&w.data).unwrap().action;
                    prop_assert!(va != vb, "witness {:?} does not diverge", w.data);
                    prop_assert_eq!(SideDecision::Action(va), w.old);
                    prop_assert_eq!(SideDecision::Action(vb), w.new);
                }
            }

            /// A filter never diverges from its own compiled DAG, and no
            /// ordered relation is ever claimed for the pair — the DAG
            /// compiler is semantics-preserving.
            #[test]
            fn dag_selfcheck_never_witnesses(p in arb_program()) {
                let side = SemSide::filter(&p);
                let nrs = interesting_nrs(&side, &side, 0..8u32);
                let dag = CompiledDag::compile(&p, &nrs);
                let report = diff_filter_vs_dag(&p, &dag, &nrs, &DiffConfig::default());
                prop_assert!(report.witnesses().next().is_none(),
                    "DAG diverges from its source: {report:?}");
                for s in &report.syscalls {
                    prop_assert!(
                        matches!(s.relation,
                            Relation::Equivalent | Relation::Incomparable),
                        "ordered relation without witness at nr {}", s.nr);
                }
            }
        }
    }
}
