//! # Draco: cached system-call checking
//!
//! A complete, userspace reproduction of *"Draco: Architectural and
//! Operating System Support for System Call Security"* (MICRO 2020):
//! the software Draco checker (SPT + VAT), the hardware Draco
//! microarchitecture (SLB, STB, temporary buffer) as a timing model, a
//! full classic-BPF seccomp engine, the published profile catalog, the
//! fifteen evaluation workloads, and the harness regenerating every
//! figure and table of the paper's evaluation.
//!
//! This crate is a facade: it re-exports the workspace's crates under
//! one name. Depend on it for everything, or on the individual
//! `draco-*` crates for narrower needs.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`syscalls`] | `draco-syscalls` | x86-64 syscall table, `ArgSet`, 48-bit argument bitmask |
//! | [`obs`] | `draco-obs` | zero-allocation observability: counters, histograms, flow-event ring, `MetricsRegistry` |
//! | [`cuckoo`] | `draco-cuckoo` | CRC-64 (ECMA/¬ECMA) hashing, bounded 2-ary cuckoo tables |
//! | [`bpf`] | `draco-bpf` | cBPF instruction set, validator, interpreter, JIT-model executor |
//! | [`profiles`] | `draco-profiles` | docker-default / gVisor / Firecracker, trace→profile toolkit, filter compilation & stacking |
//! | [`core`] | `draco-core` | **software Draco**: SPT, VAT, the Fig. 4 check workflow |
//! | [`dracod`] | `draco-dracod` | multi-tenant admission service: tenant registry, lifecycle, churn scenario |
//! | [`sim`] | `draco-sim` | **hardware Draco**: SLB/STB/SPT structures, Table-I flows, caches, energy |
//! | [`workloads`] | `draco-workloads` | the 15 benchmarks, trace generation, locality analysis, timing model |
//!
//! # Quickstart
//!
//! ```
//! use draco::core::{CheckPath, DracoChecker};
//! use draco::profiles::docker_default;
//! use draco::syscalls::{ArgSet, SyscallId, SyscallRequest};
//!
//! // Install docker-default, then issue read(3, buf, 64) twice.
//! let mut checker = DracoChecker::from_profile(&docker_default())?;
//! let read = SyscallRequest::new(0x401000, SyscallId::new(0),
//!                                ArgSet::from_slice(&[3, 0xdead_beef, 64]));
//! assert!(checker.check(&read).action.permits()); // filter runs once…
//! let again = checker.check(&read);
//! assert!(again.path.is_cache_hit()); // …then Draco's tables take over.
//! # Ok::<(), draco::core::DracoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use draco_bpf as bpf;
pub use draco_core as core;
pub use draco_cuckoo as cuckoo;
pub use draco_dracod as dracod;
pub use draco_obs as obs;
pub use draco_profiles as profiles;
pub use draco_sim as sim;
pub use draco_syscalls as syscalls;
pub use draco_workloads as workloads;
