//! `dracoctl` — inspect profiles, filters, traces, and checks from the
//! command line.
//!
//! ```text
//! dracoctl profile stats <docker|gvisor|firecracker|PATH.json>
//! dracoctl profile json  <docker|gvisor|firecracker>
//! dracoctl profile disasm <docker|gvisor|firecracker|PATH.json> [--tree]
//! dracoctl analyze <docker|gvisor|firecracker|PATH.json> [--format human|json] [--strict]
//! dracoctl diff <old> <new> [--format human|json] [--witnesses N] [--strict]
//! dracoctl compile <docker|gvisor|firecracker|PATH.json> [--selfcheck]
//! dracoctl check <docker|gvisor|firecracker|PATH.json> <syscall> [arg0 arg1 ...]
//! dracoctl trace gen <workload> [--ops N] [--seed N]        # JSON to stdout
//! dracoctl trace analyze <PATH.json|->                      # Fig. 3-style report
//! dracoctl trace <workload> [--format chrome|folded] [--hw] # stage spans
//! dracoctl stats <workload> [--ops N] [--seed N] [--trace N] [--batch N]
//!                [--json] [--prom]
//! dracoctl stats --quick [PATH]          # summarize the untracked quick bench
//! dracoctl top <workload> [--shards N] [--ops N] [--rounds N] [--deny-every N]
//! dracoctl audit <workload> [--follow] [--format jsonl|human] [--deny-every N]
//! dracoctl prom-lint <PATH|->            # Prometheus text-format checker
//! dracoctl shared-replay <workload> [--threads N] [--ops N] [--warmup N]
//!                        [--seed N] [--mix skewed|uniform] [--batch N] [--json]
//! dracoctl serve [--policy permissive|require-refinement] [--batch N] [--analyzed]
//!                                                           # line protocol on stdin
//! dracoctl bench-service [--tenants N] [--rounds N] [--ops N] [--seed N]
//!                        [--batch N] [--quick] [--json]      # churn scenario
//! dracoctl workloads                                        # list the catalog
//! ```

use std::io::Read as _;

use draco::bpf::{disasm, Verdict};
use draco::core::DracoChecker;
use draco::profiles::{
    analyze_profile, compile_dag, compile_dag_checked, compile_stacked, diff_profiles_with,
    docker_default, firecracker, gvisor_default, profile_from_json, profile_to_json,
    FilterLayout, MaskAgreement, ProfileAnalysis, ProfileDiff, ProfileKind, ProfileSpec,
    ProfileStats, SelfCheckError,
};
use draco::syscalls::{ArgSet, SyscallId, SyscallRequest, SyscallTable};
use draco::workloads::timing::profile_for_trace;
use draco::workloads::{catalog, LocalityReport, SyscallTrace, TraceGenerator};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = run(&args);
    std::process::exit(code);
}

fn run(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("profile") => profile_cmd(&args[1..]),
        Some("analyze") => analyze_cmd(&args[1..]),
        Some("diff") => diff_cmd(&args[1..]),
        Some("compile") => compile_cmd(&args[1..]),
        Some("check") => check_cmd(&args[1..]),
        Some("trace") => trace_cmd(&args[1..]),
        Some("stats") => stats_cmd(&args[1..]),
        Some("top") => top_cmd(&args[1..]),
        Some("audit") => audit_cmd(&args[1..]),
        Some("prom-lint") => prom_lint_cmd(&args[1..]),
        Some("shared-replay") => shared_replay_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("bench-service") => bench_service_cmd(&args[1..]),
        Some("workloads") => {
            for spec in catalog::all() {
                println!(
                    "{:<20} {:<6} {:>2} syscalls in mix, ~{} ns/op",
                    spec.name,
                    spec.class.to_string(),
                    spec.mix.len(),
                    spec.compute_ns_per_op
                );
            }
            0
        }
        _ => {
            eprintln!(
                "usage: dracoctl <profile|analyze|diff|compile|check|trace|stats|top|audit|prom-lint|workloads> ...\n\
                 \x20 profile stats|json|disasm <docker|gvisor|firecracker|PATH.json>\n\
                 \x20 analyze <profile> [--format human|json] [--strict]\n\
                 \x20 diff <old> <new> [--format human|json] [--witnesses N] [--strict]\n\
                 \x20 compile <profile> [--selfcheck]\n\
                 \x20 check <profile> <syscall> [args...]\n\
                 \x20 trace gen <workload> [--ops N] [--seed N]\n\
                 \x20 trace analyze <PATH.json|->\n\
                 \x20 trace <workload> [--format chrome|folded] [--ops N] [--seed N]\n\
                 \x20       [--sample N] [--hw] [--out PATH]\n\
                 \x20 stats <workload> [--ops N] [--seed N] [--trace N] [--batch N]\n\
                 \x20       [--json] [--prom]\n\
                 \x20 stats --quick [PATH]   (summarize target/BENCH_throughput.quick.json)\n\
                 \x20 top <workload> [--shards N] [--ops N] [--warmup N] [--seed N]\n\
                 \x20     [--rounds N] [--window N] [--deny-every N] [--batch N] [--dag]\n\
                 \x20 audit <workload> [--follow] [--format jsonl|human] [--shards N]\n\
                 \x20       [--ops N] [--warmup N] [--seed N] [--rounds N] [--deny-every N]\n\
                 \x20       [--capacity N] [--burst N] [--refill N]\n\
                 \x20 prom-lint <PATH|->\n\
                 \x20 shared-replay <workload> [--threads N] [--ops N] [--warmup N]\n\
                 \x20               [--seed N] [--mix skewed|uniform] [--batch N] [--json]\n\
                 \x20 serve [--policy permissive|require-refinement] [--batch N] [--analyzed]\n\
                 \x20 bench-service [--tenants N] [--rounds N] [--ops N] [--seed N]\n\
                 \x20               [--batch N] [--quick] [--json]\n\
                 \x20 workloads"
            );
            2
        }
    }
}

fn load_profile(name: &str) -> Result<ProfileSpec, String> {
    load_profile_import(name).map(|(profile, _)| profile)
}

/// Like [`load_profile`], but also returns the syscall names a Docker
/// import skipped (unknown on this architecture); empty for catalog and
/// native-schema profiles.
fn load_profile_import(name: &str) -> Result<(ProfileSpec, Vec<String>), String> {
    match name {
        "docker" | "docker-default" => Ok((docker_default(), Vec::new())),
        "gvisor" | "gvisor-default" => Ok((gvisor_default(), Vec::new())),
        "firecracker" => Ok((firecracker(), Vec::new())),
        path => {
            let json = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read `{path}`: {e}"))?;
            // Native schema first, then the Docker/OCI seccomp.json format.
            match profile_from_json(&json) {
                Ok(profile) => Ok((profile, Vec::new())),
                Err(native_err) => {
                    let stem = std::path::Path::new(path)
                        .file_stem()
                        .and_then(|s| s.to_str())
                        .unwrap_or("imported");
                    draco::profiles::import_docker_json(&json, stem)
                        .map(|import| (import.profile, import.skipped))
                        .map_err(|docker_err| {
                            format!(
                                "cannot parse `{path}`: not the native schema                          ({native_err}) nor Docker seccomp.json ({docker_err})"
                            )
                        })
                }
            }
        }
    }
}

fn profile_cmd(args: &[String]) -> i32 {
    let (Some(verb), Some(which)) = (args.first(), args.get(1)) else {
        eprintln!("usage: dracoctl profile <stats|json|disasm> <profile>");
        return 2;
    };
    let profile = match load_profile(which) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    match verb.as_str() {
        "stats" => {
            let stats = ProfileStats::for_profile(&profile);
            println!("{}: {}", profile.name(), stats);
            println!(
                "default action: {}; repeat: {}x",
                profile.default_action(),
                profile.repeat()
            );
            print!("surface by subsystem:");
            for cat in draco::syscalls::Category::ALL {
                let n = stats.category_count(cat);
                if n > 0 {
                    print!(" {cat}={n}");
                }
            }
            println!();
            let stack = compile_stacked(&profile, FilterLayout::Linear).expect("compiles");
            println!(
                "compiles to {} filter(s), {} cBPF instructions",
                stack.len(),
                stack.total_insns()
            );
            0
        }
        "json" => {
            println!("{}", profile_to_json(&profile));
            0
        }
        "disasm" => {
            let layout = if args.iter().any(|a| a == "--tree") {
                FilterLayout::BinaryTree
            } else {
                FilterLayout::Linear
            };
            let stack = compile_stacked(&profile, layout).expect("compiles");
            for (i, program) in stack.programs().iter().enumerate() {
                println!("; filter {} of {} ({} insns)", i + 1, stack.len(), program.len());
                print!("{}", disasm(program));
            }
            0
        }
        other => {
            eprintln!("unknown profile verb `{other}`");
            2
        }
    }
}

/// `dracoctl analyze <profile> [--format human|json] [--strict]` — runs
/// the abstract-interpretation filter analyzer over the profile's
/// compiled stack: per-syscall verdicts, derived SPT argument masks
/// (cross-checked against the authored ones), and the filter lint pass.
///
/// Exit code 0 means the analysis is clean; 1 means it found problems
/// (error lints, derived/authored mask disagreements, verdict classes
/// contradicting the rule shape — or, under `--strict`, any lint at
/// all); 2 is a usage error.
fn analyze_cmd(args: &[String]) -> i32 {
    let Some(which) = args.first() else {
        eprintln!("usage: dracoctl analyze <profile> [--format human|json] [--strict]");
        return 2;
    };
    let mut format = "human".to_owned();
    let mut strict = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                i += 1;
                format = args.get(i).cloned().unwrap_or(format);
            }
            "--strict" => strict = true,
            other => {
                eprintln!("unknown flag `{other}`");
                return 2;
            }
        }
        i += 1;
    }
    if format != "human" && format != "json" {
        eprintln!("--format must be `human` or `json`, got `{format}`");
        return 2;
    }
    let (profile, skipped) = match load_profile_import(which) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let analysis = match analyze_profile(&profile) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot compile `{}`: {e}", profile.name());
            return 1;
        }
    };
    let mut problems = analysis_problems(&analysis, strict);
    if strict {
        // Skipped imports are names the profile *meant* to govern but the
        // importer could not map — unenforced policy, an error in strict
        // mode.
        for name in &skipped {
            problems.push(format!("import skipped unknown syscall `{name}`"));
        }
    }
    if format == "json" {
        println!("{}", analysis_json(&analysis, &problems, &skipped));
    } else {
        print_analysis_human(&analysis, &problems, &skipped);
    }
    i32::from(!problems.is_empty())
}

/// Findings that make an analysis non-clean, as printable strings.
fn analysis_problems(analysis: &ProfileAnalysis, strict: bool) -> Vec<String> {
    let mut problems = Vec::new();
    for fl in analysis.lints() {
        let is_error = fl.lint.kind.severity() == draco::bpf::Severity::Error;
        if is_error || strict {
            problems.push(format!("filter {}: {}", fl.filter, fl.lint));
        }
    }
    for report in analysis.syscalls() {
        let name = syscall_name(report.sid);
        if report.agreement == MaskAgreement::Disagreement {
            problems.push(format!(
                "{name}: derived mask {:#x} reads bytes outside the authored mask {:#x}",
                report.derived_mask.raw(),
                report.authored_mask.map_or(0, |m| m.raw())
            ));
        }
        if !report.matches_spec {
            problems.push(format!(
                "{name}: verdict {} contradicts the rule's shape",
                verdict_label(report.verdict)
            ));
        }
    }
    problems
}

fn syscall_name(sid: draco::syscalls::SyscallId) -> String {
    SyscallTable::shared()
        .get(sid)
        .map_or_else(|| sid.to_string(), |d| d.name().to_owned())
}

fn verdict_label(verdict: Verdict) -> String {
    match verdict {
        Verdict::AlwaysAllow => "always-allow".to_owned(),
        Verdict::AlwaysDeny(action) => format!("always-deny({action})"),
        Verdict::ArgDependent => "arg-dependent".to_owned(),
    }
}

fn print_analysis_human(analysis: &ProfileAnalysis, problems: &[String], skipped: &[String]) {
    let reports = analysis.syscalls();
    let deny = reports
        .iter()
        .filter(|r| matches!(r.verdict, Verdict::AlwaysDeny(_)))
        .count();
    let arg_dep = reports
        .iter()
        .filter(|r| r.verdict == Verdict::ArgDependent)
        .count();
    println!(
        "{}: {} filter(s), {} cBPF instructions, {} syscalls analyzed",
        analysis.name(),
        analysis.filters(),
        analysis.instructions(),
        reports.len()
    );
    println!(
        "verdicts: {} always-allow (no-VAT fast path), {} arg-dependent, {} always-deny",
        analysis.always_allow_count(),
        arg_dep,
        deny
    );
    let (mut matched, mut narrower, mut overridden) = (0usize, 0usize, 0usize);
    for r in reports.iter().filter(|r| r.authored_mask.is_some()) {
        match r.agreement {
            MaskAgreement::Match => matched += 1,
            MaskAgreement::DerivedNarrower => narrower += 1,
            MaskAgreement::Disagreement => overridden += 1,
        }
    }
    println!(
        "derived masks: {matched} exact, {narrower} narrower than authored, {overridden} overridden by authored"
    );
    let interesting: Vec<_> = reports
        .iter()
        .filter(|r| {
            r.verdict != Verdict::AlwaysAllow
                || r.agreement != MaskAgreement::Match
                || !r.matches_spec
                || r.ip_dependent
                || r.may_fault
        })
        .collect();
    if !interesting.is_empty() {
        println!("argument-dependent and flagged syscalls:");
        for r in interesting {
            let mut notes = Vec::new();
            if r.agreement == MaskAgreement::DerivedNarrower {
                notes.push("narrower".to_owned());
            }
            if r.agreement == MaskAgreement::Disagreement {
                notes.push("OVERRIDDEN".to_owned());
            }
            if r.ip_dependent {
                notes.push("ip-dependent".to_owned());
            }
            if r.may_fault {
                notes.push("may-fault".to_owned());
            }
            if !r.matches_spec {
                notes.push("SPEC-MISMATCH".to_owned());
            }
            println!(
                "  {:<18} {:<22} mask {:#014x} ({} bytes){}{}",
                syscall_name(r.sid),
                verdict_label(r.verdict),
                r.derived_mask.raw(),
                r.derived_mask.selected_bytes(),
                if notes.is_empty() { "" } else { "  " },
                notes.join(", ")
            );
        }
    }
    if analysis.lints().is_empty() {
        println!("lints: none");
    } else {
        println!("lints:");
        for fl in analysis.lints() {
            println!("  filter {}: {}", fl.filter, fl.lint);
        }
    }
    for name in skipped {
        println!("warning: import skipped unknown syscall `{name}` (not enforced)");
    }
    if problems.is_empty() {
        println!("clean: yes");
    } else {
        println!("clean: NO ({} problem(s))", problems.len());
        for p in problems {
            println!("  problem: {p}");
        }
    }
}

fn analysis_json(analysis: &ProfileAnalysis, problems: &[String], skipped: &[String]) -> String {
    use serde_json::Value;
    let syscalls: Vec<Value> = analysis
        .syscalls()
        .iter()
        .map(|r| {
            serde_json::json!({
                "syscall": syscall_name(r.sid),
                "nr": u64::from(r.sid.as_u16()),
                "verdict": verdict_label(r.verdict),
                "derived_mask": r.derived_mask.raw(),
                "authored_mask": r.authored_mask.map(|m| m.raw()),
                "agreement": format!("{:?}", r.agreement),
                "matches_spec": r.matches_spec,
                "ip_dependent": r.ip_dependent,
                "may_fault": r.may_fault,
            })
        })
        .collect();
    let lints: Vec<Value> = analysis
        .lints()
        .iter()
        .map(|fl| {
            serde_json::json!({
                "filter": fl.filter as u64,
                "insn": fl.lint.at as u64,
                "message": fl.lint.to_string(),
            })
        })
        .collect();
    let doc = serde_json::json!({
        "schema": "draco-analysis/v1",
        "profile": analysis.name(),
        "filters": analysis.filters() as u64,
        "instructions": analysis.instructions() as u64,
        "always_allow": analysis.always_allow_count() as u64,
        "syscalls": Value::Array(syscalls),
        "lints": Value::Array(lints),
        "skipped_imports": skipped.to_vec(),
        "problems": problems.to_vec(),
        "clean": problems.is_empty(),
    });
    serde_json::to_string_pretty(&doc).expect("analysis serializes")
}

/// `dracoctl diff <old> <new>` — semantically compares two profiles as
/// their installed filter stacks (see `docs/policy-diff.md`): per
/// syscall, `equivalent` / `refines` (the new profile denies a superset
/// — a safe tightening) / `relaxes` / `incomparable`, with divergence
/// witnesses that were re-executed in the concrete VM before being
/// reported. Exit status encodes the overall relation: 0 equivalent,
/// 1 refines, 2 relaxes or incomparable. `--strict` additionally exits
/// 2 when any syscall's relation rests on a truncated (non-proven)
/// search or either profile carries dead whitelist rules.
fn diff_cmd(args: &[String]) -> i32 {
    let (Some(old_name), Some(new_name)) = (args.first(), args.get(1)) else {
        eprintln!(
            "usage: dracoctl diff <old> <new> [--format human|json] [--witnesses N] [--strict]"
        );
        return 2;
    };
    let mut format = "human".to_owned();
    let mut max_witnesses = 5usize;
    let mut strict = false;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--format" if i + 1 < args.len() => {
                format = args[i + 1].clone();
                i += 1;
            }
            "--witnesses" if i + 1 < args.len() => {
                max_witnesses = match args[i + 1].parse() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("--witnesses wants a number, got `{}`", args[i + 1]);
                        return 2;
                    }
                };
                i += 1;
            }
            "--strict" => strict = true,
            other => {
                eprintln!("unknown flag `{other}`");
                return 2;
            }
        }
        i += 1;
    }
    if format != "human" && format != "json" {
        eprintln!("--format must be `human` or `json`, got `{format}`");
        return 2;
    }
    let (old, new) = match (load_profile(old_name), load_profile(new_name)) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return 1;
        }
    };
    // Operator-facing diffs want proofs, not budget-truncated guesses:
    // afford the same concrete budget as the compile-time selfcheck.
    let cfg = draco::bpf::semdiff::DiffConfig {
        max_inputs_per_nr: 1 << 18,
        ..draco::bpf::semdiff::DiffConfig::default()
    };
    let diff = match diff_profiles_with(&old, &new, &cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot compile the profiles: {e}");
            return 1;
        }
    };
    let mut code = match diff.report.relation {
        draco::bpf::semdiff::Relation::Equivalent => 0,
        draco::bpf::semdiff::Relation::Refines => 1,
        draco::bpf::semdiff::Relation::Relaxes
        | draco::bpf::semdiff::Relation::Incomparable => 2,
    };
    let strict_problems = if strict {
        let mut problems = Vec::new();
        if !diff.report.fully_proven() {
            problems.push("some relations rest on a truncated concrete search".to_owned());
        }
        for (side, dead) in [("old", &diff.dead_old), ("new", &diff.dead_new)] {
            for sid in dead {
                problems.push(format!("{side} profile has a dead whitelist rule for {}", syscall_name(*sid)));
            }
        }
        problems
    } else {
        Vec::new()
    };
    if !strict_problems.is_empty() {
        code = 2;
    }
    if format == "json" {
        println!("{}", diff_json(&diff, &strict_problems, max_witnesses, code));
    } else {
        print_diff_human(&diff, &strict_problems, max_witnesses);
    }
    code
}

/// One semdiff proof as a JSON value.
fn proof_json(proof: draco::bpf::semdiff::Proof) -> serde_json::Value {
    use draco::bpf::semdiff::Proof;
    match proof {
        Proof::Abstract => serde_json::json!({"kind": "abstract"}),
        Proof::Exhaustive { inputs } => {
            serde_json::json!({"kind": "exhaustive", "inputs": inputs})
        }
        Proof::Bounded { inputs } => serde_json::json!({"kind": "bounded", "inputs": inputs}),
    }
}

fn diff_json(
    diff: &ProfileDiff,
    strict_problems: &[String],
    max_witnesses: usize,
    exit: i32,
) -> String {
    use draco::bpf::semdiff::Relation;
    let mut witnesses_left = max_witnesses;
    let divergent: Vec<serde_json::Value> = diff
        .report
        .divergent()
        .map(|s| {
            let witness = s.witness.filter(|_| witnesses_left > 0).map(|w| {
                witnesses_left -= 1;
                serde_json::json!({
                    "nr": w.data.nr,
                    "args": w.data.args.to_vec(),
                    "old": w.old.to_string(),
                    "new": w.new.to_string(),
                })
            });
            serde_json::json!({
                "syscall": syscall_name(SyscallId::new(s.nr as u16)),
                "nr": s.nr,
                "relation": s.relation.as_str(),
                "proof": proof_json(s.proof),
                "witness": witness,
            })
        })
        .collect();
    let counts = |rel: Relation| {
        diff.report
            .syscalls
            .iter()
            .filter(|s| s.relation == rel)
            .count() as u64
    };
    let dead = |rules: &[SyscallId]| -> Vec<String> {
        rules.iter().map(|sid| syscall_name(*sid)).collect()
    };
    let doc = serde_json::json!({
        "schema": "draco-semdiff/v1",
        "old": diff.old_name,
        "new": diff.new_name,
        "relation": diff.report.relation.as_str(),
        "safe_swap": diff.is_safe_swap(),
        "fully_proven": diff.report.fully_proven(),
        "inputs_executed": diff.report.inputs_executed,
        "counts": serde_json::json!({
            "equivalent": counts(Relation::Equivalent),
            "refines": counts(Relation::Refines),
            "relaxes": counts(Relation::Relaxes),
            "incomparable": counts(Relation::Incomparable),
        }),
        "divergent": divergent,
        "dead_rules": serde_json::json!({
            "old": dead(&diff.dead_old),
            "new": dead(&diff.dead_new),
        }),
        "strict_problems": strict_problems.to_vec(),
        "exit": exit,
    });
    serde_json::to_string_pretty(&doc).expect("diff serializes")
}

fn print_diff_human(diff: &ProfileDiff, strict_problems: &[String], max_witnesses: usize) {
    use draco::bpf::semdiff::Relation;
    println!(
        "{} → {}: {} ({} concrete inputs executed{})",
        diff.old_name,
        diff.new_name,
        diff.report.relation,
        diff.report.inputs_executed,
        if diff.report.fully_proven() {
            ", all relations proven"
        } else {
            ", some searches truncated"
        }
    );
    let count = |rel: Relation| {
        diff.report
            .syscalls
            .iter()
            .filter(|s| s.relation == rel)
            .count()
    };
    println!(
        "per-syscall: {} equivalent, {} refines, {} relaxes, {} incomparable",
        count(Relation::Equivalent),
        count(Relation::Refines),
        count(Relation::Relaxes),
        count(Relation::Incomparable)
    );
    let mut witnesses_left = max_witnesses;
    for s in diff.report.divergent() {
        let name = syscall_name(SyscallId::new(s.nr as u16));
        print!("  {name} (nr {}): {}", s.nr, s.relation);
        match s.proof {
            draco::bpf::semdiff::Proof::Abstract => print!(" [abstract]"),
            draco::bpf::semdiff::Proof::Exhaustive { inputs } => {
                print!(" [exhaustive over {inputs} inputs]");
            }
            draco::bpf::semdiff::Proof::Bounded { inputs } => {
                print!(" [bounded search, {inputs} inputs]");
            }
        }
        println!();
        if witnesses_left > 0 {
            if let Some(w) = &s.witness {
                witnesses_left -= 1;
                println!(
                    "    witness: args {:?} → old {}, new {}",
                    w.data.args, w.old, w.new
                );
            }
        }
    }
    for (side, dead) in [("old", &diff.dead_old), ("new", &diff.dead_new)] {
        if !dead.is_empty() {
            println!(
                "dead whitelist rules ({side}): {}",
                dead.iter()
                    .map(|sid| syscall_name(*sid))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }
    for p in strict_problems {
        println!("strict problem: {p}");
    }
}

/// `dracoctl compile <profile>` — lowers the profile through the
/// specializing filter compiler and dumps the resulting decision DAG:
/// summary statistics (node/table counts, how many table entries closed
/// to a verdict without a cBPF fallback) followed by the per-node
/// listing with provenance — which filter instruction range each node
/// was specialized from.
fn compile_cmd(args: &[String]) -> i32 {
    let Some(which) = args.first() else {
        eprintln!("usage: dracoctl compile <profile> [--selfcheck]");
        return 2;
    };
    let mut selfcheck = false;
    for arg in &args[1..] {
        if arg == "--selfcheck" {
            selfcheck = true;
        } else {
            eprintln!("unknown flag `{arg}`");
            return 2;
        }
    }
    let (profile, skipped) = match load_profile_import(which) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let stack = if selfcheck {
        match compile_dag_checked(&profile) {
            Ok(s) => {
                println!(
                    "selfcheck: {} DAG(s) proven equivalent to their source filters",
                    s.len()
                );
                s
            }
            Err(e @ SelfCheckError::NotEquivalent { .. }) => {
                eprintln!("selfcheck FAILED: {e}");
                return 2;
            }
            Err(SelfCheckError::Compile(e)) => {
                eprintln!("cannot compile `{}`: {e}", profile.name());
                return 1;
            }
        }
    } else {
        match compile_dag(&profile) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot compile `{}`: {e}", profile.name());
                return 1;
            }
        }
    };
    let stats = stack.stats();
    println!(
        "{}: {} decision DAG(s), {} nodes ({} cmp, {} ret, {} cBPF fallback)",
        profile.name(),
        stack.len(),
        stats.nodes,
        stats.cmp,
        stats.ret,
        stats.fallback
    );
    println!(
        "dispatch: {} table entries, {} closed (verdict without touching cBPF)",
        stats.table_entries, stats.closed_entries
    );
    for name in &skipped {
        println!("warning: import skipped unknown syscall `{name}` (not enforced)");
    }
    print!("{}", stack.dump());
    0
}

fn check_cmd(args: &[String]) -> i32 {
    let (Some(which), Some(syscall)) = (args.first(), args.get(1)) else {
        eprintln!("usage: dracoctl check <profile> <syscall> [args...]");
        return 2;
    };
    let profile = match load_profile(which) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let table = SyscallTable::shared();
    let desc = match table.by_name(syscall) {
        Some(d) => d,
        None => match syscall.parse::<u16>() {
            Ok(nr) if table.get(draco::syscalls::SyscallId::new(nr)).is_some() => {
                table.get(draco::syscalls::SyscallId::new(nr)).expect("checked")
            }
            _ => {
                eprintln!("unknown syscall `{syscall}`");
                return 1;
            }
        },
    };
    let values: Vec<u64> = args[2..]
        .iter()
        .map(|a| parse_u64(a))
        .collect::<Result<_, _>>()
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    if values.len() > 6 {
        eprintln!("at most 6 arguments");
        return 2;
    }
    let req = SyscallRequest::new(0, desc.id(), ArgSet::from_slice(&values));
    let mut checker = DracoChecker::from_profile(&profile).expect("checker builds");
    let first = checker.check(&req);
    let second = checker.check(&req);
    println!(
        "{}({}) under {}: {}",
        desc.name(),
        values
            .iter()
            .map(|v| format!("{v:#x}"))
            .collect::<Vec<_>>()
            .join(", "),
        profile.name(),
        first.action
    );
    println!("  first check : {:?}", first.path);
    println!("  second check: {:?}", second.path);
    i32::from(!first.action.permits())
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| format!("bad numeric argument `{s}`"))
}

/// Replays a generated workload trace through the software checker and
/// prints the merged observability snapshot — the CLI face of the
/// `draco-obs` registry. `--trace N` keeps the last `N` flow
/// classifications in a ring and prints them; `--batch N` drives the
/// replay through the staged [`DracoChecker::check_batch`] path in
/// groups of `N` (decisions are identical to the scalar loop — the
/// batch counters in the snapshot show the staging at work); `--json`
/// emits the raw [`draco::obs::MetricsRegistry`] instead of the human
/// snapshot; `--prom` renders the registry in the Prometheus text
/// format (pipe through `dracoctl prom-lint -` to check it).
///
/// `dracoctl stats --quick [PATH]` takes no workload: it summarizes an
/// untracked quick bench report (`repro throughput --quick`), default
/// path `target/BENCH_throughput.quick.json` at the repo root.
fn stats_cmd(args: &[String]) -> i32 {
    let Some(name) = args.first() else {
        eprintln!(
            "usage: dracoctl stats <workload> [--ops N] [--seed N] [--trace N] [--batch N] [--json] [--prom]\n\
             \x20      dracoctl stats --quick [PATH]"
        );
        return 2;
    };
    if name == "--quick" {
        let path = args.get(1).cloned().unwrap_or_else(|| {
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../target/BENCH_throughput.quick.json"
            )
            .to_owned()
        });
        if args.len() > 2 {
            eprintln!("unknown flag `{}`", args[2]);
            return 2;
        }
        return quick_bench_summary(&path);
    }
    let Some(spec) = catalog::by_name(name) else {
        eprintln!("unknown workload `{name}` (try `dracoctl workloads`)");
        return 1;
    };
    let mut ops = spec.default_ops;
    let mut seed = 0u64;
    let mut ring_cap = 0usize;
    let mut batch = 0usize;
    let mut json = false;
    let mut prom = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--ops" => {
                i += 1;
                ops = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(ops);
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(seed);
            }
            "--trace" => {
                i += 1;
                ring_cap = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(ring_cap);
            }
            "--batch" => {
                i += 1;
                batch = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(batch);
            }
            "--json" => json = true,
            "--prom" => prom = true,
            other => {
                eprintln!("unknown flag `{other}`");
                return 2;
            }
        }
        i += 1;
    }
    let trace = TraceGenerator::new(&spec, seed).generate(ops);
    let profile = profile_for_trace(&trace, ProfileKind::SyscallComplete);
    let mut checker = DracoChecker::from_profile(&profile).expect("checker builds");
    if ring_cap > 0 {
        checker.enable_flow_trace(ring_cap);
    }
    if batch > 0 {
        let requests: Vec<SyscallRequest> = trace.requests().collect();
        let mut out = vec![draco::core::Decision::KILLED; batch];
        for chunk in requests.chunks(batch) {
            checker.check_batch(chunk, &mut out[..chunk.len()]);
        }
    } else {
        for req in trace.requests() {
            checker.check(&req);
        }
    }
    let metrics = checker.metrics();
    if prom {
        print!("{}", draco::obs::render_prometheus(&metrics));
        return 0;
    }
    if json {
        println!("{}", serde_json::to_string_pretty(&metrics).expect("registry serializes"));
        return 0;
    }
    if batch > 0 {
        println!(
            "{name}: {ops} checks replayed in batches of {batch} (seed {seed}, syscall-complete profile)"
        );
    } else {
        println!("{name}: {ops} checks replayed (seed {seed}, syscall-complete profile)");
    }
    println!("{metrics}");
    println!("quantile upper bounds:");
    println!(
        "  probe-length     : {}",
        metrics.cuckoo.probe_length.quantile_summary()
    );
    println!(
        "  reuse-distance   : {}",
        metrics.cuckoo.reuse_distance.quantile_summary()
    );
    println!(
        "  insns/filter-run : {}",
        metrics.checker.insns_per_filter_run.quantile_summary()
    );
    if let Some(ring) = checker.flow_trace() {
        let table = SyscallTable::shared();
        println!(
            "recent flows ({} kept of {} recorded, {} overwritten):",
            ring.len(),
            ring.total_recorded(),
            ring.events_dropped()
        );
        for ev in ring.iter_recent() {
            let name = table
                .get(SyscallId::new(ev.syscall))
                .map_or("?", |d| d.name());
            println!("  #{:<10} {:<18} {}", ev.seq, name, ev.class);
        }
    }
    0
}

/// Summarizes an untracked quick throughput report generically (the
/// CLI has no `draco-bench` dependency, so the JSON is read through
/// `serde_json::Value` and tolerates any `draco-throughput/*` schema).
fn quick_bench_summary(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read `{path}`: {e} (run `repro throughput --quick` first)");
            return 1;
        }
    };
    let doc: serde_json::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("`{path}` is not JSON: {e}");
            return 1;
        }
    };
    let schema = doc.get("schema").and_then(|v| v.as_str()).unwrap_or("");
    if !schema.starts_with("draco-throughput/") {
        eprintln!("`{path}` is not a throughput report (schema `{schema}`)");
        return 1;
    }
    println!(
        "{path}: {schema} — workload {}, {} ops/shard x {} shards (seed {})",
        doc.get("workload").and_then(|v| v.as_str()).unwrap_or("?"),
        doc.get("ops_per_shard").and_then(|v| v.as_u64()).unwrap_or(0),
        doc.get("shards").and_then(|v| v.as_u64()).unwrap_or(0),
        doc.get("seed").and_then(|v| v.as_u64()).unwrap_or(0),
    );
    println!(
        "{:<18} {:>14} {:>14} {:>9} {:>9}",
        "backend", "1-thread", "N-thread", "speedup", "hit-rate"
    );
    for b in doc
        .get("backends")
        .and_then(|v| v.as_array())
        .map_or(&[][..], Vec::as_slice)
    {
        println!(
            "{:<18} {:>14.0} {:>14.0} {:>8.2}x {:>8.1}%",
            b.get("backend").and_then(|v| v.as_str()).unwrap_or("?"),
            b.get("single_thread_checks_per_sec").and_then(|v| v.as_f64()).unwrap_or(0.0),
            b.get("multi_thread_checks_per_sec").and_then(|v| v.as_f64()).unwrap_or(0.0),
            b.get("parallel_speedup").and_then(|v| v.as_f64()).unwrap_or(0.0),
            b.get("cache_hit_rate").and_then(|v| v.as_f64()).unwrap_or(0.0) * 100.0,
        );
    }
    if let Some(ts) = doc.get("timeseries").filter(|v| !v.is_null()) {
        println!(
            "timeseries: {} intervals held ({} pushed, {} dropped), {} denials, audit {} published / {} dropped",
            ts.get("intervals").and_then(|v| v.as_u64()).unwrap_or(0),
            ts.get("intervals_pushed").and_then(|v| v.as_u64()).unwrap_or(0),
            ts.get("intervals_dropped").and_then(|v| v.as_u64()).unwrap_or(0),
            ts.get("denials").and_then(|v| v.as_u64()).unwrap_or(0),
            ts.get("audit_published").and_then(|v| v.as_u64()).unwrap_or(0),
            ts.get("audit_dropped").and_then(|v| v.as_u64()).unwrap_or(0),
        );
    }
    0
}

/// `dracoctl top <workload> [--shards N] [--ops N] [--warmup N]
/// [--seed N] [--rounds N] [--window N] [--deny-every N] [--batch N]
/// [--dag]` — live per-shard table over a rounds-sliced replay. Each
/// round merges the shard registries, seals one window interval, and
/// redraws: sliding-window rates (checks/sec, cache-hit, deny) from the
/// newest intervals, windowed latency quantiles, per-shard progress,
/// and the audit ring's accounting. On a terminal the table refreshes
/// in place; piped output prints one summary line per round.
fn top_cmd(args: &[String]) -> i32 {
    use std::io::IsTerminal as _;

    use draco::workloads::live::{replay_live, LiveConfig, LiveTick};
    use draco::workloads::replay::ReplayBackend;

    let Some(name) = args.first() else {
        eprintln!(
            "usage: dracoctl top <workload> [--shards N] [--ops N] [--warmup N] [--seed N] [--rounds N] [--window N] [--deny-every N] [--batch N] [--dag]"
        );
        return 2;
    };
    let Some(spec) = catalog::by_name(name) else {
        eprintln!("unknown workload `{name}` (try `dracoctl workloads`)");
        return 1;
    };
    let mut cfg = LiveConfig::default();
    let mut batch = 0usize;
    let mut dag = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--shards" => {
                i += 1;
                cfg.replay.shards =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.replay.shards);
            }
            "--ops" => {
                i += 1;
                cfg.replay.ops_per_shard = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(cfg.replay.ops_per_shard);
            }
            "--warmup" => {
                i += 1;
                cfg.replay.warmup_ops =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.replay.warmup_ops);
            }
            "--seed" => {
                i += 1;
                cfg.replay.base_seed =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.replay.base_seed);
            }
            "--rounds" => {
                i += 1;
                cfg.rounds = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.rounds);
            }
            "--window" => {
                i += 1;
                cfg.window_capacity =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.window_capacity);
            }
            "--deny-every" => {
                i += 1;
                cfg.deny_every =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.deny_every);
            }
            "--batch" => {
                i += 1;
                batch = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(batch);
            }
            "--dag" => dag = true,
            other => {
                eprintln!("unknown flag `{other}`");
                return 2;
            }
        }
        i += 1;
    }
    if cfg.replay.shards == 0 || cfg.rounds == 0 || cfg.window_capacity == 0 {
        eprintln!("--shards, --rounds, and --window must be nonzero");
        return 2;
    }
    let backend = if batch > 0 {
        ReplayBackend::DracoBatch { batch }
    } else if dag {
        ReplayBackend::DracoDag
    } else {
        ReplayBackend::DracoSw
    };

    let interactive = std::io::stdout().is_terminal();
    let render = |tick: &LiveTick<'_>| {
        if interactive {
            // Clear and home; redraw the whole table each round.
            print!("\x1b[2J\x1b[H");
        }
        if let Some(r) = tick.window.rates_over_last(5) {
            println!(
                "{name} [{}] round {}/{} — window[{}]: {:.0} checks/s, {:.1}% cache-hit, {:.2}% deny",
                backend.label(),
                tick.round + 1,
                tick.rounds,
                r.intervals,
                r.checks_per_sec,
                r.cache_hit_rate * 100.0,
                r.deny_rate * 100.0,
            );
            if interactive {
                println!("window latency (ns): {}", r.latency_ns.quantile_summary());
            }
        }
        if interactive {
            println!(
                "{:<6} {:>10} {:>10} {:>10} {:>10}",
                "shard", "checks", "allowed", "denials", "cache-hit"
            );
            for s in tick.shards {
                println!(
                    "{:<6} {:>10} {:>10} {:>10} {:>9.1}%",
                    s.shard,
                    s.checks,
                    s.allowed,
                    s.denials,
                    if s.checks > 0 {
                        s.cache_hits as f64 * 100.0 / s.checks as f64
                    } else {
                        0.0
                    }
                );
            }
            println!(
                "audit: {} published, {} dropped ({} ring-full, {} throttled), {} queued",
                tick.audit.events_published(),
                tick.audit.events_dropped(),
                tick.audit.dropped_ring_full(),
                tick.audit.dropped_rate_limited(),
                tick.audit.len()
            );
        }
    };
    let report = replay_live(&spec, ProfileKind::SyscallComplete, backend, &cfg, render);

    println!(
        "{}: {} checks in {} rounds, {} denials ({} audited, {} dropped), {:.0} checks/s overall",
        report.workload,
        report.total_checks(),
        report.rounds,
        report.total_denials(),
        report.audit_published,
        report.audit_dropped,
        if report.wall_ns > 0 {
            report.total_checks() as f64 * 1e9 / report.wall_ns as f64
        } else {
            0.0
        }
    );
    0
}

/// `dracoctl audit <workload> [--follow] [--format jsonl|human]
/// [--shards N] [--ops N] [--warmup N] [--seed N] [--rounds N]
/// [--deny-every N] [--capacity N] [--burst N] [--refill N]` — runs a
/// live replay and prints its denial-audit stream. By default every 8th
/// measured request is perturbed into a guaranteed denial
/// (`--deny-every 0` replays the trace untouched); `--follow` streams
/// events as each round drains the ring instead of printing them at the
/// end. `jsonl` emits one JSON object per event; `human` a table with
/// resolved syscall names. The accounting summary goes to stderr so
/// JSONL output stays machine-readable; exits 1 if published + dropped
/// does not equal the registry's denial counter.
fn audit_cmd(args: &[String]) -> i32 {
    use draco::obs::AuditEvent;
    use draco::workloads::live::{replay_live, LiveConfig};
    use draco::workloads::replay::ReplayBackend;

    let Some(name) = args.first() else {
        eprintln!(
            "usage: dracoctl audit <workload> [--follow] [--format jsonl|human] [--shards N] [--ops N] [--warmup N] [--seed N] [--rounds N] [--deny-every N] [--capacity N] [--burst N] [--refill N]"
        );
        return 2;
    };
    let Some(spec) = catalog::by_name(name) else {
        eprintln!("unknown workload `{name}` (try `dracoctl workloads`)");
        return 1;
    };
    let mut cfg = LiveConfig {
        deny_every: 8,
        ..LiveConfig::default()
    };
    let mut follow = false;
    let mut format = "human".to_owned();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--shards" => {
                i += 1;
                cfg.replay.shards =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.replay.shards);
            }
            "--ops" => {
                i += 1;
                cfg.replay.ops_per_shard = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(cfg.replay.ops_per_shard);
            }
            "--warmup" => {
                i += 1;
                cfg.replay.warmup_ops =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.replay.warmup_ops);
            }
            "--seed" => {
                i += 1;
                cfg.replay.base_seed =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.replay.base_seed);
            }
            "--rounds" => {
                i += 1;
                cfg.rounds = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.rounds);
            }
            "--deny-every" => {
                i += 1;
                cfg.deny_every =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.deny_every);
            }
            "--capacity" => {
                i += 1;
                cfg.audit_capacity =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.audit_capacity);
            }
            "--burst" => {
                i += 1;
                cfg.audit_burst =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.audit_burst);
            }
            "--refill" => {
                i += 1;
                cfg.audit_refill_per_round = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(cfg.audit_refill_per_round);
            }
            "--format" => {
                i += 1;
                format = args.get(i).cloned().unwrap_or(format);
            }
            "--follow" => follow = true,
            other => {
                eprintln!("unknown flag `{other}`");
                return 2;
            }
        }
        i += 1;
    }
    if format != "jsonl" && format != "human" {
        eprintln!("--format must be `jsonl` or `human`, got `{format}`");
        return 2;
    }
    if cfg.replay.shards == 0 || cfg.rounds == 0 {
        eprintln!("--shards and --rounds must be nonzero");
        return 2;
    }

    let table = SyscallTable::shared();
    let print_event = |ev: &AuditEvent| {
        if format == "jsonl" {
            println!("{}", ev.to_json_line());
        } else {
            let syscall = table
                .get(SyscallId::new(ev.syscall))
                .map_or_else(|| ev.syscall.to_string(), |d| d.name().to_owned());
            println!(
                "{:<6} {:<18} {:<10} {:<10} {}",
                ev.source,
                syscall,
                ev.decision.label(),
                ev.engine.label(),
                ev.provenance.label()
            );
        }
    };
    if format == "human" {
        println!(
            "{:<6} {:<18} {:<10} {:<10} provenance",
            "shard", "syscall", "decision", "engine"
        );
    }
    let report = replay_live(
        &spec,
        ProfileKind::SyscallComplete,
        ReplayBackend::DracoSw,
        &cfg,
        |tick| {
            if follow {
                for ev in tick.events {
                    print_event(ev);
                }
            }
        },
    );
    if !follow {
        for ev in &report.events {
            print_event(ev);
        }
    }
    let denials = report.metrics.checker.denials;
    eprintln!(
        "audit: {} denials — {} published, {} dropped ({} ring-full, {} rate-limited)",
        denials,
        report.audit_published,
        report.audit_dropped,
        report.audit_dropped_ring_full,
        report.audit_dropped_rate_limited
    );
    if report.audit_published + report.audit_dropped != denials {
        eprintln!(
            "ERROR: audit accounting broken: {} + {} != {}",
            report.audit_published, report.audit_dropped, denials
        );
        return 1;
    }
    0
}

/// `dracoctl prom-lint <PATH|->` — validates a Prometheus text-format
/// exposition (`dracoctl stats <w> --prom` output, or any scrape body)
/// with [`draco::obs::validate_exposition`]: per-line syntax plus
/// histogram-family consistency. Exits 0 and reports the family count
/// when clean, 1 with the first error otherwise.
fn prom_lint_cmd(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: dracoctl prom-lint <PATH|->");
        return 2;
    };
    if args.len() > 1 {
        eprintln!("unknown flag `{}`", args[1]);
        return 2;
    }
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).expect("stdin");
        buf
    } else {
        match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read `{path}`: {e}");
                return 1;
            }
        }
    };
    match draco::obs::validate_exposition(&text) {
        Ok(families) => {
            println!("ok: {families} metric families, Prometheus text format");
            0
        }
        Err(e) => {
            eprintln!("invalid exposition: {e}");
            1
        }
    }
}

/// `dracoctl shared-replay <workload> [--threads N] [--ops N]
/// [--warmup N] [--seed N] [--mix skewed|uniform] [--batch N]
/// [--json]` — replays a workload through ONE
/// [`draco::core::SharedDracoProcess`] from N worker threads that share
/// its SPT/VAT (paper §VI), and prints per-thread rates plus the
/// contention counters of the lock-free read path. `skewed` gives every
/// thread the same trace seed (shared hot keys, read-dominated after
/// warmup); `uniform` gives each thread its own seed (disjoint keys,
/// writer-heavy). `--batch N` drives each worker through the staged
/// batch check path in groups of `N`.
fn shared_replay_cmd(args: &[String]) -> i32 {
    use draco::workloads::shared_replay::{
        replay_shared, replay_shared_batched, KeyMix, SharedReplayConfig,
    };

    let Some(name) = args.first() else {
        eprintln!(
            "usage: dracoctl shared-replay <workload> [--threads N] [--ops N] [--warmup N] [--seed N] [--mix skewed|uniform] [--batch N] [--json]"
        );
        return 2;
    };
    let Some(spec) = catalog::by_name(name) else {
        eprintln!("unknown workload `{name}` (try `dracoctl workloads`)");
        return 1;
    };
    let mut cfg = SharedReplayConfig {
        threads: 4,
        ops_per_thread: 5_000,
        warmup_ops: 500,
        base_seed: 0,
        mix: KeyMix::Skewed,
    };
    let mut batch = 0usize;
    let mut json = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                cfg.threads = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.threads);
            }
            "--ops" => {
                i += 1;
                cfg.ops_per_thread =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.ops_per_thread);
            }
            "--warmup" => {
                i += 1;
                cfg.warmup_ops =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.warmup_ops);
            }
            "--seed" => {
                i += 1;
                cfg.base_seed =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.base_seed);
            }
            "--mix" => {
                i += 1;
                cfg.mix = match args.get(i).map(String::as_str) {
                    Some("skewed") => KeyMix::Skewed,
                    Some("uniform") => KeyMix::Uniform,
                    other => {
                        eprintln!(
                            "--mix must be `skewed` or `uniform`, got `{}`",
                            other.unwrap_or("")
                        );
                        return 2;
                    }
                };
            }
            "--batch" => {
                i += 1;
                batch = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(batch);
            }
            "--json" => json = true,
            other => {
                eprintln!("unknown flag `{other}`");
                return 2;
            }
        }
        i += 1;
    }
    if cfg.threads == 0 {
        eprintln!("--threads must be nonzero");
        return 2;
    }

    let report = if batch > 0 {
        replay_shared_batched(&spec, ProfileKind::SyscallComplete, &cfg, batch)
    } else {
        replay_shared(&spec, ProfileKind::SyscallComplete, &cfg)
    };
    if json {
        let doc = serde_json::json!({
            "schema": "draco-shared-replay/v1",
            "workload": report.workload,
            "mix": report.mix.label(),
            "wall_ns": report.wall_ns,
            "checks_per_sec": report.checks_per_sec(),
            "cache_hit_rate": report.cache_hit_rate(),
            "threads": report.threads.iter().map(|t| serde_json::json!({
                "thread": t.thread as u64,
                "seed": t.seed,
                "checks": t.checks,
                "allowed": t.allowed,
                "cache_hits": t.cache_hits,
                "elapsed_ns": t.elapsed_ns,
            })).collect::<Vec<_>>(),
            "metrics": report.metrics,
        });
        println!("{}", serde_json::to_string_pretty(&doc).expect("report serializes"));
        return 0;
    }
    println!(
        "{}: {} threads sharing one process ({} mix, {} ops/thread + {} warmup)",
        report.workload,
        report.threads.len(),
        report.mix.label(),
        cfg.ops_per_thread,
        cfg.warmup_ops
    );
    println!(
        "{:<8} {:>12} {:>8} {:>10} {:>10} {:>10}",
        "thread", "seed", "checks", "allowed", "cache-hit", "ns/check"
    );
    for t in &report.threads {
        println!(
            "{:<8} {:>12} {:>8} {:>10} {:>9.1}% {:>10.0}",
            t.thread,
            t.seed,
            t.checks,
            t.allowed,
            if t.checks > 0 {
                t.cache_hits as f64 * 100.0 / t.checks as f64
            } else {
                0.0
            },
            if t.checks > 0 {
                t.elapsed_ns as f64 / t.checks as f64
            } else {
                0.0
            }
        );
    }
    println!(
        "aggregate: {:.0} checks/sec, {:.1}% cache hits",
        report.checks_per_sec(),
        report.cache_hit_rate() * 100.0
    );
    let c = &report.metrics.checker;
    println!(
        "contention: {} seqlock retries, {} VAT lock waits, {} insert races lost",
        c.seqlock_retries, c.vat_lock_waits, c.insert_races_lost
    );
    println!(
        "sampled latency (ns): {}",
        report.latency_hist().quantile_summary()
    );
    0
}

fn trace_cmd(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("gen") => {
            let Some(name) = args.get(1) else {
                eprintln!("usage: dracoctl trace gen <workload> [--ops N] [--seed N]");
                return 2;
            };
            let Some(spec) = catalog::by_name(name) else {
                eprintln!("unknown workload `{name}` (try `dracoctl workloads`)");
                return 1;
            };
            let mut ops = spec.default_ops;
            let mut seed = 0u64;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--ops" => {
                        i += 1;
                        ops = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(ops);
                    }
                    "--seed" => {
                        i += 1;
                        seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(seed);
                    }
                    other => {
                        eprintln!("unknown flag `{other}`");
                        return 2;
                    }
                }
                i += 1;
            }
            let trace = TraceGenerator::new(&spec, seed).generate(ops);
            println!("{}", trace.to_json());
            0
        }
        Some("analyze") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: dracoctl trace analyze <PATH.json|->");
                return 2;
            };
            let json = if path == "-" {
                let mut buf = String::new();
                std::io::stdin().read_to_string(&mut buf).expect("stdin");
                buf
            } else {
                match std::fs::read_to_string(path) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("cannot read `{path}`: {e}");
                        return 1;
                    }
                }
            };
            let trace = match SyscallTrace::from_json(&json) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot parse trace: {e}");
                    return 1;
                }
            };
            let report = LocalityReport::analyze(&trace);
            println!(
                "{}: {} calls, top-10 coverage {:.1}%",
                trace.workload(),
                report.total_calls(),
                report.top_n_coverage(10) * 100.0
            );
            for row in report.rows().iter().take(10) {
                println!(
                    "  {:<16} {:>6.2}%  {} sets, hot reuse distance {:.0}",
                    row.name,
                    row.fraction * 100.0,
                    row.breakdown.distinct_sets,
                    row.hot_mean_reuse_distance
                );
            }
            0
        }
        Some(name) => span_trace_cmd(name, &args[1..]),
        None => {
            eprintln!("usage: dracoctl trace <gen|analyze|WORKLOAD> ...");
            2
        }
    }
}

/// `dracoctl trace <workload> [--format chrome|folded] [--ops N]
/// [--seed N] [--sample N] [--hw] [--out PATH]` — replays a generated
/// workload under the sampled span tracer and exports the stage spans.
/// Default: the software checker's flow stages (SPT lookup, CRC hash,
/// per-way VAT probes, fallback filter, VAT insert); `--hw` runs the
/// hardware simulator instead, adding the STB/SLB/temporary-buffer
/// stages. `chrome` emits Chrome trace / Perfetto JSON; `folded` emits
/// flamegraph-collapsed `class;stage count` lines.
fn span_trace_cmd(name: &str, args: &[String]) -> i32 {
    use draco::obs::{chrome_trace_json, folded_stacks, SpanTracer};

    let Some(spec) = catalog::by_name(name) else {
        eprintln!("unknown workload `{name}` (try `dracoctl workloads`)");
        return 1;
    };
    let mut ops = spec.default_ops;
    let mut seed = 0u64;
    let mut sample = SpanTracer::DEFAULT_SAMPLE_INTERVAL;
    let mut format = "chrome".to_owned();
    let mut hw = false;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ops" => {
                i += 1;
                ops = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(ops);
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(seed);
            }
            "--sample" => {
                i += 1;
                sample = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(sample);
            }
            "--format" => {
                i += 1;
                format = args.get(i).cloned().unwrap_or(format);
            }
            "--hw" => hw = true,
            "--out" => {
                i += 1;
                out = args.get(i).cloned();
            }
            other => {
                eprintln!("unknown flag `{other}`");
                return 2;
            }
        }
        i += 1;
    }
    if format != "chrome" && format != "folded" {
        eprintln!("--format must be `chrome` or `folded`, got `{format}`");
        return 2;
    }

    let trace = TraceGenerator::new(&spec, seed).generate(ops);
    let profile = profile_for_trace(&trace, ProfileKind::SyscallComplete);
    let spans = if hw {
        let mut core = draco::sim::DracoHwCore::new(draco::sim::SimConfig::table_ii(), &profile)
            .expect("checker builds");
        core.enable_span_trace(SpanTracer::DEFAULT_CAPACITY, sample);
        let _ = core.run(&trace);
        core.take_span_tracer()
            .map(SpanTracer::into_spans)
            .unwrap_or_default()
    } else {
        let mut checker = DracoChecker::from_profile(&profile).expect("checker builds");
        checker.enable_span_trace(SpanTracer::DEFAULT_CAPACITY, sample);
        for req in trace.requests() {
            checker.check(&req);
        }
        checker
            .take_span_tracer()
            .map(SpanTracer::into_spans)
            .unwrap_or_default()
    };
    let text = if format == "chrome" {
        chrome_trace_json(&spans)
    } else {
        folded_stacks(&spans)
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("cannot write `{path}`: {e}");
                return 1;
            }
            eprintln!("wrote {} spans to {path}", spans.len());
        }
        None => print!("{text}"),
    }
    0
}

/// Parses a tenant designator: `tenant:7` or bare `7`.
fn parse_tenant(s: &str) -> Option<draco::dracod::TenantId> {
    let raw = s.strip_prefix("tenant:").unwrap_or(s);
    raw.parse::<u32>().ok().map(draco::dracod::TenantId)
}

/// `dracoctl serve` — drives a [`draco::dracod::DracoService`] over a
/// line protocol on stdin. One command per line:
///
/// ```text
/// register <profile>              allocate a tenant with that profile
/// fork <tenant>                   fork a tenant (cold child)
/// exec <tenant> <profile>         replace a tenant's profile, same pid
/// reload <tenant> <profile>       hot-reload through the policy gate
/// submit <tenant> <syscall> [a..] queue one admission request
/// drain                           run queued requests, print decisions
/// stats [tenant]                  service (or one tenant's) counters
/// tenants                         list live tenants
/// retire <tenant>                 remove a tenant
/// quit                            exit
/// ```
///
/// Profiles resolve like everywhere else in dracoctl: catalog names
/// (`docker`, `gvisor`, `firecracker`) or a path to a native/Docker
/// seccomp JSON. Exit code 0 on `quit`/EOF, 2 on usage errors.
fn serve_cmd(args: &[String]) -> i32 {
    use draco::core::ReloadPolicy;
    use draco::dracod::{DracoService, ServiceConfig, ServiceError};

    let mut cfg = ServiceConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--policy" => {
                i += 1;
                cfg.reload_policy = match args.get(i).map(String::as_str) {
                    Some("permissive") => ReloadPolicy::Permissive,
                    Some("require-refinement") => ReloadPolicy::RequireRefinement,
                    other => {
                        eprintln!(
                            "--policy must be `permissive` or `require-refinement`, got `{}`",
                            other.unwrap_or("")
                        );
                        return 2;
                    }
                };
            }
            "--batch" => {
                i += 1;
                cfg.batch = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.batch);
            }
            "--analyzed" => cfg.analyzed = true,
            other => {
                eprintln!("unknown flag `{other}`");
                return 2;
            }
        }
        i += 1;
    }

    let mut svc = DracoService::new(cfg);
    let table = SyscallTable::shared();
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match std::io::BufRead::read_line(&mut stdin.lock(), &mut line) {
            Ok(0) => break, // EOF ends the session cleanly
            Ok(_) => {}
            Err(e) => {
                eprintln!("stdin: {e}");
                return 1;
            }
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        let reply: Result<String, String> = match words.as_slice() {
            [] | ["#", ..] => continue,
            ["quit"] | ["exit"] => break,
            ["register", which] => load_profile(which)
                .and_then(|p| svc.register(&p).map_err(|e| e.to_string()))
                .map(|id| format!("registered {id}")),
            ["fork", t] => parse_tenant(t)
                .ok_or_else(|| format!("bad tenant `{t}`"))
                .and_then(|id| svc.fork(id).map_err(|e| e.to_string()))
                .map(|child| format!("forked {child}")),
            ["exec", t, which] => parse_tenant(t)
                .ok_or_else(|| format!("bad tenant `{t}`"))
                .and_then(|id| {
                    let p = load_profile(which)?;
                    svc.exec(id, &p).map_err(|e| e.to_string())?;
                    Ok(format!("execed {id} -> {}", p.name()))
                }),
            ["reload", t, which] => parse_tenant(t)
                .ok_or_else(|| format!("bad tenant `{t}`"))
                .and_then(|id| {
                    let p = load_profile(which)?;
                    match svc.reload(id, &p) {
                        Ok(decision) => Ok(format!("reloaded {id}: {decision:?}")),
                        Err(ServiceError::Draco(draco::core::DracoError::ReloadRejected {
                            relation,
                            ..
                        })) => Ok(format!("reload refused for {id}: candidate {relation}")),
                        Err(e) => Err(e.to_string()),
                    }
                }),
            ["submit", t, syscall, rest @ ..] => parse_tenant(t)
                .ok_or_else(|| format!("bad tenant `{t}`"))
                .and_then(|id| {
                    let nr = match table.by_name(syscall) {
                        Some(d) => d.id(),
                        None => syscall
                            .parse::<u16>()
                            .map(draco::syscalls::SyscallId::new)
                            .map_err(|_| format!("unknown syscall `{syscall}`"))?,
                    };
                    let values: Vec<u64> = rest
                        .iter()
                        .map(|a| parse_u64(a))
                        .collect::<Result<_, _>>()?;
                    if values.len() > 6 {
                        return Err("at most 6 arguments".to_owned());
                    }
                    let req = SyscallRequest::new(0, nr, ArgSet::from_slice(&values));
                    svc.submit(id, req).map_err(|e| e.to_string())?;
                    Ok(format!("queued {id} {syscall}"))
                }),
            ["drain"] => {
                let mut lines = Vec::new();
                let summary = svc.drain_with(|tenant, req, decision| {
                    lines.push(format!(
                        "  {tenant} {}({:#x},{:#x},{:#x}) -> {} [{:?}]",
                        req.id.as_u16(),
                        req.args.get(0),
                        req.args.get(1),
                        req.args.get(2),
                        decision.action,
                        decision.path,
                    ));
                });
                Ok(format!(
                    "{}drained {} checks over {} tenants ({} allowed, {} denied, {} cache hits)",
                    lines
                        .iter()
                        .map(|l| format!("{l}\n"))
                        .collect::<String>(),
                    summary.checks,
                    summary.tenants_served,
                    summary.allowed,
                    summary.denials,
                    summary.cache_hits
                ))
            }
            ["stats"] => {
                let c = svc.counters();
                let stats = svc.stats();
                Ok(format!(
                    "tenants: {} live / {} registered / {} forked / {} retired\n\
                     reloads: {} permitted, {} refused\n\
                     checks: {} ({} allowed, {} denied, {:.1}% cache hits)\n\
                     audit: {} published, {} dropped",
                    svc.len(),
                    c.registered,
                    c.forked,
                    c.retired,
                    c.reloads_permitted,
                    c.reloads_refused,
                    c.checks,
                    c.allowed,
                    c.denials,
                    stats.cache_hit_rate() * 100.0,
                    svc.audit_ring().events_published(),
                    svc.audit_ring().events_dropped(),
                ))
            }
            ["stats", t] => parse_tenant(t)
                .ok_or_else(|| format!("bad tenant `{t}`"))
                .and_then(|id| {
                    let snap = svc
                        .snapshot(id)
                        .ok_or_else(|| format!("unknown tenant {id}"))?;
                    Ok(format!(
                        "{id}: profile {}, {} queued, {} checks ({} allowed, {} denied, {} cache hits), latency {}",
                        snap.profile,
                        snap.queued,
                        snap.checks,
                        snap.allowed,
                        snap.denials,
                        snap.cache_hits,
                        snap.latency_ns.quantile_summary(),
                    ))
                }),
            ["tenants"] => Ok(svc
                .snapshots()
                .iter()
                .map(|s| {
                    format!(
                        "{} pid={} profile={} queued={} checks={}\n",
                        s.id, s.pid.0, s.profile, s.queued, s.checks
                    )
                })
                .collect::<String>()
                + &format!("{} live", svc.len())),
            ["retire", t] => parse_tenant(t)
                .ok_or_else(|| format!("bad tenant `{t}`"))
                .and_then(|id| svc.retire(id).map_err(|e| e.to_string()))
                .map(|snap| format!("retired {} after {} checks", snap.id, snap.checks)),
            _ => Err(format!("unknown command `{}`", line.trim())),
        };
        match reply {
            Ok(text) => println!("{text}"),
            Err(text) => println!("error: {text}"),
        }
    }
    0
}

/// `dracoctl bench-service` — runs the seeded churn scenario (tenant
/// arrivals and departures, fork storms, flush-heavy admitted reloads
/// plus refused relaxations, deny-perturbed traffic) and reports
/// aggregate throughput with per-tenant latency quantiles.
fn bench_service_cmd(args: &[String]) -> i32 {
    use draco::dracod::{run_churn, ChurnConfig};

    let mut cfg = ChurnConfig::standard();
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = ChurnConfig::quick(),
            "--tenants" => {
                i += 1;
                cfg.tenants = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.tenants);
            }
            "--rounds" => {
                i += 1;
                cfg.rounds = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.rounds);
            }
            "--ops" => {
                i += 1;
                cfg.ops_per_round =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.ops_per_round);
            }
            "--seed" => {
                i += 1;
                cfg.seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.seed);
            }
            "--batch" => {
                i += 1;
                cfg.batch = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(cfg.batch);
            }
            "--json" => json = true,
            other => {
                eprintln!("unknown flag `{other}`");
                return 2;
            }
        }
        i += 1;
    }
    if cfg.rounds == 0 || cfg.tenants == 0 {
        eprintln!("--tenants and --rounds must be nonzero");
        return 2;
    }

    let report = run_churn(&cfg);
    let section = report.section();
    if json {
        let doc = serde_json::json!({
            "schema": section.schema,
            "service": section,
            "per_tenant": report.per_tenant,
        });
        println!("{}", serde_json::to_string_pretty(&doc).expect("report serializes"));
        return 0;
    }
    println!(
        "churn: {} tenants ({} forked, {} retired) over {} rounds, seed {}",
        section.tenants, section.forks, section.retired, section.rounds, cfg.seed
    );
    println!(
        "reloads: {} admitted (flush-heavy), {} refused by the policy gate",
        section.reloads_permitted, section.reloads_refused
    );
    println!(
        "checks: {} at {:.0}/sec, {:.1}% cache hits, {:.1}% denied",
        section.checks,
        section.checks_per_sec,
        section.cache_hit_rate * 100.0,
        section.deny_rate * 100.0
    );
    println!(
        "audit: {} published, {} dropped (accounted)",
        section.audit_published, section.audit_dropped
    );
    println!(
        "service latency (ns): p50 <= {}, p95 <= {}, p99 <= {} over {} window intervals",
        section.p50_latency_ns,
        section.p95_latency_ns,
        section.p99_latency_ns,
        section.intervals_pushed
    );
    println!("decision digest: {:#018x}", section.decision_digest);
    println!(
        "{:<10} {:<28} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "tenant", "profile", "checks", "denied", "p50-ns", "p95-ns", "p99-ns"
    );
    for t in &report.per_tenant {
        println!(
            "tenant:{:<4} {:<28} {:>8} {:>8} {:>10} {:>10} {:>10}",
            t.id, t.profile, t.checks, t.denials, t.p50_ns, t.p95_ns, t.p99_ns
        );
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn analyze_accepts_every_catalog_profile() {
        for name in ["docker", "gvisor", "firecracker"] {
            assert_eq!(analyze_cmd(&argv(&[name])), 0, "{name} must be clean");
            assert_eq!(
                analyze_cmd(&argv(&[name, "--strict"])),
                0,
                "{name} must be lint-free"
            );
            assert_eq!(analyze_cmd(&argv(&[name, "--format", "json"])), 0);
        }
    }

    #[test]
    fn compile_dumps_every_catalog_profile_and_rejects_bad_usage() {
        for name in ["docker", "gvisor", "firecracker"] {
            assert_eq!(compile_cmd(&argv(&[name])), 0, "{name} must compile");
        }
        assert_eq!(compile_cmd(&argv(&[])), 2);
        assert_eq!(compile_cmd(&argv(&["docker", "--bogus"])), 2);
        assert_eq!(compile_cmd(&argv(&["/nonexistent/profile.json"])), 1);
    }

    #[test]
    fn compile_selfcheck_proves_every_catalog_dag() {
        for name in ["docker", "gvisor", "firecracker"] {
            assert_eq!(
                compile_cmd(&argv(&[name, "--selfcheck"])),
                0,
                "{name} DAG must prove equivalent"
            );
        }
    }

    #[test]
    fn diff_exit_codes_encode_the_relation() {
        // Identical profiles: equivalent, exit 0 (both formats).
        assert_eq!(diff_cmd(&argv(&["docker", "docker"])), 0);
        assert_eq!(diff_cmd(&argv(&["docker", "docker", "--format", "json"])), 0);
        // gvisor → docker relaxes somewhere: exit 2, symmetric direction.
        let forward = diff_cmd(&argv(&["docker", "gvisor"]));
        let backward = diff_cmd(&argv(&["gvisor", "docker"]));
        assert_eq!(forward, 2, "docker→gvisor relaxes at least one syscall");
        assert_eq!(backward, 2, "so the reverse cannot be a pure refinement either");
    }

    #[test]
    fn diff_refines_exits_one() {
        // A strictly tightened profile: drop one rule from firecracker.
        let mut tight = firecracker();
        let dropped = firecracker().rules().next().unwrap().0;
        assert!(tight.deny(dropped));
        let dir = std::env::temp_dir().join("dracoctl_diff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tight.json");
        std::fs::write(&path, profile_to_json(&tight)).unwrap();
        let arg = path.to_str().unwrap().to_owned();
        assert_eq!(diff_cmd(&argv(&["firecracker", &arg])), 1);
        assert_eq!(
            diff_cmd(&argv(&["firecracker", &arg, "--format", "json", "--witnesses", "1"])),
            1
        );
        // The reverse direction is a relaxation.
        assert_eq!(diff_cmd(&argv(&[&arg, "firecracker"])), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn diff_rejects_bad_usage() {
        assert_eq!(diff_cmd(&argv(&[])), 2);
        assert_eq!(diff_cmd(&argv(&["docker"])), 2);
        assert_eq!(diff_cmd(&argv(&["docker", "gvisor", "--format", "xml"])), 2);
        assert_eq!(diff_cmd(&argv(&["docker", "gvisor", "--witnesses", "lots"])), 2);
        assert_eq!(diff_cmd(&argv(&["docker", "gvisor", "--bogus"])), 2);
        assert_eq!(diff_cmd(&argv(&["/nonexistent.json", "docker"])), 1);
    }

    #[test]
    fn diff_strict_flags_dead_rules() {
        use draco::profiles::{ArgPolicy, RuleSource, SyscallRule};
        // A profile with an empty-whitelist (dead) rule is equivalent to
        // itself, but --strict turns the dead rule into exit 2.
        let mut p = firecracker();
        p.allow(
            SyscallId::new(1001),
            SyscallRule {
                args: ArgPolicy::Whitelist {
                    mask: draco::syscalls::ArgBitmask::from_widths([8, 0, 0, 0, 0, 0]),
                    sets: Vec::new(),
                },
                source: RuleSource::Application,
            },
        );
        let dir = std::env::temp_dir().join("dracoctl_diff_dead_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dead.json");
        std::fs::write(&path, profile_to_json(&p)).unwrap();
        let arg = path.to_str().unwrap().to_owned();
        assert_eq!(diff_cmd(&argv(&[&arg, &arg])), 0);
        assert_eq!(diff_cmd(&argv(&[&arg, &arg, "--strict"])), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn analyze_surfaces_skipped_imports_and_strict_makes_them_problems() {
        let dir = std::env::temp_dir().join("dracoctl_skip_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("typo.json");
        std::fs::write(
            &path,
            r#"{"defaultAction": "SCMP_ACT_ERRNO",
                "syscalls": [{"names": ["read", "not_a_syscall"],
                              "action": "SCMP_ACT_ALLOW"}]}"#,
        )
        .unwrap();
        let arg = path.to_str().unwrap();
        // A warning alone does not make the analysis non-clean…
        assert_eq!(analyze_cmd(&argv(&[arg])), 0);
        assert_eq!(analyze_cmd(&argv(&[arg, "--format", "json"])), 0);
        // …but strict mode turns unenforced names into problems.
        assert_eq!(analyze_cmd(&argv(&[arg, "--strict"])), 1);
        let (_, skipped) = load_profile_import(arg).unwrap();
        assert_eq!(skipped, vec!["not_a_syscall".to_owned()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn analyze_rejects_bad_usage() {
        assert_eq!(analyze_cmd(&argv(&[])), 2);
        assert_eq!(analyze_cmd(&argv(&["docker", "--format", "xml"])), 2);
        assert_eq!(analyze_cmd(&argv(&["docker", "--bogus"])), 2);
        assert_eq!(analyze_cmd(&argv(&["/nonexistent/profile.json"])), 1);
    }

    #[test]
    fn shared_replay_runs_and_rejects_bad_usage() {
        assert_eq!(
            shared_replay_cmd(&argv(&[
                "pipe", "--threads", "2", "--ops", "300", "--warmup", "30"
            ])),
            0
        );
        assert_eq!(
            shared_replay_cmd(&argv(&[
                "pipe", "--threads", "2", "--ops", "300", "--warmup", "30", "--mix", "uniform",
                "--json"
            ])),
            0
        );
        assert_eq!(
            shared_replay_cmd(&argv(&[
                "pipe", "--threads", "2", "--ops", "300", "--warmup", "30", "--batch", "16"
            ])),
            0
        );
        assert_eq!(shared_replay_cmd(&argv(&[])), 2);
        assert_eq!(shared_replay_cmd(&argv(&["no-such-workload"])), 1);
        assert_eq!(shared_replay_cmd(&argv(&["pipe", "--mix", "zipf"])), 2);
        assert_eq!(shared_replay_cmd(&argv(&["pipe", "--threads", "0"])), 2);
        assert_eq!(shared_replay_cmd(&argv(&["pipe", "--bogus"])), 2);
    }

    #[test]
    fn stats_replays_batched_and_scalar() {
        assert_eq!(stats_cmd(&argv(&["pipe", "--ops", "400"])), 0);
        assert_eq!(stats_cmd(&argv(&["pipe", "--ops", "400", "--batch", "32"])), 0);
        assert_eq!(
            stats_cmd(&argv(&["pipe", "--ops", "400", "--batch", "32", "--json"])),
            0
        );
        assert_eq!(stats_cmd(&argv(&["pipe", "--ops", "400", "--prom"])), 0);
    }

    #[test]
    fn stats_quick_summarizes_a_bench_report() {
        let dir = std::env::temp_dir().join("dracoctl_quick_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quick.json");
        std::fs::write(
            &path,
            r#"{"schema":"draco-throughput/v7","workload":"pipe",
                "ops_per_shard":5000,"warmup_ops":1000,"seed":2020,"shards":2,
                "backends":[{"backend":"draco-sw",
                             "single_thread_checks_per_sec":1e6,
                             "multi_thread_checks_per_sec":2e6,
                             "parallel_speedup":2.0,"cache_hit_rate":0.9}],
                "timeseries":{"schema":"draco-timeseries/v1","rounds":16,
                              "intervals":16,"intervals_pushed":16,
                              "intervals_dropped":0,"checks":10000,
                              "denials":1250,"deny_every":8,
                              "audit_published":1250,"audit_dropped":0,
                              "checks_per_sec":1e6,"cache_hit_rate":0.9,
                              "deny_rate":0.125}}"#,
        )
        .unwrap();
        let arg = path.to_str().unwrap();
        assert_eq!(stats_cmd(&argv(&["--quick", arg])), 0);
        assert_eq!(stats_cmd(&argv(&["--quick", arg, "--bogus"])), 2);
        assert_eq!(stats_cmd(&argv(&["--quick", "/nonexistent/quick.json"])), 1);
        let not_a_report = dir.join("other.json");
        std::fs::write(&not_a_report, r#"{"schema":"draco-analysis/v1"}"#).unwrap();
        assert_eq!(
            stats_cmd(&argv(&["--quick", not_a_report.to_str().unwrap()])),
            1
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&not_a_report);
    }

    #[test]
    fn top_runs_every_backend_and_rejects_bad_usage() {
        let base = &["pipe", "--ops", "400", "--warmup", "100", "--rounds", "4"];
        assert_eq!(top_cmd(&argv(base)), 0);
        let mut batched = base.to_vec();
        batched.extend(["--batch", "32", "--deny-every", "9"]);
        assert_eq!(top_cmd(&argv(&batched)), 0);
        let mut dag = base.to_vec();
        dag.push("--dag");
        assert_eq!(top_cmd(&argv(&dag)), 0);
        assert_eq!(top_cmd(&argv(&[])), 2);
        assert_eq!(top_cmd(&argv(&["no-such-workload"])), 1);
        assert_eq!(top_cmd(&argv(&["pipe", "--bogus"])), 2);
        assert_eq!(top_cmd(&argv(&["pipe", "--rounds", "0"])), 2);
    }

    #[test]
    fn audit_streams_in_both_formats_and_accounts() {
        let base = &["sysbench-fio", "--ops", "400", "--warmup", "100", "--rounds", "4"];
        assert_eq!(audit_cmd(&argv(base)), 0);
        let mut jsonl = base.to_vec();
        jsonl.extend(["--format", "jsonl", "--follow"]);
        assert_eq!(audit_cmd(&argv(&jsonl)), 0);
        // Throttled ring: accounting must still balance (exit 0).
        let mut throttled = base.to_vec();
        throttled.extend(["--burst", "4", "--refill", "2"]);
        assert_eq!(audit_cmd(&argv(&throttled)), 0);
        assert_eq!(audit_cmd(&argv(&[])), 2);
        assert_eq!(audit_cmd(&argv(&["no-such-workload"])), 1);
        assert_eq!(audit_cmd(&argv(&["pipe", "--format", "xml"])), 2);
        assert_eq!(audit_cmd(&argv(&["pipe", "--bogus"])), 2);
    }

    #[test]
    fn prom_lint_validates_rendered_expositions() {
        let dir = std::env::temp_dir().join("dracoctl_prom_test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = catalog::by_name("pipe").unwrap();
        let trace = TraceGenerator::new(&spec, 0).generate(400);
        let profile = profile_for_trace(&trace, ProfileKind::SyscallComplete);
        let mut checker = DracoChecker::from_profile(&profile).unwrap();
        for req in trace.requests() {
            checker.check(&req);
        }
        let good = dir.join("metrics.prom");
        std::fs::write(&good, draco::obs::render_prometheus(&checker.metrics())).unwrap();
        assert_eq!(prom_lint_cmd(&argv(&[good.to_str().unwrap()])), 0);
        let bad = dir.join("bad.prom");
        std::fs::write(&bad, "draco_orphan_sample 1\n").unwrap();
        assert_eq!(prom_lint_cmd(&argv(&[bad.to_str().unwrap()])), 1);
        assert_eq!(prom_lint_cmd(&argv(&[])), 2);
        assert_eq!(prom_lint_cmd(&argv(&["/nonexistent.prom"])), 1);
        assert_eq!(
            prom_lint_cmd(&argv(&[good.to_str().unwrap(), "--bogus"])),
            2
        );
        let _ = std::fs::remove_file(&good);
        let _ = std::fs::remove_file(&bad);
    }

    #[test]
    fn analysis_json_is_wellformed_and_carries_the_verdict_table() {
        let profile = docker_default();
        let analysis = analyze_profile(&profile).unwrap();
        let problems = analysis_problems(&analysis, false);
        assert!(problems.is_empty(), "{problems:?}");
        let text = analysis_json(&analysis, &problems, &[]);
        let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("draco-analysis/v1")
        );
        assert_eq!(doc.get("clean").and_then(|v| v.as_bool()), Some(true));
        let syscalls = doc.get("syscalls").and_then(|v| v.as_array()).unwrap();
        assert_eq!(syscalls.len(), profile.allowed_syscall_count());
        assert!(syscalls.iter().any(|s| {
            s.get("syscall").and_then(|v| v.as_str()) == Some("personality")
                && s.get("verdict").and_then(|v| v.as_str()) == Some("arg-dependent")
        }));
    }
}
