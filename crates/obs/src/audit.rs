//! The structured security-audit stream.
//!
//! Dynamic syscall-limitation systems tune and audit policy from a
//! runtime record of *denied* syscalls; Draco's denials previously
//! vanished into one aggregate counter. This module gives every
//! `Deny`/`Errno`/`Kill` verdict a structured [`AuditEvent`] — who
//! (process/shard), what (syscall number), how (decision and errno),
//! and which engine decided it (interpreter / compiled VM / decision
//! DAG, with provenance distinguishing a DAG-closed verdict from a VM
//! fallback).
//!
//! Events flow through an [`AuditRing`]: a lock-free bounded
//! multi-producer/single-consumer ring of packed `AtomicU64` slots
//! (no `unsafe` — each event fits one word, and a set high bit marks a
//! published slot, so `0` always means *vacant*). Producers reserve a
//! sequence number by CAS and publish with a release store; the drain
//! side consumes published slots in order and re-zeros them. A
//! token-bucket rate limiter bounds the event rate under deny storms.
//! Loss is never silent: both ring-full and throttled drops land in an
//! explicit [`AuditRing::events_dropped`] counter, so
//! `events drained + still queued + dropped == denials` holds exactly.
//!
//! Offering an event is zero-allocation and wait-free apart from the
//! reservation CAS — safe on the check hot path's deny branch.

use std::sync::atomic::{AtomicU64, Ordering};

/// The denying verdict a filter engine returned for one syscall.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AuditDecision {
    /// The call was failed with this errno (seccomp `ERRNO`).
    Errno(u16),
    /// The calling thread takes a `SIGSYS` trap (seccomp `TRAP`).
    Trap,
    /// The call was diverted to a tracer with this data word and no
    /// tracer permitted it (seccomp `TRACE`).
    Trace(u16),
    /// The calling thread is killed (seccomp `KILL_THREAD`).
    KillThread,
    /// The whole process is killed (seccomp `KILL_PROCESS`).
    KillProcess,
}

impl AuditDecision {
    /// Stable label used in JSONL output.
    pub const fn label(self) -> &'static str {
        match self {
            AuditDecision::Errno(_) => "errno",
            AuditDecision::Trap => "trap",
            AuditDecision::Trace(_) => "trace",
            AuditDecision::KillThread => "kill-thread",
            AuditDecision::KillProcess => "kill-process",
        }
    }

    /// The 16-bit payload (errno or trace data; 0 for kills and traps).
    pub const fn data(self) -> u16 {
        match self {
            AuditDecision::Errno(v) | AuditDecision::Trace(v) => v,
            _ => 0,
        }
    }

    const fn tag(self) -> u64 {
        match self {
            AuditDecision::Errno(_) => 1,
            AuditDecision::Trap => 2,
            AuditDecision::Trace(_) => 3,
            AuditDecision::KillThread => 4,
            AuditDecision::KillProcess => 5,
        }
    }

    const fn from_tag(tag: u64, data: u16) -> AuditDecision {
        match tag {
            1 => AuditDecision::Errno(data),
            2 => AuditDecision::Trap,
            3 => AuditDecision::Trace(data),
            4 => AuditDecision::KillThread,
            // Unknown tags decode conservatively as the harshest verdict.
            _ => AuditDecision::KillProcess,
        }
    }
}

/// Which miss-engine flavor produced the verdict (the observability
/// mirror of the checker's engine selection).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AuditEngine {
    /// The cBPF interpreter.
    Interpreted,
    /// The compiled cBPF VM.
    #[default]
    Compiled,
    /// The specialized decision DAG.
    Dag,
}

impl AuditEngine {
    /// Stable label used in JSONL output.
    pub const fn label(self) -> &'static str {
        match self {
            AuditEngine::Interpreted => "interpreted",
            AuditEngine::Compiled => "compiled",
            AuditEngine::Dag => "dag",
        }
    }

    const fn tag(self) -> u64 {
        match self {
            AuditEngine::Interpreted => 0,
            AuditEngine::Compiled => 1,
            AuditEngine::Dag => 2,
        }
    }

    const fn from_tag(tag: u64) -> AuditEngine {
        match tag {
            0 => AuditEngine::Interpreted,
            2 => AuditEngine::Dag,
            _ => AuditEngine::Compiled,
        }
    }
}

/// How the verdict was reached inside the engine — whether the
/// analysis-derived DAG closed the decision itself or fell back to the
/// concrete VM.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AuditProvenance {
    /// The concrete cBPF VM executed instructions to decide.
    #[default]
    Vm,
    /// The specialized decision DAG decided without any VM fallback
    /// (zero instructions executed).
    DagClosed,
}

impl AuditProvenance {
    /// Stable label used in JSONL output.
    pub const fn label(self) -> &'static str {
        match self {
            AuditProvenance::Vm => "vm",
            AuditProvenance::DagClosed => "dag-closed",
        }
    }

    const fn tag(self) -> u64 {
        match self {
            AuditProvenance::Vm => 0,
            AuditProvenance::DagClosed => 1,
        }
    }

    const fn from_tag(tag: u64) -> AuditProvenance {
        match tag {
            1 => AuditProvenance::DagClosed,
            _ => AuditProvenance::Vm,
        }
    }
}

/// One denied syscall, as seen by the audit stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AuditEvent {
    /// Process id (per-process checker) or shard/thread id (replay)
    /// that issued the denied call.
    pub source: u16,
    /// Raw syscall number of the denied call.
    pub syscall: u16,
    /// The denying verdict.
    pub decision: AuditDecision,
    /// Which engine flavor ran the filter.
    pub engine: AuditEngine,
    /// Whether the DAG closed the verdict or the VM decided.
    pub provenance: AuditProvenance,
}

// Packed-word layout. Bit 63 marks a published slot so the packed value
// is never zero (zero = vacant); the remaining fields use the low bits.
const SYSCALL_SHIFT: u64 = 0;
const SOURCE_SHIFT: u64 = 16;
const DATA_SHIFT: u64 = 32;
const DECISION_SHIFT: u64 = 48;
const ENGINE_SHIFT: u64 = 51;
const PROVENANCE_SHIFT: u64 = 53;
const PUBLISHED_BIT: u64 = 1 << 63;

impl AuditEvent {
    /// Packs the event into one nonzero word (bit 63 set).
    fn pack(self) -> u64 {
        PUBLISHED_BIT
            | (u64::from(self.syscall) << SYSCALL_SHIFT)
            | (u64::from(self.source) << SOURCE_SHIFT)
            | (u64::from(self.decision.data()) << DATA_SHIFT)
            | (self.decision.tag() << DECISION_SHIFT)
            | (self.engine.tag() << ENGINE_SHIFT)
            | (self.provenance.tag() << PROVENANCE_SHIFT)
    }

    /// Inverse of [`AuditEvent::pack`].
    fn unpack(word: u64) -> AuditEvent {
        let data = ((word >> DATA_SHIFT) & 0xffff) as u16;
        AuditEvent {
            source: ((word >> SOURCE_SHIFT) & 0xffff) as u16,
            syscall: ((word >> SYSCALL_SHIFT) & 0xffff) as u16,
            decision: AuditDecision::from_tag((word >> DECISION_SHIFT) & 0b111, data),
            engine: AuditEngine::from_tag((word >> ENGINE_SHIFT) & 0b11),
            provenance: AuditProvenance::from_tag((word >> PROVENANCE_SHIFT) & 0b11),
        }
    }

    /// Renders the event as one JSON line (no trailing newline).
    ///
    /// All values are numbers or fixed enum labels, so the output needs
    /// no escaping and stays dependency-free:
    /// `{"source":3,"syscall":39,"decision":"errno","data":38,"engine":"dag","provenance":"dag-closed"}`.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"source\":{},\"syscall\":{},\"decision\":\"{}\",\"data\":{},\"engine\":\"{}\",\"provenance\":\"{}\"}}",
            self.source,
            self.syscall,
            self.decision.label(),
            self.decision.data(),
            self.engine.label(),
            self.provenance.label(),
        )
    }
}

/// A lock-free bounded MPSC ring of [`AuditEvent`]s with token-bucket
/// rate limiting (see the module docs for the protocol).
///
/// Producers call [`AuditRing::offer`] concurrently; one consumer at a
/// time drains ([`AuditRing::drain_with`]). Dropped events — ring full
/// or rate-limited — are counted, never silent.
#[derive(Debug)]
pub struct AuditRing {
    slots: Box<[AtomicU64]>,
    capacity: u64,
    /// Next sequence number to reserve (producers CAS this).
    head: AtomicU64,
    /// Next sequence number to consume (single consumer).
    tail: AtomicU64,
    /// Remaining token-bucket tokens (`u64::MAX` burst = unlimited).
    tokens: AtomicU64,
    burst: u64,
    dropped_full: AtomicU64,
    dropped_throttled: AtomicU64,
    published: AtomicU64,
}

impl AuditRing {
    /// Creates an unthrottled ring holding up to `capacity` undrained
    /// events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_rate_limit(capacity, u64::MAX)
    }

    /// Creates a ring whose token bucket holds at most `burst` tokens
    /// (starting full). Each accepted event consumes one token;
    /// [`AuditRing::refill`] adds tokens back. A `burst` of `u64::MAX`
    /// disables throttling.
    ///
    /// The refill cadence is the *caller's* clock — the snapshot pump
    /// refills per interval — so tests stay deterministic: no wall
    /// clock is read here.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_rate_limit(capacity: usize, burst: u64) -> Self {
        assert!(capacity > 0, "audit ring capacity must be nonzero");
        AuditRing {
            slots: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            capacity: capacity as u64,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            tokens: AtomicU64::new(burst),
            burst,
            dropped_full: AtomicU64::new(0),
            dropped_throttled: AtomicU64::new(0),
            published: AtomicU64::new(0),
        }
    }

    /// Offers an event to the stream. Returns `true` if it was
    /// accepted; `false` when throttled or the ring is full (either way
    /// the drop is counted). Never allocates and never blocks.
    pub fn offer(&self, event: AuditEvent) -> bool {
        if self.burst != u64::MAX
            && self
                .tokens
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |t| t.checked_sub(1))
                .is_err()
        {
            self.dropped_throttled.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let packed = event.pack();
        loop {
            let head = self.head.load(Ordering::Acquire);
            let tail = self.tail.load(Ordering::Acquire);
            if head.wrapping_sub(tail) >= self.capacity {
                self.dropped_full.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            if self
                .head
                .compare_exchange_weak(head, head + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // The slot was zeroed by the consumer before `tail`
                // passed `head - capacity`, so this store publishes.
                self.slots[(head % self.capacity) as usize].store(packed, Ordering::Release);
                self.published.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
    }

    /// Adds `tokens` back to the bucket, clamped at the burst size.
    /// No-op for unthrottled rings.
    pub fn refill(&self, tokens: u64) {
        if self.burst == u64::MAX {
            return;
        }
        let _ = self
            .tokens
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |t| {
                Some(t.saturating_add(tokens).min(self.burst))
            });
    }

    /// Drains every currently published event, in offer order, into
    /// `f`. Returns how many were consumed. Allocation-free.
    ///
    /// Single-consumer: exactly one thread may drain at a time (the
    /// snapshot pump / the CLI follower). The slot is zeroed *before*
    /// `tail` advances, so producers — which gate slot reuse on `tail`
    /// — can never have a fresh event wiped by the consumer.
    ///
    /// A producer that reserved a slot but has not yet published is
    /// left in place — its event is picked up by a later drain.
    pub fn drain_with(&self, mut f: impl FnMut(AuditEvent)) -> usize {
        let mut consumed = 0usize;
        loop {
            let tail = self.tail.load(Ordering::Acquire);
            let slot = &self.slots[(tail % self.capacity) as usize];
            let word = slot.load(Ordering::Acquire);
            if word == 0 {
                return consumed; // vacant or not yet published
            }
            slot.store(0, Ordering::Release);
            self.tail.store(tail + 1, Ordering::Release);
            f(AuditEvent::unpack(word));
            consumed += 1;
        }
    }

    /// Drains into a vector (appending). Convenience wrapper over
    /// [`AuditRing::drain_with`].
    pub fn drain(&self, out: &mut Vec<AuditEvent>) -> usize {
        self.drain_with(|ev| out.push(ev))
    }

    /// Events currently queued (published, not yet drained).
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        head.wrapping_sub(tail) as usize
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub const fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Events accepted into the ring over its lifetime.
    pub fn events_published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Total events dropped (ring full + rate limited). The accounting
    /// invariant: `events_published() + events_dropped()` equals the
    /// number of [`AuditRing::offer`] calls — i.e. the denial count
    /// when every denial is offered.
    pub fn events_dropped(&self) -> u64 {
        self.dropped_ring_full()
            .saturating_add(self.dropped_rate_limited())
    }

    /// Events dropped because the ring was full.
    pub fn dropped_ring_full(&self) -> u64 {
        self.dropped_full.load(Ordering::Relaxed)
    }

    /// Events dropped by the token-bucket rate limiter.
    pub fn dropped_rate_limited(&self) -> u64 {
        self.dropped_throttled.load(Ordering::Relaxed)
    }

    /// Tokens currently available (`u64::MAX` when unthrottled).
    pub fn tokens_available(&self) -> u64 {
        if self.burst == u64::MAX {
            u64::MAX
        } else {
            self.tokens.load(Ordering::Relaxed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(source: u16, syscall: u16) -> AuditEvent {
        AuditEvent {
            source,
            syscall,
            decision: AuditDecision::Errno(38),
            engine: AuditEngine::Dag,
            provenance: AuditProvenance::DagClosed,
        }
    }

    #[test]
    fn pack_round_trips_every_variant() {
        let decisions = [
            AuditDecision::Errno(0),
            AuditDecision::Errno(38),
            AuditDecision::Errno(u16::MAX),
            AuditDecision::Trap,
            AuditDecision::Trace(7),
            AuditDecision::KillThread,
            AuditDecision::KillProcess,
        ];
        let engines = [
            AuditEngine::Interpreted,
            AuditEngine::Compiled,
            AuditEngine::Dag,
        ];
        let provs = [AuditProvenance::Vm, AuditProvenance::DagClosed];
        for decision in decisions {
            for engine in engines {
                for provenance in provs {
                    let event = AuditEvent {
                        source: 513,
                        syscall: 59,
                        decision,
                        engine,
                        provenance,
                    };
                    let packed = event.pack();
                    assert_ne!(packed, 0, "published events are never the vacant word");
                    assert_eq!(AuditEvent::unpack(packed), event);
                }
            }
        }
    }

    #[test]
    fn offer_drain_preserves_order_and_content() {
        let ring = AuditRing::with_capacity(8);
        for i in 0..5u16 {
            assert!(ring.offer(ev(i, 100 + i)));
        }
        assert_eq!(ring.len(), 5);
        let mut out = Vec::new();
        assert_eq!(ring.drain(&mut out), 5);
        assert!(ring.is_empty());
        for (i, event) in out.iter().enumerate() {
            assert_eq!(event.source, i as u16);
            assert_eq!(event.syscall, 100 + i as u16);
        }
        assert_eq!(ring.events_published(), 5);
        assert_eq!(ring.events_dropped(), 0);
    }

    #[test]
    fn full_ring_drops_and_accounts() {
        let ring = AuditRing::with_capacity(2);
        assert!(ring.offer(ev(0, 0)));
        assert!(ring.offer(ev(1, 1)));
        assert!(!ring.offer(ev(2, 2)), "third offer must drop");
        assert_eq!(ring.dropped_ring_full(), 1);
        assert_eq!(ring.events_published() + ring.events_dropped(), 3);
        // Draining frees capacity again.
        let mut out = Vec::new();
        ring.drain(&mut out);
        assert!(ring.offer(ev(3, 3)));
        assert_eq!(ring.events_published(), 3);
    }

    #[test]
    fn rate_limiter_enforces_burst_then_refills() {
        let ring = AuditRing::with_rate_limit(64, 3);
        let mut accepted = 0;
        for i in 0..10u16 {
            accepted += u64::from(ring.offer(ev(i, i)));
        }
        assert_eq!(accepted, 3, "burst bound");
        assert_eq!(ring.dropped_rate_limited(), 7);
        assert_eq!(ring.tokens_available(), 0);
        ring.refill(2);
        assert_eq!(ring.tokens_available(), 2);
        assert!(ring.offer(ev(90, 90)));
        assert!(ring.offer(ev(91, 91)));
        assert!(!ring.offer(ev(92, 92)));
        // Refill clamps at the burst size.
        ring.refill(u64::MAX);
        assert_eq!(ring.tokens_available(), 3);
        assert_eq!(
            ring.events_published() + ring.events_dropped(),
            10 + 3,
            "every offer is accounted exactly once"
        );
    }

    #[test]
    fn unthrottled_ring_ignores_refill() {
        let ring = AuditRing::with_capacity(4);
        assert_eq!(ring.tokens_available(), u64::MAX);
        ring.refill(10);
        assert_eq!(ring.tokens_available(), u64::MAX);
    }

    #[test]
    fn json_line_is_stable() {
        let line = ev(3, 39).to_json_line();
        assert_eq!(
            line,
            "{\"source\":3,\"syscall\":39,\"decision\":\"errno\",\"data\":38,\"engine\":\"dag\",\"provenance\":\"dag-closed\"}"
        );
        // And it parses as JSON with the documented fields.
        let parsed: serde_json::Value = serde_json::from_str(&line).expect("valid JSON");
        assert_eq!(parsed["syscall"].as_u64(), Some(39));
        assert_eq!(parsed["decision"].as_str(), Some("errno"));
        assert_eq!(parsed["provenance"].as_str(), Some("dag-closed"));
        let kill = AuditEvent {
            decision: AuditDecision::KillProcess,
            engine: AuditEngine::Interpreted,
            provenance: AuditProvenance::Vm,
            ..ev(0, 1)
        };
        let parsed: serde_json::Value =
            serde_json::from_str(&kill.to_json_line()).expect("valid JSON");
        assert_eq!(parsed["decision"].as_str(), Some("kill-process"));
        assert_eq!(parsed["data"].as_u64(), Some(0));
        assert_eq!(parsed["engine"].as_str(), Some("interpreted"));
    }

    #[test]
    fn concurrent_producers_never_lose_unaccounted_events() {
        let ring = AuditRing::with_capacity(32);
        let producers = 4u64;
        let per_producer = 5_000u64;
        let done = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for p in 0..producers {
                let (ring, done) = (&ring, &done);
                scope.spawn(move || {
                    for i in 0..per_producer {
                        ring.offer(ev(p as u16, (i % 400) as u16));
                    }
                    done.fetch_add(1, Ordering::Release);
                });
            }
            // Concurrent consumer drains while producers run, then
            // until the ring settles empty.
            let (ring, done) = (&ring, &done);
            scope.spawn(move || {
                while done.load(Ordering::Acquire) < producers || !ring.is_empty() {
                    ring.drain_with(|_| {});
                    std::thread::yield_now();
                }
            });
        });
        // Settle: drain what's left.
        let mut rest = Vec::new();
        ring.drain(&mut rest);
        let offers = producers * per_producer;
        assert_eq!(
            ring.events_published() + ring.events_dropped(),
            offers,
            "every offer accepted or counted dropped"
        );
        assert!(ring.is_empty());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = AuditRing::with_capacity(0);
    }

    proptest::proptest! {
        /// Rate-limiter bounds under a deny storm: with burst `b` and
        /// `r` refills of `k` tokens, at most `b + r*k` events are ever
        /// accepted, and acceptances plus drops equal offers exactly.
        #[test]
        fn deny_storm_respects_token_bounds(
            burst in 1u64..32,
            refill in 0u64..16,
            rounds in 1usize..8,
            storm in 1u64..200,
        ) {
            let ring = AuditRing::with_rate_limit(4096, burst);
            let mut offers = 0u64;
            let mut accepted = 0u64;
            for _ in 0..rounds {
                for i in 0..storm {
                    accepted += u64::from(ring.offer(ev(0, (i % 100) as u16)));
                    offers += 1;
                }
                ring.refill(refill);
            }
            let ceiling = burst + (rounds as u64 - 1) * refill.min(burst);
            proptest::prop_assert!(
                accepted <= ceiling.min(offers),
                "accepted {accepted} exceeds token ceiling {ceiling}"
            );
            proptest::prop_assert_eq!(
                ring.events_published() + ring.events_dropped(),
                offers,
                "loss is never silent"
            );
            proptest::prop_assert_eq!(ring.events_published(), accepted);
        }
    }
}
