//! Sampled per-check span tracing with Chrome-trace and flamegraph
//! export.
//!
//! The metrics registry answers *how often* each flow fires; this module
//! answers *where the time goes inside one check* — the software
//! analogue of the paper's Table I stage breakdown. A [`SpanTracer`]
//! deterministically samples whole checks (every `sample_interval`-th
//! check by sequence number, so same-seed runs sample the same checks)
//! and records one [`Span`] per pipeline stage the check traversed: SPT
//! lookup, CRC hashing, per-way VAT probes, fallback filter execution,
//! VAT insert — and, for the hardware simulator, STB prediction, SLB
//! access/preload, and temporary-buffer operations.
//!
//! Design constraints mirror the rest of `draco-obs`:
//!
//! * **Nothing on the unsampled path.** When a check is not sampled (or
//!   no tracer is installed) the per-stage hooks are a branch on `None`
//!   — no `Instant::now()`, no writes.
//! * **Zero allocation while recording.** The span buffer and the
//!   per-check pending buffer are fully allocated at construction; a
//!   full buffer drops new spans (counted in
//!   [`SpanTracer::dropped_spans`]) instead of growing.
//! * **Mergeable.** Per-shard tracers share an epoch
//!   ([`SpanTracer::with_epoch`]) so their spans live on one timeline;
//!   [`merge_spans`] combines shard buffers like `MetricsRegistry`
//!   merges sections.

use std::time::Instant;

use crate::FlowClass;

/// One pipeline stage of a Draco check (software or simulated
/// hardware).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// SPT lookup by syscall ID.
    SptLookup,
    /// CRC-64 hashing of the selected argument bytes.
    CrcHash,
    /// First-way (ECMA hash) VAT/cuckoo probe.
    VatProbeWay1,
    /// Second-way (complement hash) VAT/cuckoo probe.
    VatProbeWay2,
    /// Fallback Seccomp filter execution.
    FilterExec,
    /// Argument-set insertion into the VAT after a permitted fallback.
    VatInsert,
    /// Batched path: SPT-word resolve pass over the whole batch.
    BatchSptResolve,
    /// Batched path: vectorized CRC hashing of surviving keys.
    BatchCrcHash,
    /// Batched path: software prefetch of all candidate cuckoo slots.
    BatchPrefetch,
    /// Batched path: bulk VAT probe pass.
    BatchProbe,
    /// Batched path: in-order commit walk (fan-out plus miss handling).
    BatchCommit,
    /// Hardware: STB lookup at ROB insertion (§VI-B prediction).
    StbPredict,
    /// Hardware: speculative SLB preload probe and VAT prefetch.
    SlbPreload,
    /// Hardware: non-speculative SLB access at the ROB head.
    SlbAccess,
    /// Hardware: temporary-buffer stage/commit traffic.
    TempBufOp,
}

impl Stage {
    /// Every stage, software first, in pipeline order.
    pub const ALL: [Stage; 15] = [
        Stage::SptLookup,
        Stage::CrcHash,
        Stage::VatProbeWay1,
        Stage::VatProbeWay2,
        Stage::FilterExec,
        Stage::VatInsert,
        Stage::BatchSptResolve,
        Stage::BatchCrcHash,
        Stage::BatchPrefetch,
        Stage::BatchProbe,
        Stage::BatchCommit,
        Stage::StbPredict,
        Stage::SlbPreload,
        Stage::SlbAccess,
        Stage::TempBufOp,
    ];

    /// Stable label used as the Chrome-trace event name.
    pub const fn label(self) -> &'static str {
        match self {
            Stage::SptLookup => "spt-lookup",
            Stage::CrcHash => "crc-hash",
            Stage::VatProbeWay1 => "vat-probe-way1",
            Stage::VatProbeWay2 => "vat-probe-way2",
            Stage::FilterExec => "filter-exec",
            Stage::VatInsert => "vat-insert",
            Stage::BatchSptResolve => "batch-spt-resolve",
            Stage::BatchCrcHash => "batch-crc-hash",
            Stage::BatchPrefetch => "batch-prefetch",
            Stage::BatchProbe => "batch-probe",
            Stage::BatchCommit => "batch-commit",
            Stage::StbPredict => "stb-predict",
            Stage::SlbPreload => "slb-preload",
            Stage::SlbAccess => "slb-access",
            Stage::TempBufOp => "tempbuf-op",
        }
    }

    /// The `stage[;substage]` frames used in folded flamegraph output
    /// (per-way probes fold under a shared `vat-probe` frame, batch
    /// passes under a shared `batch` frame).
    pub const fn folded_frames(self) -> (&'static str, Option<&'static str>) {
        match self {
            Stage::VatProbeWay1 => ("vat-probe", Some("way-1")),
            Stage::VatProbeWay2 => ("vat-probe", Some("way-2")),
            Stage::BatchSptResolve => ("batch", Some("spt-resolve")),
            Stage::BatchCrcHash => ("batch", Some("crc-hash")),
            Stage::BatchPrefetch => ("batch", Some("prefetch")),
            Stage::BatchProbe => ("batch", Some("probe")),
            Stage::BatchCommit => ("batch", Some("commit")),
            other => (other.label(), None),
        }
    }
}

impl core::fmt::Display for Stage {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded stage interval of one sampled check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// The pipeline stage.
    pub stage: Stage,
    /// Start time in nanoseconds since the tracer epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Check sequence number the span belongs to.
    pub seq: u64,
    /// Raw syscall number of the checked call.
    pub syscall: u16,
    /// Flow classification of the whole check (the Chrome-trace
    /// category).
    pub class: FlowClass,
    /// Shard (thread) that recorded the span — the Chrome-trace tid.
    pub shard: u32,
}

/// An opaque stage-start token. Inactive scopes hand out empty tokens,
/// so ending a stage on an unsampled check is a no-op branch.
#[derive(Debug)]
#[must_use = "pass the token back to stage_end"]
pub struct StageStart(Option<Instant>);

/// A deterministically sampled, pre-allocated span recorder for one
/// shard.
///
/// # Example
///
/// ```
/// use draco_obs::{FlowClass, SpanTracer, Stage, TraceScope};
///
/// let mut tracer = SpanTracer::new(128, 1); // sample every check
/// let mut scope = TraceScope::begin(Some(&mut tracer), 1, 0);
/// let t = scope.stage_begin();
/// // ... the work being timed ...
/// scope.stage_end(Stage::SptLookup, t);
/// scope.finish(FlowClass::SptHit);
/// assert_eq!(tracer.spans().len(), 1);
/// assert_eq!(tracer.spans()[0].stage, Stage::SptLookup);
/// ```
#[derive(Debug)]
pub struct SpanTracer {
    epoch: Instant,
    /// Sample when `seq & mask == 0` (interval rounded up to a power of
    /// two).
    sample_mask: u64,
    shard: u32,
    spans: Vec<Span>,
    /// The current sampled check's spans, committed with the flow class
    /// at check end.
    pending: Vec<Span>,
    cur_seq: u64,
    cur_syscall: u16,
    sampled_checks: u64,
    dropped: u64,
}

/// Upper bound on stages a single check can traverse (sized generously
/// above the deepest real pipeline).
const MAX_STAGES_PER_CHECK: usize = 16;

impl SpanTracer {
    /// Default span-buffer capacity.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;
    /// Default sampling interval (1 in 64 checks).
    pub const DEFAULT_SAMPLE_INTERVAL: u64 = 64;

    /// Creates a tracer holding at most `capacity` spans, sampling every
    /// `sample_interval`-th check (rounded up to a power of two; 0 and 1
    /// both mean "every check"). All buffers are allocated here.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, sample_interval: u64) -> Self {
        assert!(capacity > 0, "span tracer capacity must be nonzero");
        SpanTracer {
            epoch: Instant::now(),
            sample_mask: sample_interval.max(1).next_power_of_two() - 1,
            shard: 0,
            spans: Vec::with_capacity(capacity),
            pending: Vec::with_capacity(MAX_STAGES_PER_CHECK),
            cur_seq: 0,
            cur_syscall: 0,
            sampled_checks: 0,
            dropped: 0,
        }
    }

    /// Shares a time base with other shards' tracers (builder-style).
    /// Spans record nanoseconds since this instant.
    #[must_use]
    pub fn with_epoch(mut self, epoch: Instant) -> Self {
        self.epoch = epoch;
        self
    }

    /// Tags every recorded span with a shard id (builder-style) — the
    /// Chrome-trace tid.
    #[must_use]
    pub fn with_shard(mut self, shard: u32) -> Self {
        self.shard = shard;
        self
    }

    /// The tracer's time base.
    pub const fn epoch(&self) -> Instant {
        self.epoch
    }

    /// The effective (power-of-two) sampling interval.
    pub const fn sample_interval(&self) -> u64 {
        self.sample_mask + 1
    }

    /// Checks sampled so far.
    pub const fn sampled_checks(&self) -> u64 {
        self.sampled_checks
    }

    /// Spans discarded because the buffer was full.
    pub const fn dropped_spans(&self) -> u64 {
        self.dropped
    }

    /// The recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Consumes the tracer, returning its spans.
    pub fn into_spans(self) -> Vec<Span> {
        self.spans
    }

    /// Starts a check; returns whether it is sampled. Unsampled checks
    /// cost exactly this branch. Any spans pending from an unfinished
    /// check are discarded.
    ///
    /// Sampling is phase-aligned so that check 1 — a caller's first,
    /// always-cold check, the only one guaranteed to exercise the
    /// fallback stages — is sampled, then every Nth after it.
    pub fn begin_check(&mut self, seq: u64, syscall: u16) -> bool {
        if seq.wrapping_sub(1) & self.sample_mask != 0 {
            return false;
        }
        self.pending.clear();
        self.cur_seq = seq;
        self.cur_syscall = syscall;
        self.sampled_checks += 1;
        true
    }

    /// Records one stage of the current sampled check. `start` must come
    /// from an `Instant::now()` taken at stage entry.
    fn record_stage(&mut self, stage: Stage, start: Instant) {
        let dur_ns = start.elapsed().as_nanos() as u64;
        let start_ns = start.duration_since(self.epoch).as_nanos() as u64;
        if self.pending.len() < MAX_STAGES_PER_CHECK {
            self.pending.push(Span {
                stage,
                start_ns,
                dur_ns,
                seq: self.cur_seq,
                syscall: self.cur_syscall,
                // Placeholder; rewritten at commit time.
                class: FlowClass::SptHit,
                shard: self.shard,
            });
        } else {
            self.dropped += 1;
        }
    }

    /// Commits the current check's pending spans under its final flow
    /// classification. Spans that no longer fit are dropped (counted),
    /// never reallocated.
    fn end_check(&mut self, class: FlowClass) {
        for mut span in self.pending.drain(..) {
            span.class = class;
            if self.spans.len() < self.spans.capacity() {
                self.spans.push(span);
            } else {
                self.dropped += 1;
            }
        }
    }
}

/// The per-check tracing scope instrumented code holds: `Some` tracer
/// while the current check is sampled, `None` otherwise — so every hook
/// is a single branch on the unsampled path.
#[derive(Debug)]
pub struct TraceScope<'a> {
    tracer: Option<&'a mut SpanTracer>,
}

impl<'a> TraceScope<'a> {
    /// A scope that records nothing (no tracer installed).
    pub const fn inactive() -> TraceScope<'static> {
        TraceScope { tracer: None }
    }

    /// Opens the scope for one check: consults the tracer's sampling
    /// decision and stays inactive (all hooks no-ops) when the check is
    /// not sampled.
    pub fn begin(tracer: Option<&'a mut SpanTracer>, seq: u64, syscall: u16) -> TraceScope<'a> {
        match tracer {
            Some(t) => {
                if t.begin_check(seq, syscall) {
                    TraceScope { tracer: Some(t) }
                } else {
                    TraceScope { tracer: None }
                }
            }
            None => TraceScope { tracer: None },
        }
    }

    /// True while the current check is being sampled.
    pub const fn is_active(&self) -> bool {
        self.tracer.is_some()
    }

    /// Marks a stage start. Reads the clock only when active.
    pub fn stage_begin(&self) -> StageStart {
        StageStart(if self.tracer.is_some() {
            Some(Instant::now())
        } else {
            None
        })
    }

    /// Records the stage interval begun by `start`.
    pub fn stage_end(&mut self, stage: Stage, start: StageStart) {
        if let (Some(tracer), Some(instant)) = (self.tracer.as_deref_mut(), start.0) {
            tracer.record_stage(stage, instant);
        }
    }

    /// Commits the check's spans under its flow classification and
    /// deactivates the scope. Safe to call once per check at any return
    /// point; later calls are no-ops.
    pub fn finish(&mut self, class: FlowClass) {
        if let Some(tracer) = self.tracer.take() {
            tracer.end_check(class);
        }
    }
}

/// Merges per-shard span buffers into one timeline, ordered by start
/// time (ties broken by shard then sequence) — the span analogue of
/// `MetricsRegistry::merged`.
pub fn merge_spans(shards: impl IntoIterator<Item = Vec<Span>>) -> Vec<Span> {
    let mut merged: Vec<Span> = shards.into_iter().flatten().collect();
    merged.sort_by_key(|s| (s.start_ns, s.shard, s.seq));
    merged
}

/// Renders spans as Chrome trace-event JSON (loads in `chrome://tracing`
/// and Perfetto): complete (`ph: "X"`) events named by stage, categorized
/// by flow class, one tid per shard, timestamps in microseconds.
pub fn chrome_trace_json(spans: &[Span]) -> String {
    use core::fmt::Write as _;
    let mut out = String::with_capacity(spans.len() * 140 + 64);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{}.{:03},\"dur\":{}.{:03},\
             \"args\":{{\"seq\":{},\"syscall\":{}}}}}",
            s.stage.label(),
            s.class.label(),
            s.shard,
            s.start_ns / 1000,
            s.start_ns % 1000,
            s.dur_ns / 1000,
            s.dur_ns % 1000,
            s.seq,
            s.syscall
        )
        .expect("writing to a String cannot fail");
    }
    out.push_str("]}\n");
    out
}

/// Renders spans as folded flamegraph stacks (`flamegraph.pl` /
/// `inferno` input): one `class;stage[;substage] nanoseconds` line per
/// distinct stack, aggregated and sorted for determinism.
pub fn folded_stacks(spans: &[Span]) -> String {
    use std::collections::BTreeMap;
    let mut agg: BTreeMap<(&'static str, &'static str, Option<&'static str>), u64> =
        BTreeMap::new();
    for s in spans {
        let (frame, sub) = s.stage.folded_frames();
        let slot = agg.entry((s.class.label(), frame, sub)).or_default();
        *slot = slot.saturating_add(s.dur_ns);
    }
    let mut out = String::new();
    for ((class, frame, sub), total) in agg {
        match sub {
            Some(sub) => out.push_str(&format!("{class};{frame};{sub} {total}\n")),
            None => out.push_str(&format!("{class};{frame} {total}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives one fake check through the scope.
    fn one_check(tracer: &mut SpanTracer, seq: u64, stages: &[Stage], class: FlowClass) -> bool {
        let mut scope = TraceScope::begin(Some(tracer), seq, 42);
        let active = scope.is_active();
        for &stage in stages {
            let t = scope.stage_begin();
            scope.stage_end(stage, t);
        }
        scope.finish(class);
        active
    }

    #[test]
    fn sampling_is_deterministic_by_seq() {
        let mut tracer = SpanTracer::new(1024, 4);
        assert_eq!(tracer.sample_interval(), 4);
        let mut sampled = Vec::new();
        for seq in 1..=16 {
            if one_check(&mut tracer, seq, &[Stage::SptLookup], FlowClass::SptHit) {
                sampled.push(seq);
            }
        }
        // Phase-aligned on the caller's first check (seq 1).
        assert_eq!(sampled, vec![1, 5, 9, 13]);
        assert_eq!(tracer.sampled_checks(), 4);
        assert_eq!(tracer.spans().len(), 4);
    }

    #[test]
    fn interval_rounds_up_to_power_of_two() {
        assert_eq!(SpanTracer::new(8, 0).sample_interval(), 1);
        assert_eq!(SpanTracer::new(8, 1).sample_interval(), 1);
        assert_eq!(SpanTracer::new(8, 3).sample_interval(), 4);
        assert_eq!(SpanTracer::new(8, 64).sample_interval(), 64);
        assert_eq!(SpanTracer::new(8, 100).sample_interval(), 128);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = SpanTracer::new(0, 1);
    }

    #[test]
    fn spans_carry_class_and_shard() {
        let mut tracer = SpanTracer::new(64, 1).with_shard(7);
        one_check(
            &mut tracer,
            1,
            &[Stage::SptLookup, Stage::CrcHash, Stage::VatProbeWay1],
            FlowClass::VatHit,
        );
        let spans = tracer.spans();
        assert_eq!(spans.len(), 3);
        for s in spans {
            assert_eq!(s.class, FlowClass::VatHit);
            assert_eq!(s.shard, 7);
            assert_eq!(s.seq, 1);
            assert_eq!(s.syscall, 42);
        }
        assert_eq!(spans[1].stage, Stage::CrcHash);
    }

    #[test]
    fn full_buffer_drops_instead_of_growing() {
        let mut tracer = SpanTracer::new(2, 1);
        for seq in 1..=4 {
            one_check(&mut tracer, seq, &[Stage::SptLookup], FlowClass::SptHit);
        }
        assert_eq!(tracer.spans().len(), 2);
        assert_eq!(tracer.dropped_spans(), 2);
        assert_eq!(tracer.spans.capacity(), 2, "no reallocation");
    }

    #[test]
    fn inactive_scope_records_nothing() {
        let mut scope = TraceScope::inactive();
        let t = scope.stage_begin();
        scope.stage_end(Stage::FilterExec, t);
        scope.finish(FlowClass::FilterDeny);
        assert!(!scope.is_active());
        // And a None tracer behaves identically.
        let mut scope = TraceScope::begin(None, 0, 0);
        assert!(!scope.is_active());
        scope.finish(FlowClass::FilterAllow);
    }

    #[test]
    fn merge_orders_across_shards() {
        let epoch = Instant::now();
        let mut a = SpanTracer::new(16, 1).with_epoch(epoch).with_shard(0);
        let mut b = SpanTracer::new(16, 1).with_epoch(epoch).with_shard(1);
        one_check(&mut a, 1, &[Stage::SptLookup], FlowClass::SptHit);
        one_check(&mut b, 1, &[Stage::SptLookup], FlowClass::SptHit);
        one_check(&mut a, 2, &[Stage::CrcHash], FlowClass::VatHit);
        let merged = merge_spans([a.into_spans(), b.into_spans()]);
        assert_eq!(merged.len(), 3);
        for pair in merged.windows(2) {
            assert!(pair[0].start_ns <= pair[1].start_ns, "sorted by start");
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_fields() {
        let mut tracer = SpanTracer::new(64, 1).with_shard(3);
        one_check(
            &mut tracer,
            1,
            &[Stage::SptLookup, Stage::FilterExec],
            FlowClass::FilterAllow,
        );
        let json = chrome_trace_json(tracer.spans());
        let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = value["traceEvents"].as_array().expect("traceEvents array");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["name"].as_str(), Some("spt-lookup"));
        assert_eq!(events[1]["name"].as_str(), Some("filter-exec"));
        assert_eq!(events[0]["cat"].as_str(), Some("filter-allow"));
        assert_eq!(events[0]["ph"].as_str(), Some("X"));
        assert_eq!(events[0]["tid"].as_u64(), Some(3));
        assert!(events[0]["ts"].as_f64().is_some());
        assert_eq!(events[0]["args"]["syscall"].as_u64(), Some(42));
    }

    #[test]
    fn chrome_trace_of_nothing_is_empty_but_valid() {
        let json = chrome_trace_json(&[]);
        let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(value["traceEvents"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn folded_stacks_aggregate_per_class_and_stage() {
        let mut tracer = SpanTracer::new(64, 1);
        one_check(
            &mut tracer,
            1,
            &[Stage::CrcHash, Stage::VatProbeWay1, Stage::VatProbeWay2],
            FlowClass::VatHit,
        );
        one_check(&mut tracer, 2, &[Stage::CrcHash], FlowClass::VatHit);
        let folded = folded_stacks(tracer.spans());
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 3, "{folded}");
        assert!(lines.iter().any(|l| l.starts_with("vat-hit;crc-hash ")));
        assert!(lines.iter().any(|l| l.starts_with("vat-hit;vat-probe;way-1 ")));
        assert!(lines.iter().any(|l| l.starts_with("vat-hit;vat-probe;way-2 ")));
        for line in lines {
            let (_, count) = line.rsplit_once(' ').expect("count field");
            count.parse::<u64>().expect("numeric count");
        }
    }

    #[test]
    fn stage_labels_are_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for stage in Stage::ALL {
            assert!(seen.insert(stage.label()), "duplicate {stage}");
        }
        assert_eq!(Stage::SptLookup.to_string(), "spt-lookup");
        assert_eq!(Stage::VatProbeWay2.folded_frames(), ("vat-probe", Some("way-2")));
        assert_eq!(Stage::TempBufOp.folded_frames(), ("tempbuf-op", None));
        assert_eq!(Stage::BatchProbe.to_string(), "batch-probe");
        assert_eq!(Stage::BatchCommit.folded_frames(), ("batch", Some("commit")));
    }

    #[test]
    fn unfinished_check_is_discarded_by_next_begin() {
        let mut tracer = SpanTracer::new(64, 1);
        {
            let mut scope = TraceScope::begin(Some(&mut tracer), 1, 0);
            let t = scope.stage_begin();
            scope.stage_end(Stage::SptLookup, t);
            // No finish: the check was abandoned (e.g. a panic path).
        }
        one_check(&mut tracer, 2, &[Stage::CrcHash], FlowClass::VatHit);
        assert_eq!(tracer.spans().len(), 1, "abandoned spans dropped");
        assert_eq!(tracer.spans()[0].stage, Stage::CrcHash);
    }
}
