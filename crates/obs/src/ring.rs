//! The capacity-bounded flow-event trace.

use core::fmt;

/// How one check was classified (the software analogue of the paper's
/// Table-I execution flows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlowClass {
    /// SPT Valid bit sufficed.
    SptHit,
    /// The VAT held the argument set.
    VatHit,
    /// The fallback filter ran and permitted the call.
    FilterAllow,
    /// The fallback filter ran and denied the call.
    FilterDeny,
}

impl FlowClass {
    /// Stable label used in trace output.
    pub const fn label(self) -> &'static str {
        match self {
            FlowClass::SptHit => "spt-hit",
            FlowClass::VatHit => "vat-hit",
            FlowClass::FilterAllow => "filter-allow",
            FlowClass::FilterDeny => "filter-deny",
        }
    }
}

impl fmt::Display for FlowClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded flow classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowEvent {
    /// Monotonic check sequence number (0-based within the recorder).
    pub seq: u64,
    /// Raw syscall number of the checked call.
    pub syscall: u16,
    /// The classification.
    pub class: FlowClass,
}

/// A capacity-bounded ring buffer of recent [`FlowEvent`]s.
///
/// All storage is allocated once at construction; [`EventRing::record`]
/// writes in place and never allocates, so the ring can stay enabled on
/// the check hot path without violating the zero-allocation contract.
/// When full, the oldest event is overwritten.
///
/// # Example
///
/// ```
/// use draco_obs::{EventRing, FlowClass, FlowEvent};
///
/// let mut ring = EventRing::with_capacity(2);
/// for seq in 0..3 {
///     ring.record(FlowEvent { seq, syscall: 0, class: FlowClass::VatHit });
/// }
/// let seqs: Vec<u64> = ring.iter_recent().map(|e| e.seq).collect();
/// assert_eq!(seqs, vec![1, 2]); // oldest event overwritten
/// assert_eq!(ring.total_recorded(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct EventRing {
    events: Vec<FlowEvent>,
    capacity: usize,
    /// Index of the next write (wraps at `capacity`).
    next: usize,
    total: u64,
    /// Events lost to wraparound (each overwrite drops the oldest).
    dropped: u64,
}

impl EventRing {
    /// Creates a ring holding the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "event ring capacity must be nonzero");
        EventRing {
            events: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            total: 0,
            dropped: 0,
        }
    }

    /// Records an event, overwriting the oldest when full (counted in
    /// [`EventRing::events_dropped`]). Never allocates: the buffer was
    /// sized at construction.
    pub fn record(&mut self, event: FlowEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.next] = event;
            self.dropped = self.dropped.saturating_add(1);
        }
        self.next = (self.next + 1) % self.capacity;
        self.total = self.total.saturating_add(1);
    }

    /// Events currently held (at most the capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The configured capacity.
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded (including overwritten ones).
    pub const fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events lost to wraparound: every overwrite of a not-yet-read
    /// oldest event counts here, so `events_dropped() + len()` always
    /// equals [`EventRing::total_recorded`]. Loss is accounted, never
    /// silent.
    pub const fn events_dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over the held events, oldest first.
    pub fn iter_recent(&self) -> impl Iterator<Item = &FlowEvent> {
        let split = if self.events.len() < self.capacity {
            0
        } else {
            self.next
        };
        self.events[split..].iter().chain(self.events[..split].iter())
    }
}

/// Merges the recent views of several shard-tagged rings into one
/// chronology ordered by sequence number (ties broken by shard id) —
/// the cross-shard analogue of [`EventRing::iter_recent`]. The result
/// is bounded by the sum of the rings' capacities and, filtered to any
/// one shard, preserves that shard's recording order.
pub fn merge_recent_events<'a>(
    rings: impl IntoIterator<Item = (u32, &'a EventRing)>,
) -> Vec<(u32, FlowEvent)> {
    let mut merged: Vec<(u32, FlowEvent)> = rings
        .into_iter()
        .flat_map(|(shard, ring)| ring.iter_recent().map(move |ev| (shard, *ev)))
        .collect();
    merged.sort_by_key(|(shard, ev)| (ev.seq, *shard));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> FlowEvent {
        FlowEvent {
            seq,
            syscall: (seq % 7) as u16,
            class: if seq.is_multiple_of(2) {
                FlowClass::SptHit
            } else {
                FlowClass::FilterDeny
            },
        }
    }

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut ring = EventRing::with_capacity(4);
        assert!(ring.is_empty());
        for seq in 0..3 {
            ring.record(ev(seq));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.events_dropped(), 0, "no overwrite before full");
        let seqs: Vec<u64> = ring.iter_recent().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        for seq in 3..11 {
            ring.record(ev(seq));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.total_recorded(), 11);
        assert_eq!(ring.events_dropped(), 7, "11 recorded, 4 held");
        assert_eq!(ring.events_dropped() + ring.len() as u64, ring.total_recorded());
        let seqs: Vec<u64> = ring.iter_recent().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10], "oldest first after wrap");
    }

    #[test]
    fn capacity_is_respected_exactly() {
        let mut ring = EventRing::with_capacity(1);
        ring.record(ev(0));
        ring.record(ev(1));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.iter_recent().next().unwrap().seq, 1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = EventRing::with_capacity(0);
    }

    #[test]
    fn flow_class_labels() {
        assert_eq!(FlowClass::SptHit.to_string(), "spt-hit");
        assert_eq!(FlowClass::VatHit.to_string(), "vat-hit");
        assert_eq!(FlowClass::FilterAllow.to_string(), "filter-allow");
        assert_eq!(FlowClass::FilterDeny.to_string(), "filter-deny");
    }

    #[test]
    fn merge_recent_orders_by_seq_then_shard() {
        let mut a = EventRing::with_capacity(3);
        let mut b = EventRing::with_capacity(3);
        for seq in [0u64, 2, 4] {
            a.record(ev(seq));
        }
        for seq in [1u64, 2, 3] {
            b.record(ev(seq));
        }
        let merged = merge_recent_events([(0, &a), (1, &b)]);
        let keys: Vec<(u64, u32)> = merged.iter().map(|(s, e)| (e.seq, *s)).collect();
        assert_eq!(keys, vec![(0, 0), (1, 1), (2, 0), (2, 1), (3, 1), (4, 0)]);
    }

    proptest::proptest! {
        /// The merged recent-events view is capacity-bounded and, per
        /// shard, seq-monotonic — exactly the most recent
        /// `min(capacity, recorded)` events each shard recorded.
        #[test]
        fn merged_view_is_bounded_and_per_shard_monotonic(
            capacities in proptest::collection::vec(1usize..8, 1..5),
            counts in proptest::collection::vec(0u64..40, 1..5),
        ) {
            let shards = capacities.len().min(counts.len());
            let mut rings = Vec::new();
            for shard in 0..shards {
                let mut ring = EventRing::with_capacity(capacities[shard]);
                for seq in 0..counts[shard] {
                    ring.record(ev(seq));
                }
                rings.push(ring);
            }
            let merged = merge_recent_events(
                rings.iter().enumerate().map(|(i, r)| (i as u32, r)),
            );

            let cap_total: usize = capacities[..shards].iter().sum();
            proptest::prop_assert!(merged.len() <= cap_total, "capacity-bounded");

            for shard in 0..shards {
                let seqs: Vec<u64> = merged
                    .iter()
                    .filter(|(s, _)| *s == shard as u32)
                    .map(|(_, e)| e.seq)
                    .collect();
                // Strictly increasing within the shard...
                for pair in seqs.windows(2) {
                    proptest::prop_assert!(pair[0] < pair[1], "seq-monotonic per shard");
                }
                // ...and exactly the most recent window the ring held.
                let held = counts[shard].min(capacities[shard] as u64);
                let expect: Vec<u64> = (counts[shard] - held..counts[shard]).collect();
                proptest::prop_assert_eq!(seqs, expect);
            }
        }
    }
}
