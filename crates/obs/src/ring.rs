//! The capacity-bounded flow-event trace.

use core::fmt;

/// How one check was classified (the software analogue of the paper's
/// Table-I execution flows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlowClass {
    /// SPT Valid bit sufficed.
    SptHit,
    /// The VAT held the argument set.
    VatHit,
    /// The fallback filter ran and permitted the call.
    FilterAllow,
    /// The fallback filter ran and denied the call.
    FilterDeny,
}

impl FlowClass {
    /// Stable label used in trace output.
    pub const fn label(self) -> &'static str {
        match self {
            FlowClass::SptHit => "spt-hit",
            FlowClass::VatHit => "vat-hit",
            FlowClass::FilterAllow => "filter-allow",
            FlowClass::FilterDeny => "filter-deny",
        }
    }
}

impl fmt::Display for FlowClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded flow classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowEvent {
    /// Monotonic check sequence number (0-based within the recorder).
    pub seq: u64,
    /// Raw syscall number of the checked call.
    pub syscall: u16,
    /// The classification.
    pub class: FlowClass,
}

/// A capacity-bounded ring buffer of recent [`FlowEvent`]s.
///
/// All storage is allocated once at construction; [`EventRing::record`]
/// writes in place and never allocates, so the ring can stay enabled on
/// the check hot path without violating the zero-allocation contract.
/// When full, the oldest event is overwritten.
///
/// # Example
///
/// ```
/// use draco_obs::{EventRing, FlowClass, FlowEvent};
///
/// let mut ring = EventRing::with_capacity(2);
/// for seq in 0..3 {
///     ring.record(FlowEvent { seq, syscall: 0, class: FlowClass::VatHit });
/// }
/// let seqs: Vec<u64> = ring.iter_recent().map(|e| e.seq).collect();
/// assert_eq!(seqs, vec![1, 2]); // oldest event overwritten
/// assert_eq!(ring.total_recorded(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct EventRing {
    events: Vec<FlowEvent>,
    capacity: usize,
    /// Index of the next write (wraps at `capacity`).
    next: usize,
    total: u64,
}

impl EventRing {
    /// Creates a ring holding the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "event ring capacity must be nonzero");
        EventRing {
            events: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            total: 0,
        }
    }

    /// Records an event, overwriting the oldest when full. Never
    /// allocates: the buffer was sized at construction.
    pub fn record(&mut self, event: FlowEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.next] = event;
        }
        self.next = (self.next + 1) % self.capacity;
        self.total = self.total.saturating_add(1);
    }

    /// Events currently held (at most the capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The configured capacity.
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded (including overwritten ones).
    pub const fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Iterates over the held events, oldest first.
    pub fn iter_recent(&self) -> impl Iterator<Item = &FlowEvent> {
        let split = if self.events.len() < self.capacity {
            0
        } else {
            self.next
        };
        self.events[split..].iter().chain(self.events[..split].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> FlowEvent {
        FlowEvent {
            seq,
            syscall: (seq % 7) as u16,
            class: if seq.is_multiple_of(2) {
                FlowClass::SptHit
            } else {
                FlowClass::FilterDeny
            },
        }
    }

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut ring = EventRing::with_capacity(4);
        assert!(ring.is_empty());
        for seq in 0..3 {
            ring.record(ev(seq));
        }
        assert_eq!(ring.len(), 3);
        let seqs: Vec<u64> = ring.iter_recent().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        for seq in 3..11 {
            ring.record(ev(seq));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.total_recorded(), 11);
        let seqs: Vec<u64> = ring.iter_recent().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10], "oldest first after wrap");
    }

    #[test]
    fn capacity_is_respected_exactly() {
        let mut ring = EventRing::with_capacity(1);
        ring.record(ev(0));
        ring.record(ev(1));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.iter_recent().next().unwrap().seq, 1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = EventRing::with_capacity(0);
    }

    #[test]
    fn flow_class_labels() {
        assert_eq!(FlowClass::SptHit.to_string(), "spt-hit");
        assert_eq!(FlowClass::VatHit.to_string(), "vat-hit");
        assert_eq!(FlowClass::FilterAllow.to_string(), "filter-allow");
        assert_eq!(FlowClass::FilterDeny.to_string(), "filter-deny");
    }
}
