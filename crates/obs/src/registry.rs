//! The per-layer metric sections and the registry that merges them.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::Histogram;

/// Labels of the Table-I flow-mix slots, in
/// [`SimMetrics::flow_mix`] index order (matching
/// `draco_sim::Flow::index`).
pub const FLOW_LABELS: [&str; 8] = [
    "spt-only",
    "f1",
    "f2",
    "f3",
    "f4",
    "f5",
    "f6",
    "fallback",
];

/// Checker-layer counters (software Draco, paper Fig. 4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckerMetrics {
    /// Checks admitted by the SPT alone.
    pub spt_hits: u64,
    /// Subset of `spt_hits` on syscalls the filter analyzer proved
    /// always-allowed: the static-analysis fast path that skips CRC
    /// hashing and the VAT entirely.
    #[serde(default)]
    pub always_allow_hits: u64,
    /// Checks admitted by a VAT probe.
    pub vat_hits: u64,
    /// Checks that fell back to the Seccomp filter.
    pub filter_runs: u64,
    /// Total cBPF instructions executed by fallback runs.
    pub filter_insns: u64,
    /// Checks whose final verdict was a denial.
    pub denials: u64,
    /// Argument-set insertions into the VAT.
    pub vat_inserts: u64,
    /// Seqlock read retries on a shared VAT (reader collided with an
    /// in-flight writer). Zero for per-thread checkers.
    #[serde(default)]
    pub seqlock_retries: u64,
    /// Miss-path lock acquisitions that had to wait for another thread
    /// (shared VAT/SPT only).
    #[serde(default)]
    pub vat_lock_waits: u64,
    /// Validations another thread completed first (the key was already
    /// resident once the write lock was held; shared VAT only).
    #[serde(default)]
    pub insert_races_lost: u64,
    /// Whitelist rules whose analyzer-derived argument mask matched or
    /// narrowed the authored mask (the derived mask was installed).
    #[serde(default)]
    pub masks_derived_match: u64,
    /// Whitelist rules where the derived mask disagreed with the
    /// authored one (the authored mask was kept as the override).
    #[serde(default)]
    pub masks_overridden: u64,
    /// `check_batch` invocations on the batched check path.
    #[serde(default)]
    pub batches: u64,
    /// Checks submitted through the batched check path.
    #[serde(default)]
    pub batched_checks: u64,
    /// Software prefetches issued by batch probe passes (two per VAT
    /// candidate — one per cuckoo way).
    #[serde(default)]
    pub prefetch_issued: u64,
    /// Batch-local misses resolved from cache during the commit walk
    /// because an earlier request in the same batch validated the key.
    #[serde(default)]
    pub miss_dedup_hits: u64,
    /// Hot-reload installs admitted (permissively, or proven safe by
    /// the semantic policy differ under `RequireRefinement`).
    #[serde(default)]
    pub reloads_permitted: u64,
    /// Hot-reload installs refused by the `RequireRefinement` gate: the
    /// candidate profile would relax (or is incomparable to) the
    /// installed policy.
    #[serde(default)]
    pub reloads_refused: u64,
    /// Distribution of batch sizes submitted to the batched check path.
    #[serde(default)]
    pub batch_size: Histogram,
    /// cBPF instructions per fallback run.
    pub insns_per_filter_run: Histogram,
    /// Filter instructions *saved* per cached check: at each SPT/VAT
    /// hit, the mean fallback cost observed so far is recorded — the
    /// work Draco's tables absorbed instead of the filter.
    pub saved_insns_per_hit: Histogram,
}

impl CheckerMetrics {
    /// Total checks observed (saturating).
    pub fn total(&self) -> u64 {
        self.spt_hits
            .saturating_add(self.vat_hits)
            .saturating_add(self.filter_runs)
    }

    /// Fraction of checks that skipped the filter entirely.
    pub fn cache_hit_rate(&self) -> f64 {
        ratio(self.spt_hits.saturating_add(self.vat_hits), self.total())
    }

    /// Merges another checker section into this one.
    pub fn merge(&mut self, other: &CheckerMetrics) {
        self.spt_hits = self.spt_hits.saturating_add(other.spt_hits);
        self.always_allow_hits = self.always_allow_hits.saturating_add(other.always_allow_hits);
        self.vat_hits = self.vat_hits.saturating_add(other.vat_hits);
        self.filter_runs = self.filter_runs.saturating_add(other.filter_runs);
        self.filter_insns = self.filter_insns.saturating_add(other.filter_insns);
        self.denials = self.denials.saturating_add(other.denials);
        self.vat_inserts = self.vat_inserts.saturating_add(other.vat_inserts);
        self.seqlock_retries = self.seqlock_retries.saturating_add(other.seqlock_retries);
        self.vat_lock_waits = self.vat_lock_waits.saturating_add(other.vat_lock_waits);
        self.insert_races_lost = self.insert_races_lost.saturating_add(other.insert_races_lost);
        self.masks_derived_match = self.masks_derived_match.saturating_add(other.masks_derived_match);
        self.masks_overridden = self.masks_overridden.saturating_add(other.masks_overridden);
        self.batches = self.batches.saturating_add(other.batches);
        self.batched_checks = self.batched_checks.saturating_add(other.batched_checks);
        self.prefetch_issued = self.prefetch_issued.saturating_add(other.prefetch_issued);
        self.miss_dedup_hits = self.miss_dedup_hits.saturating_add(other.miss_dedup_hits);
        self.reloads_permitted = self.reloads_permitted.saturating_add(other.reloads_permitted);
        self.reloads_refused = self.reloads_refused.saturating_add(other.reloads_refused);
        self.batch_size.merge(&other.batch_size);
        self.insns_per_filter_run.merge(&other.insns_per_filter_run);
        self.saved_insns_per_hit.merge(&other.saved_insns_per_hit);
    }

    /// Counters accumulated since an `earlier` snapshot of the same
    /// section (per-field saturating subtraction — see
    /// [`MetricsRegistry::delta_since`]).
    pub fn delta_since(&self, earlier: &CheckerMetrics) -> CheckerMetrics {
        CheckerMetrics {
            spt_hits: self.spt_hits.saturating_sub(earlier.spt_hits),
            always_allow_hits: self.always_allow_hits.saturating_sub(earlier.always_allow_hits),
            vat_hits: self.vat_hits.saturating_sub(earlier.vat_hits),
            filter_runs: self.filter_runs.saturating_sub(earlier.filter_runs),
            filter_insns: self.filter_insns.saturating_sub(earlier.filter_insns),
            denials: self.denials.saturating_sub(earlier.denials),
            vat_inserts: self.vat_inserts.saturating_sub(earlier.vat_inserts),
            seqlock_retries: self.seqlock_retries.saturating_sub(earlier.seqlock_retries),
            vat_lock_waits: self.vat_lock_waits.saturating_sub(earlier.vat_lock_waits),
            insert_races_lost: self.insert_races_lost.saturating_sub(earlier.insert_races_lost),
            masks_derived_match: self
                .masks_derived_match
                .saturating_sub(earlier.masks_derived_match),
            masks_overridden: self.masks_overridden.saturating_sub(earlier.masks_overridden),
            batches: self.batches.saturating_sub(earlier.batches),
            batched_checks: self.batched_checks.saturating_sub(earlier.batched_checks),
            prefetch_issued: self.prefetch_issued.saturating_sub(earlier.prefetch_issued),
            miss_dedup_hits: self.miss_dedup_hits.saturating_sub(earlier.miss_dedup_hits),
            reloads_permitted: self
                .reloads_permitted
                .saturating_sub(earlier.reloads_permitted),
            reloads_refused: self.reloads_refused.saturating_sub(earlier.reloads_refused),
            batch_size: self.batch_size.delta_since(&earlier.batch_size),
            insns_per_filter_run: self
                .insns_per_filter_run
                .delta_since(&earlier.insns_per_filter_run),
            saved_insns_per_hit: self
                .saved_insns_per_hit
                .delta_since(&earlier.saved_insns_per_hit),
        }
    }
}

/// Cuckoo-table counters, aggregated across every VAT table
/// (paper §V-B, §VII-A).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CuckooMetrics {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Insertions that found a slot (directly or via relocation).
    pub insertions: u64,
    /// Insertions that replaced an existing key's value.
    pub updates: u64,
    /// Entries forcibly evicted under relocation pressure.
    pub evictions: u64,
    /// Total relocation steps across all insertions.
    pub relocations: u64,
    /// Probes per lookup (1 = first-way hit, 2 = second way or miss).
    pub probe_length: Histogram,
    /// Relocation steps per insertion.
    pub relocation_steps: Histogram,
    /// Lookups between successive hits of the same resident entry
    /// (the measured version of Fig. 3's reuse distance).
    pub reuse_distance: Histogram,
}

impl CuckooMetrics {
    /// Lookup hit rate.
    pub fn hit_rate(&self) -> f64 {
        ratio(self.hits, self.hits.saturating_add(self.misses))
    }

    /// Merges another cuckoo section into this one.
    pub fn merge(&mut self, other: &CuckooMetrics) {
        self.hits = self.hits.saturating_add(other.hits);
        self.misses = self.misses.saturating_add(other.misses);
        self.insertions = self.insertions.saturating_add(other.insertions);
        self.updates = self.updates.saturating_add(other.updates);
        self.evictions = self.evictions.saturating_add(other.evictions);
        self.relocations = self.relocations.saturating_add(other.relocations);
        self.probe_length.merge(&other.probe_length);
        self.relocation_steps.merge(&other.relocation_steps);
        self.reuse_distance.merge(&other.reuse_distance);
    }

    /// Counters accumulated since an `earlier` snapshot of the same
    /// section (per-field saturating subtraction).
    pub fn delta_since(&self, earlier: &CuckooMetrics) -> CuckooMetrics {
        CuckooMetrics {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            insertions: self.insertions.saturating_sub(earlier.insertions),
            updates: self.updates.saturating_sub(earlier.updates),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            relocations: self.relocations.saturating_sub(earlier.relocations),
            probe_length: self.probe_length.delta_since(&earlier.probe_length),
            relocation_steps: self.relocation_steps.delta_since(&earlier.relocation_steps),
            reuse_distance: self.reuse_distance.delta_since(&earlier.reuse_distance),
        }
    }
}

/// VAT occupancy gauges (paper §XI-C footprints).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VatMetrics {
    /// Per-syscall tables allocated.
    pub tables: u64,
    /// Argument sets currently resident across all tables.
    pub resident_sets: u64,
    /// Approximate resident footprint in bytes.
    pub footprint_bytes: u64,
}

impl VatMetrics {
    /// Merges another VAT section (shards own disjoint VATs, so gauges
    /// add).
    pub fn merge(&mut self, other: &VatMetrics) {
        self.tables = self.tables.saturating_add(other.tables);
        self.resident_sets = self.resident_sets.saturating_add(other.resident_sets);
        self.footprint_bytes = self.footprint_bytes.saturating_add(other.footprint_bytes);
    }

    /// Growth since an `earlier` snapshot (saturating subtraction).
    /// These are gauges, so a shrink (flush, eviction) clamps at zero —
    /// window consumers wanting absolute occupancy should read the
    /// cumulative snapshot instead of the delta.
    pub fn delta_since(&self, earlier: &VatMetrics) -> VatMetrics {
        VatMetrics {
            tables: self.tables.saturating_sub(earlier.tables),
            resident_sets: self.resident_sets.saturating_sub(earlier.resident_sets),
            footprint_bytes: self.footprint_bytes.saturating_sub(earlier.footprint_bytes),
        }
    }
}

/// Hardware-simulator counters: STB, SLB, temporary buffer, and the
/// Table-I flow mix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimMetrics {
    /// STB lookup hits (Fig. 13 "STB").
    pub stb_hits: u64,
    /// STB lookup misses.
    pub stb_misses: u64,
    /// Non-speculative SLB access hits (Fig. 13 "SLB access").
    pub slb_access_hits: u64,
    /// Non-speculative SLB access misses.
    pub slb_access_misses: u64,
    /// Speculative SLB preload-probe hits (Fig. 13 "SLB preload").
    pub slb_preload_hits: u64,
    /// Speculative SLB preload-probe misses.
    pub slb_preload_misses: u64,
    /// Entries staged into the temporary buffer (§IX).
    pub tempbuf_staged: u64,
    /// Staged entries committed into the SLB.
    pub tempbuf_commits: u64,
    /// Squashes that cleared the temporary buffer.
    pub tempbuf_squashes: u64,
    /// Table-I flow occupancy, indexed like `Flow::index`
    /// (labels in [`FLOW_LABELS`]).
    pub flow_mix: [u64; 8],
}

impl SimMetrics {
    /// STB hit rate.
    pub fn stb_hit_rate(&self) -> f64 {
        ratio(self.stb_hits, self.stb_hits.saturating_add(self.stb_misses))
    }

    /// SLB access hit rate.
    pub fn slb_access_hit_rate(&self) -> f64 {
        ratio(
            self.slb_access_hits,
            self.slb_access_hits.saturating_add(self.slb_access_misses),
        )
    }

    /// SLB preload hit rate.
    pub fn slb_preload_hit_rate(&self) -> f64 {
        ratio(
            self.slb_preload_hits,
            self.slb_preload_hits.saturating_add(self.slb_preload_misses),
        )
    }

    /// Total syscalls classified into a flow.
    pub fn flow_total(&self) -> u64 {
        self.flow_mix
            .iter()
            .fold(0u64, |acc, &c| acc.saturating_add(c))
    }

    /// Merges another sim section into this one.
    pub fn merge(&mut self, other: &SimMetrics) {
        self.stb_hits = self.stb_hits.saturating_add(other.stb_hits);
        self.stb_misses = self.stb_misses.saturating_add(other.stb_misses);
        self.slb_access_hits = self.slb_access_hits.saturating_add(other.slb_access_hits);
        self.slb_access_misses = self.slb_access_misses.saturating_add(other.slb_access_misses);
        self.slb_preload_hits = self.slb_preload_hits.saturating_add(other.slb_preload_hits);
        self.slb_preload_misses = self
            .slb_preload_misses
            .saturating_add(other.slb_preload_misses);
        self.tempbuf_staged = self.tempbuf_staged.saturating_add(other.tempbuf_staged);
        self.tempbuf_commits = self.tempbuf_commits.saturating_add(other.tempbuf_commits);
        self.tempbuf_squashes = self.tempbuf_squashes.saturating_add(other.tempbuf_squashes);
        for (a, b) in self.flow_mix.iter_mut().zip(other.flow_mix.iter()) {
            *a = a.saturating_add(*b);
        }
    }

    /// Counters accumulated since an `earlier` snapshot of the same
    /// section (per-field saturating subtraction, flow mix
    /// element-wise).
    pub fn delta_since(&self, earlier: &SimMetrics) -> SimMetrics {
        let mut flow_mix = [0u64; 8];
        for (o, (a, b)) in flow_mix
            .iter_mut()
            .zip(self.flow_mix.iter().zip(earlier.flow_mix.iter()))
        {
            *o = a.saturating_sub(*b);
        }
        SimMetrics {
            stb_hits: self.stb_hits.saturating_sub(earlier.stb_hits),
            stb_misses: self.stb_misses.saturating_sub(earlier.stb_misses),
            slb_access_hits: self.slb_access_hits.saturating_sub(earlier.slb_access_hits),
            slb_access_misses: self.slb_access_misses.saturating_sub(earlier.slb_access_misses),
            slb_preload_hits: self.slb_preload_hits.saturating_sub(earlier.slb_preload_hits),
            slb_preload_misses: self
                .slb_preload_misses
                .saturating_sub(earlier.slb_preload_misses),
            tempbuf_staged: self.tempbuf_staged.saturating_sub(earlier.tempbuf_staged),
            tempbuf_commits: self.tempbuf_commits.saturating_sub(earlier.tempbuf_commits),
            tempbuf_squashes: self.tempbuf_squashes.saturating_sub(earlier.tempbuf_squashes),
            flow_mix,
        }
    }
}

/// Replay-engine counters (one shard, or the merge of many).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayMetrics {
    /// Shards merged into this section.
    pub shards: u64,
    /// Measured checks performed.
    pub checks: u64,
    /// Checks whose verdict permitted the call.
    pub allowed: u64,
    /// Checks admitted by SPT or VAT without running the filter.
    pub cache_hits: u64,
}

impl ReplayMetrics {
    /// Merges another replay section into this one.
    pub fn merge(&mut self, other: &ReplayMetrics) {
        self.shards = self.shards.saturating_add(other.shards);
        self.checks = self.checks.saturating_add(other.checks);
        self.allowed = self.allowed.saturating_add(other.allowed);
        self.cache_hits = self.cache_hits.saturating_add(other.cache_hits);
    }

    /// Counters accumulated since an `earlier` snapshot of the same
    /// section (per-field saturating subtraction).
    pub fn delta_since(&self, earlier: &ReplayMetrics) -> ReplayMetrics {
        ReplayMetrics {
            shards: self.shards.saturating_sub(earlier.shards),
            checks: self.checks.saturating_sub(earlier.checks),
            allowed: self.allowed.saturating_sub(earlier.allowed),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
        }
    }
}

/// The unified per-run metric registry every layer feeds.
///
/// Each section is owned by one layer: `checker` by the software
/// checker, `cuckoo`/`vat` by the VAT's cuckoo tables, `sim` by the
/// hardware model, `replay` by the sharded replay engine. Unused
/// sections stay zeroed. All fields are saturating sums, so
/// [`MetricsRegistry::merge`] is associative and commutative — per-shard
/// registries merge to identical totals in any interleaving.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    /// Software checker section.
    pub checker: CheckerMetrics,
    /// Cuckoo/VAT-table section (aggregated across tables).
    pub cuckoo: CuckooMetrics,
    /// VAT occupancy gauges.
    pub vat: VatMetrics,
    /// Hardware-simulator section.
    pub sim: SimMetrics,
    /// Replay-engine section.
    pub replay: ReplayMetrics,
}

impl MetricsRegistry {
    /// Merges another registry into this one, section by section.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        self.checker.merge(&other.checker);
        self.cuckoo.merge(&other.cuckoo);
        self.vat.merge(&other.vat);
        self.sim.merge(&other.sim);
        self.replay.merge(&other.replay);
    }

    /// Merges a sequence of registries into one (fold over
    /// [`MetricsRegistry::merge`]).
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a MetricsRegistry>) -> MetricsRegistry {
        let mut out = MetricsRegistry::default();
        for part in parts {
            out.merge(part);
        }
        out
    }

    /// Counters accumulated since an `earlier` cumulative snapshot: the
    /// per-field saturating subtraction `self - earlier`, applied
    /// section by section (histograms element-wise).
    ///
    /// With `earlier` an older snapshot of the same monotonically
    /// growing registry, the result is exactly the interval's traffic,
    /// and deltas compose: merging consecutive interval deltas
    /// reconstructs the cumulative difference over the combined span.
    /// Because every field subtracts saturating, a non-monotone input
    /// (a gauge that shrank, a counter that saturated mid-interval)
    /// clamps at zero rather than wrapping to a huge value — the
    /// windowed-delta invariant the time-series engine relies on.
    pub fn delta_since(&self, earlier: &MetricsRegistry) -> MetricsRegistry {
        MetricsRegistry {
            checker: self.checker.delta_since(&earlier.checker),
            cuckoo: self.cuckoo.delta_since(&earlier.cuckoo),
            vat: self.vat.delta_since(&earlier.vat),
            sim: self.sim.delta_since(&earlier.sim),
            replay: self.replay.delta_since(&earlier.replay),
        }
    }
}

impl fmt::Display for MetricsRegistry {
    /// The human-readable snapshot `dracoctl stats` prints.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.checker;
        writeln!(
            f,
            "checker : {} checks ({:.1}% cached): {} spt, {} vat, {} filter ({} insns), {} denied, {} vat-inserts",
            c.total(),
            c.cache_hit_rate() * 100.0,
            c.spt_hits,
            c.vat_hits,
            c.filter_runs,
            c.filter_insns,
            c.denials,
            c.vat_inserts
        )?;
        if c.always_allow_hits > 0 || c.masks_derived_match > 0 || c.masks_overridden > 0 {
            writeln!(
                f,
                "  analysis         : {} always-allow hits, {} derived masks installed, {} authored overrides",
                c.always_allow_hits, c.masks_derived_match, c.masks_overridden
            )?;
        }
        if c.seqlock_retries > 0 || c.vat_lock_waits > 0 || c.insert_races_lost > 0 {
            writeln!(
                f,
                "  contention       : {} seqlock retries, {} lock waits, {} insert races lost",
                c.seqlock_retries, c.vat_lock_waits, c.insert_races_lost
            )?;
        }
        if c.batched_checks > 0 {
            writeln!(
                f,
                "  batch            : {} checks in {} batches, {} prefetches, {} dedup hits, sizes {}",
                c.batched_checks, c.batches, c.prefetch_issued, c.miss_dedup_hits, c.batch_size
            )?;
        }
        if !c.insns_per_filter_run.is_empty() {
            writeln!(f, "  insns/filter-run : {}", c.insns_per_filter_run)?;
        }
        if !c.saved_insns_per_hit.is_empty() {
            writeln!(f, "  saved-insns/hit  : {}", c.saved_insns_per_hit)?;
        }
        let k = &self.cuckoo;
        writeln!(
            f,
            "cuckoo  : {} hits / {} misses ({:.1}%), {} inserts, {} updates, {} evictions, {} relocations",
            k.hits,
            k.misses,
            k.hit_rate() * 100.0,
            k.insertions,
            k.updates,
            k.evictions,
            k.relocations
        )?;
        if !k.probe_length.is_empty() {
            writeln!(f, "  probe-length     : {}", k.probe_length)?;
        }
        if !k.relocation_steps.is_empty() {
            writeln!(f, "  relocation-steps : {}", k.relocation_steps)?;
        }
        if !k.reuse_distance.is_empty() {
            writeln!(f, "  reuse-distance   : {}", k.reuse_distance)?;
        }
        let v = &self.vat;
        writeln!(
            f,
            "vat     : {} tables, {} resident sets, {} bytes",
            v.tables, v.resident_sets, v.footprint_bytes
        )?;
        let s = &self.sim;
        if s.flow_total() > 0 || s.stb_hits + s.stb_misses > 0 {
            writeln!(
                f,
                "sim     : stb {:.1}%, slb access {:.1}%, slb preload {:.1}%, tempbuf {} staged / {} committed / {} squashes",
                s.stb_hit_rate() * 100.0,
                s.slb_access_hit_rate() * 100.0,
                s.slb_preload_hit_rate() * 100.0,
                s.tempbuf_staged,
                s.tempbuf_commits,
                s.tempbuf_squashes
            )?;
            write!(f, "  flow-mix         :")?;
            for (label, count) in FLOW_LABELS.iter().zip(s.flow_mix.iter()) {
                if *count > 0 {
                    write!(f, " {label}={count}")?;
                }
            }
            writeln!(f)?;
        }
        let r = &self.replay;
        if r.checks > 0 {
            writeln!(
                f,
                "replay  : {} shards, {} checks, {} allowed, {} cache hits",
                r.shards, r.checks, r.allowed, r.cache_hits
            )?;
        }
        Ok(())
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> MetricsRegistry {
        let mut r = MetricsRegistry::default();
        r.checker.spt_hits = seed;
        r.checker.always_allow_hits = seed / 2;
        r.checker.vat_hits = seed * 2;
        r.checker.filter_runs = seed + 1;
        r.checker.masks_derived_match = seed;
        r.checker.masks_overridden = 1;
        r.checker.seqlock_retries = seed / 3;
        r.checker.vat_lock_waits = seed / 4;
        r.checker.insert_races_lost = seed / 5;
        r.checker.batches = seed / 2;
        r.checker.batched_checks = seed * 4;
        r.checker.prefetch_issued = seed * 8;
        r.checker.miss_dedup_hits = seed / 3;
        r.checker.batch_size.record(seed + 1);
        r.checker.insns_per_filter_run.record(seed + 3);
        r.checker.saved_insns_per_hit.record(seed);
        r.cuckoo.hits = seed * 3;
        r.cuckoo.misses = 1;
        r.cuckoo.probe_length.record(1);
        r.cuckoo.probe_length.record(2);
        r.cuckoo.reuse_distance.record(seed * 10);
        r.vat.tables = 2;
        r.vat.resident_sets = seed;
        r.sim.stb_hits = seed;
        r.sim.flow_mix[1] = seed;
        r.replay.shards = 1;
        r.replay.checks = seed * 100;
        r
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let parts = [sample(1), sample(5), sample(9)];
        // Left fold.
        let mut left = parts[0];
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        // Right fold.
        let mut bc = parts[1];
        bc.merge(&parts[2]);
        let mut right = parts[0];
        right.merge(&bc);
        assert_eq!(left, right, "associativity");
        // Reversed order.
        let mut rev = parts[2];
        rev.merge(&parts[1]);
        rev.merge(&parts[0]);
        assert_eq!(left, rev, "commutativity");
        // The helper agrees.
        assert_eq!(MetricsRegistry::merged(parts.iter()), left);
    }

    #[test]
    fn merge_with_default_is_identity() {
        let r = sample(7);
        let mut merged = r;
        merged.merge(&MetricsRegistry::default());
        assert_eq!(merged, r);
        let mut other = MetricsRegistry::default();
        other.merge(&r);
        assert_eq!(other, r);
    }

    #[test]
    fn rates_guard_empty_sections() {
        let r = MetricsRegistry::default();
        assert_eq!(r.checker.cache_hit_rate(), 0.0);
        assert_eq!(r.cuckoo.hit_rate(), 0.0);
        assert_eq!(r.sim.stb_hit_rate(), 0.0);
        assert_eq!(r.sim.slb_access_hit_rate(), 0.0);
        assert_eq!(r.sim.slb_preload_hit_rate(), 0.0);
    }

    #[test]
    fn saturating_totals_cannot_overflow() {
        let c = CheckerMetrics {
            spt_hits: u64::MAX,
            vat_hits: u64::MAX,
            filter_runs: u64::MAX,
            ..CheckerMetrics::default()
        };
        assert_eq!(c.total(), u64::MAX);
        let mut a = c;
        a.merge(&c);
        assert_eq!(a.spt_hits, u64::MAX);
    }

    #[test]
    fn display_mentions_every_fed_section() {
        let r = sample(4);
        let text = r.to_string();
        assert!(text.contains("checker"), "{text}");
        assert!(text.contains("cuckoo"), "{text}");
        assert!(text.contains("vat"), "{text}");
        assert!(text.contains("sim"), "{text}");
        assert!(text.contains("replay"), "{text}");
        assert!(text.contains("flow-mix"), "{text}");
        assert!(text.contains("f1=4"), "{text}");
    }

    #[test]
    fn serde_round_trip_preserves_everything() {
        let r = sample(3);
        let json = serde_json::to_string_pretty(&r).expect("serializes");
        let back: MetricsRegistry = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, r);
        // The JSON exposes the documented section names.
        for key in ["checker", "cuckoo", "vat", "sim", "replay"] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
    }

    #[test]
    fn checker_json_without_analysis_keys_still_parses() {
        // Registries serialized before the analysis counters existed
        // lack these keys; `#[serde(default)]` must zero-fill them.
        let r = sample(6);
        let json: String = serde_json::to_string_pretty(&r)
            .expect("serializes")
            .lines()
            .filter(|line| {
                !line.contains("\"always_allow_hits\"")
                    && !line.contains("\"masks_derived_match\"")
                    && !line.contains("\"masks_overridden\"")
            })
            .collect::<Vec<_>>()
            .join("\n");
        let back: MetricsRegistry = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.checker.always_allow_hits, 0);
        assert_eq!(back.checker.masks_derived_match, 0);
        assert_eq!(back.checker.masks_overridden, 0);
        assert_eq!(back.checker.spt_hits, r.checker.spt_hits);
        assert_eq!(back.cuckoo, r.cuckoo);
    }

    #[test]
    fn checker_json_without_contention_keys_still_parses() {
        // Registries serialized before the shared-table contention
        // counters existed lack these keys; `#[serde(default)]` must
        // zero-fill them.
        let r = sample(9);
        let json: String = serde_json::to_string_pretty(&r)
            .expect("serializes")
            .lines()
            .filter(|line| {
                !line.contains("\"seqlock_retries\"")
                    && !line.contains("\"vat_lock_waits\"")
                    && !line.contains("\"insert_races_lost\"")
            })
            .collect::<Vec<_>>()
            .join("\n");
        let back: MetricsRegistry = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.checker.seqlock_retries, 0);
        assert_eq!(back.checker.vat_lock_waits, 0);
        assert_eq!(back.checker.insert_races_lost, 0);
        assert_eq!(back.checker.spt_hits, r.checker.spt_hits);
    }

    #[test]
    fn checker_json_without_batch_keys_still_parses() {
        // Registries serialized before the batched check path existed
        // lack these keys; `#[serde(default)]` must zero-fill them.
        let r = sample(8);
        let json: String = serde_json::to_string_pretty(&r)
            .expect("serializes")
            .lines()
            .filter(|line| {
                !line.contains("\"batches\"")
                    && !line.contains("\"batched_checks\"")
                    && !line.contains("\"prefetch_issued\"")
                    && !line.contains("\"miss_dedup_hits\"")
            })
            .collect::<Vec<_>>()
            .join("\n");
        // `batch_size` is a multi-line histogram object; strip the whole
        // block by matching its braces (the vendored serde_json exposes
        // no mutation API).
        let start = json.find("\"batch_size\"").expect("key present");
        let mut depth = 0usize;
        let mut end = json.len();
        for (i, b) in json.bytes().enumerate().skip(start) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        if json[end..].starts_with(',') {
            end += 1;
        }
        let stripped = format!("{}{}", &json[..start], &json[end..]);
        let back: MetricsRegistry =
            serde_json::from_str(&stripped).expect("parses without batch keys");
        assert_eq!(back.checker.batches, 0);
        assert_eq!(back.checker.batched_checks, 0);
        assert_eq!(back.checker.prefetch_issued, 0);
        assert_eq!(back.checker.miss_dedup_hits, 0);
        assert_eq!(back.checker.batch_size.count(), 0);
        assert_eq!(back.checker.spt_hits, r.checker.spt_hits);
    }

    #[test]
    fn display_reports_batch_section_only_when_present() {
        let mut r = MetricsRegistry::default();
        r.checker.spt_hits = 4;
        assert!(!r.to_string().contains("batch"));
        r.checker.batches = 2;
        r.checker.batched_checks = 9;
        r.checker.prefetch_issued = 6;
        let text = r.to_string();
        assert!(text.contains("9 checks in 2 batches"), "{text}");
        assert!(text.contains("6 prefetches"), "{text}");
    }

    #[test]
    fn display_reports_contention_only_when_present() {
        let mut r = MetricsRegistry::default();
        r.checker.spt_hits = 4;
        assert!(!r.to_string().contains("contention"));
        r.checker.seqlock_retries = 2;
        let text = r.to_string();
        assert!(text.contains("contention"), "{text}");
        assert!(text.contains("2 seqlock retries"), "{text}");
    }

    #[test]
    fn flow_labels_cover_all_slots() {
        assert_eq!(FLOW_LABELS.len(), 8);
        assert_eq!(FLOW_LABELS[0], "spt-only");
        assert_eq!(FLOW_LABELS[7], "fallback");
    }

    #[test]
    fn delta_since_inverts_merge() {
        // cumulative = earlier + growth  =>  delta_since(earlier) == growth.
        let earlier = sample(5);
        let growth = sample(3);
        let mut cumulative = earlier;
        cumulative.merge(&growth);
        assert_eq!(cumulative.delta_since(&earlier), growth);
        // Delta against itself is all-zero; a "backwards" delta clamps
        // at zero instead of wrapping.
        assert_eq!(
            cumulative.delta_since(&cumulative),
            MetricsRegistry::default()
        );
        assert_eq!(earlier.delta_since(&cumulative), MetricsRegistry::default());
    }

    proptest::proptest! {
        /// The windowed-delta invariant: over a monotone sequence of
        /// cumulative snapshots, merging the per-interval deltas
        /// reconstructs the cumulative growth exactly, and no delta
        /// field ever "goes negative" (wraps) — saturating subtraction
        /// clamps instead.
        #[test]
        fn interval_deltas_sum_to_cumulative(
            seeds in proptest::collection::vec(0u64..1000, 1..16),
        ) {
            // Build a monotone cumulative chain by merging increments.
            let mut snapshots = vec![MetricsRegistry::default()];
            for &seed in &seeds {
                let mut next = *snapshots.last().unwrap();
                next.merge(&sample(seed));
                snapshots.push(next);
            }
            let mut recombined = MetricsRegistry::default();
            for pair in snapshots.windows(2) {
                let delta = pair[1].delta_since(&pair[0]);
                // Each interval delta is exactly the increment fed in.
                recombined.merge(&delta);
                // No wrap: every counter in the delta is bounded by the
                // later cumulative snapshot.
                proptest::prop_assert!(delta.checker.total() <= pair[1].checker.total());
                proptest::prop_assert!(delta.checker.denials <= pair[1].checker.denials);
            }
            let total = snapshots.last().unwrap();
            proptest::prop_assert_eq!(
                &recombined,
                &total.delta_since(&snapshots[0]),
                "sum of interval deltas must equal the cumulative growth"
            );
            proptest::prop_assert_eq!(recombined, *total, "grown from zero");
        }
    }
}
