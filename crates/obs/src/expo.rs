//! Prometheus text-format exposition of metric snapshots.
//!
//! [`render_prometheus`] turns any [`MetricsRegistry`] snapshot into
//! the Prometheus text exposition format (version 0.0.4): every
//! counter becomes a `draco_<section>_<field>_total` counter family,
//! gauges (VAT occupancy) stay unsuffixed, and the pow2 [`Histogram`]s
//! render as native Prometheus histograms with cumulative
//! `_bucket{le="..."}` series, `_sum`, and `_count`. The naming
//! conventions:
//!
//! * one flat namespace rooted at `draco_`;
//! * the section name (`checker`, `cuckoo`, `vat`, `sim`, `replay`)
//!   is the second path element, matching the registry's JSON keys;
//! * monotone counters carry the `_total` suffix, gauges none,
//!   histogram series the standard `_bucket`/`_sum`/`_count` suffixes;
//! * the only labeled family is `draco_sim_flow_total{flow="..."}`,
//!   labeled with the Table-I flow names from [`FLOW_LABELS`].
//!
//! [`validate_exposition`] is the matching line-format checker: it
//! verifies `HELP`/`TYPE` preambles, sample-line syntax, and histogram
//! consistency (monotone cumulative buckets ending at `le="+Inf"`,
//! `_count` equal to the `+Inf` bucket). CI renders an exposition from
//! a replay run and gates on this checker.

use core::fmt::Write as _;

use crate::{AuditRing, Histogram, MetricsRegistry, FLOW_LABELS};

/// Appends one `# HELP` / `# TYPE` preamble.
fn preamble(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Appends a counter family with one unlabeled sample.
fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    preamble(out, name, help, "counter");
    let _ = writeln!(out, "{name} {value}");
}

/// Appends a gauge family with one unlabeled sample.
fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    preamble(out, name, help, "gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Appends a pow2 [`Histogram`] as a Prometheus histogram family:
/// cumulative `_bucket{le="..."}` series (upper bounds from the pow2
/// bucket edges, final bucket `+Inf`), then `_sum` and `_count`.
fn histogram(out: &mut String, name: &str, help: &str, h: &Histogram) {
    preamble(out, name, help, "histogram");
    let mut cumulative = 0u64;
    for (bucket, &count) in h.counts.iter().enumerate() {
        cumulative = cumulative.saturating_add(count);
        match Histogram::bucket_high(bucket) {
            Some(high) => {
                let _ = writeln!(out, "{name}_bucket{{le=\"{high}\"}} {cumulative}");
            }
            None => {
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            }
        }
    }
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count());
}

/// Renders a registry snapshot in the Prometheus text exposition
/// format (see the module docs for the naming conventions). The output
/// always passes [`validate_exposition`].
pub fn render_prometheus(registry: &MetricsRegistry) -> String {
    let mut out = String::with_capacity(8 * 1024);

    let c = &registry.checker;
    counter(&mut out, "draco_checker_checks_total", "Total checks observed by the software checker.", c.total());
    counter(&mut out, "draco_checker_spt_hits_total", "Checks admitted by the SPT alone.", c.spt_hits);
    counter(&mut out, "draco_checker_always_allow_hits_total", "SPT hits on syscalls the filter analyzer proved always-allowed.", c.always_allow_hits);
    counter(&mut out, "draco_checker_vat_hits_total", "Checks admitted by a VAT probe.", c.vat_hits);
    counter(&mut out, "draco_checker_filter_runs_total", "Checks that fell back to the seccomp filter.", c.filter_runs);
    counter(&mut out, "draco_checker_filter_insns_total", "cBPF instructions executed by fallback runs.", c.filter_insns);
    counter(&mut out, "draco_checker_denials_total", "Checks whose final verdict was a denial.", c.denials);
    counter(&mut out, "draco_checker_vat_inserts_total", "Argument-set insertions into the VAT.", c.vat_inserts);
    counter(&mut out, "draco_checker_seqlock_retries_total", "Seqlock read retries on a shared VAT.", c.seqlock_retries);
    counter(&mut out, "draco_checker_vat_lock_waits_total", "Miss-path lock acquisitions that had to wait.", c.vat_lock_waits);
    counter(&mut out, "draco_checker_insert_races_lost_total", "Validations another thread completed first.", c.insert_races_lost);
    counter(&mut out, "draco_checker_masks_derived_match_total", "Whitelist rules installed with the analyzer-derived mask.", c.masks_derived_match);
    counter(&mut out, "draco_checker_masks_overridden_total", "Whitelist rules keeping the authored mask override.", c.masks_overridden);
    counter(&mut out, "draco_checker_batches_total", "check_batch invocations.", c.batches);
    counter(&mut out, "draco_checker_batched_checks_total", "Checks submitted through the batched path.", c.batched_checks);
    counter(&mut out, "draco_checker_prefetch_issued_total", "Software prefetches issued by batch probe passes.", c.prefetch_issued);
    counter(&mut out, "draco_checker_miss_dedup_hits_total", "Batch-local misses resolved from an earlier request in the same batch.", c.miss_dedup_hits);
    counter(&mut out, "draco_checker_reloads_permitted_total", "Hot-reload installs admitted by the reload gate.", c.reloads_permitted);
    counter(&mut out, "draco_checker_reloads_refused_total", "Hot-reload installs refused by the RequireRefinement gate.", c.reloads_refused);
    histogram(&mut out, "draco_checker_batch_size", "Distribution of submitted batch sizes.", &c.batch_size);
    histogram(&mut out, "draco_checker_insns_per_filter_run", "cBPF instructions per fallback run.", &c.insns_per_filter_run);
    histogram(&mut out, "draco_checker_saved_insns_per_hit", "Filter instructions saved per cached check.", &c.saved_insns_per_hit);

    let k = &registry.cuckoo;
    counter(&mut out, "draco_cuckoo_hits_total", "Successful cuckoo lookups.", k.hits);
    counter(&mut out, "draco_cuckoo_misses_total", "Failed cuckoo lookups.", k.misses);
    counter(&mut out, "draco_cuckoo_insertions_total", "Insertions that found a slot.", k.insertions);
    counter(&mut out, "draco_cuckoo_updates_total", "Insertions that replaced an existing key's value.", k.updates);
    counter(&mut out, "draco_cuckoo_evictions_total", "Entries forcibly evicted under relocation pressure.", k.evictions);
    counter(&mut out, "draco_cuckoo_relocations_total", "Total relocation steps across insertions.", k.relocations);
    histogram(&mut out, "draco_cuckoo_probe_length", "Probes per lookup.", &k.probe_length);
    histogram(&mut out, "draco_cuckoo_relocation_steps", "Relocation steps per insertion.", &k.relocation_steps);
    histogram(&mut out, "draco_cuckoo_reuse_distance", "Lookups between successive hits of the same resident entry.", &k.reuse_distance);

    let v = &registry.vat;
    gauge(&mut out, "draco_vat_tables", "Per-syscall VAT tables allocated.", v.tables);
    gauge(&mut out, "draco_vat_resident_sets", "Argument sets currently resident.", v.resident_sets);
    gauge(&mut out, "draco_vat_footprint_bytes", "Approximate resident footprint in bytes.", v.footprint_bytes);

    let s = &registry.sim;
    counter(&mut out, "draco_sim_stb_hits_total", "STB lookup hits.", s.stb_hits);
    counter(&mut out, "draco_sim_stb_misses_total", "STB lookup misses.", s.stb_misses);
    counter(&mut out, "draco_sim_slb_access_hits_total", "Non-speculative SLB access hits.", s.slb_access_hits);
    counter(&mut out, "draco_sim_slb_access_misses_total", "Non-speculative SLB access misses.", s.slb_access_misses);
    counter(&mut out, "draco_sim_slb_preload_hits_total", "Speculative SLB preload-probe hits.", s.slb_preload_hits);
    counter(&mut out, "draco_sim_slb_preload_misses_total", "Speculative SLB preload-probe misses.", s.slb_preload_misses);
    counter(&mut out, "draco_sim_tempbuf_staged_total", "Entries staged into the temporary buffer.", s.tempbuf_staged);
    counter(&mut out, "draco_sim_tempbuf_commits_total", "Staged entries committed into the SLB.", s.tempbuf_commits);
    counter(&mut out, "draco_sim_tempbuf_squashes_total", "Squashes that cleared the temporary buffer.", s.tempbuf_squashes);
    preamble(&mut out, "draco_sim_flow_total", "Table-I flow occupancy by flow class.", "counter");
    for (label, count) in FLOW_LABELS.iter().zip(s.flow_mix.iter()) {
        let _ = writeln!(out, "draco_sim_flow_total{{flow=\"{label}\"}} {count}");
    }

    let r = &registry.replay;
    counter(&mut out, "draco_replay_shards_total", "Replay shards merged into this snapshot.", r.shards);
    counter(&mut out, "draco_replay_checks_total", "Measured replay checks performed.", r.checks);
    counter(&mut out, "draco_replay_allowed_total", "Replay checks whose verdict permitted the call.", r.allowed);
    counter(&mut out, "draco_replay_cache_hits_total", "Replay checks admitted without running the filter.", r.cache_hits);

    out
}

/// Renders the audit stream's accounting counters as a Prometheus
/// exposition fragment, appendable after [`render_prometheus`].
pub fn render_prometheus_audit(ring: &AuditRing) -> String {
    let mut out = String::with_capacity(1024);
    counter(&mut out, "draco_audit_events_published_total", "Audit events accepted into the stream.", ring.events_published());
    counter(&mut out, "draco_audit_events_dropped_total", "Audit events dropped (ring full + rate limited).", ring.events_dropped());
    counter(&mut out, "draco_audit_dropped_ring_full_total", "Audit events dropped because the ring was full.", ring.dropped_ring_full());
    counter(&mut out, "draco_audit_dropped_rate_limited_total", "Audit events dropped by the token-bucket rate limiter.", ring.dropped_rate_limited());
    gauge(&mut out, "draco_audit_queued", "Audit events published and not yet drained.", ring.len() as u64);
    out
}

/// Validates Prometheus text-format exposition syntax plus histogram
/// consistency. Returns `Ok(families)` — the number of metric families
/// seen — or the first error, prefixed `line N:`.
///
/// Checked per line: `# HELP`/`# TYPE` shape and known types; sample
/// lines `name{labels} value` with a legal metric name and a parseable
/// value; every sample's family must have a preceding `TYPE`. Checked
/// per histogram family: `_bucket` series carry an `le` label, their
/// cumulative counts are nondecreasing in file order, the final bucket
/// is `le="+Inf"`, and `_count` equals that `+Inf` bucket.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    fn is_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    // family name -> declared type
    let mut types: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    // histogram family -> (last cumulative bucket value, saw +Inf, +Inf value)
    let mut hists: std::collections::HashMap<String, (u64, bool, u64)> =
        std::collections::HashMap::new();
    // histogram family -> reported _count value
    let mut counts: std::collections::HashMap<String, u64> = std::collections::HashMap::new();

    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            match keyword {
                "HELP" if !is_name(name) => {
                    return Err(format!("line {n}: HELP with bad metric name {name:?}"));
                }
                "HELP" => {}
                "TYPE" => {
                    let kind = parts.next().unwrap_or("");
                    if !is_name(name) {
                        return Err(format!("line {n}: TYPE with bad metric name {name:?}"));
                    }
                    if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                        return Err(format!("line {n}: unknown TYPE {kind:?}"));
                    }
                    if types.insert(name.to_string(), kind.to_string()).is_some() {
                        return Err(format!("line {n}: duplicate TYPE for {name}"));
                    }
                }
                // Anything else after '#' is a plain comment.
                _ => {}
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name_part, rest) = match line.find(['{', ' ']) {
            Some(pos) => line.split_at(pos),
            None => return Err(format!("line {n}: sample without value: {line:?}")),
        };
        if !is_name(name_part) {
            return Err(format!("line {n}: bad metric name {name_part:?}"));
        }
        let (labels, value_part) = if let Some(body) = rest.strip_prefix('{') {
            let end = body
                .find('}')
                .ok_or_else(|| format!("line {n}: unterminated label set"))?;
            (&body[..end], body[end + 1..].trim_start())
        } else {
            ("", rest.trim_start())
        };
        for pair in labels.split(',').filter(|p| !p.is_empty()) {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("line {n}: label without '=': {pair:?}"))?;
            if !is_name(k) {
                return Err(format!("line {n}: bad label name {k:?}"));
            }
            if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                return Err(format!("line {n}: unquoted label value {v:?}"));
            }
        }
        let value_str = value_part.split_whitespace().next().unwrap_or("");
        let value: f64 = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            other => other
                .parse()
                .map_err(|_| format!("line {n}: unparseable value {other:?}"))?,
        };
        // Resolve the family: histogram series suffixes fold into the
        // base family name.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                name_part.strip_suffix(suffix).filter(|base| {
                    types.get(*base).is_some_and(|t| t == "histogram")
                })
            })
            .unwrap_or(name_part);
        if !types.contains_key(family) {
            return Err(format!("line {n}: sample for undeclared family {family:?}"));
        }
        if types[family] == "histogram" && name_part.ends_with("_bucket") {
            let le = labels
                .split(',')
                .find_map(|p| p.strip_prefix("le="))
                .ok_or_else(|| format!("line {n}: histogram bucket without le label"))?;
            let entry = hists.entry(family.to_string()).or_insert((0, false, 0));
            let cumulative = value as u64;
            if cumulative < entry.0 {
                return Err(format!(
                    "line {n}: histogram {family} buckets not cumulative ({cumulative} < {})",
                    entry.0
                ));
            }
            entry.0 = cumulative;
            if le == "\"+Inf\"" {
                entry.1 = true;
                entry.2 = cumulative;
            }
        }
        if types[family] == "histogram" && name_part.ends_with("_count") {
            counts.insert(family.to_string(), value as u64);
        }
    }
    for (family, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let (_, saw_inf, inf_value) = hists
            .get(family)
            .ok_or_else(|| format!("histogram {family} has no buckets"))?;
        if !saw_inf {
            return Err(format!("histogram {family} missing le=\"+Inf\" bucket"));
        }
        let count = counts
            .get(family)
            .ok_or_else(|| format!("histogram {family} missing _count"))?;
        if count != inf_value {
            return Err(format!(
                "histogram {family}: _count {count} != +Inf bucket {inf_value}"
            ));
        }
    }
    Ok(types.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let mut r = MetricsRegistry::default();
        r.checker.spt_hits = 10;
        r.checker.vat_hits = 5;
        r.checker.filter_runs = 3;
        r.checker.denials = 2;
        r.checker.insns_per_filter_run.record(12);
        r.checker.insns_per_filter_run.record(90);
        r.cuckoo.hits = 5;
        r.cuckoo.probe_length.record(1);
        r.vat.tables = 2;
        r.sim.flow_mix[0] = 7;
        r.replay.checks = 18;
        r
    }

    #[test]
    fn rendering_passes_the_validator() {
        let text = render_prometheus(&sample_registry());
        let families = validate_exposition(&text).expect("own output validates");
        assert!(families > 30, "expected the full family set, got {families}");
        assert!(text.contains("draco_checker_denials_total 2"), "{text}");
        assert!(text.contains("draco_checker_checks_total 18"), "{text}");
        assert!(text.contains("draco_sim_flow_total{flow=\"spt-only\"} 7"));
        assert!(text.contains("draco_vat_tables 2"));
        // Histogram series shape.
        assert!(text.contains("draco_checker_insns_per_filter_run_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("draco_checker_insns_per_filter_run_count 2"));
        assert!(text.contains("draco_checker_insns_per_filter_run_sum 102"));
    }

    #[test]
    fn audit_fragment_passes_the_validator() {
        let ring = AuditRing::with_rate_limit(4, 2);
        let event = crate::AuditEvent {
            source: 0,
            syscall: 1,
            decision: crate::AuditDecision::KillProcess,
            engine: crate::AuditEngine::Compiled,
            provenance: crate::AuditProvenance::Vm,
        };
        for _ in 0..5 {
            ring.offer(event);
        }
        let text = render_prometheus_audit(&ring);
        validate_exposition(&text).expect("audit fragment validates");
        assert!(text.contains("draco_audit_events_published_total 2"), "{text}");
        assert!(text.contains("draco_audit_events_dropped_total 3"), "{text}");
        // Appending after the registry exposition still validates.
        let combined = format!("{}{}", render_prometheus(&sample_registry()), text);
        validate_exposition(&combined).expect("combined exposition validates");
    }

    #[test]
    fn empty_registry_still_renders_validly() {
        let text = render_prometheus(&MetricsRegistry::default());
        validate_exposition(&text).expect("zeroed registry validates");
        assert!(text.contains("draco_checker_checks_total 0"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_exposition("9bad_name 1").is_err());
        assert!(validate_exposition("# TYPE x flavor\nx 1").is_err());
        assert!(validate_exposition("# TYPE x counter\nx notanumber").is_err());
        assert!(validate_exposition("x 1").unwrap_err().contains("undeclared"));
        assert!(validate_exposition("# TYPE x counter\nx{le=\"1\" 1").is_err());
        assert!(validate_exposition("# TYPE x counter\nx{le=1} 1")
            .unwrap_err()
            .contains("unquoted"));
        assert!(validate_exposition("# TYPE x counter\n# TYPE x counter\nx 1")
            .unwrap_err()
            .contains("duplicate"));
    }

    #[test]
    fn validator_rejects_histogram_inconsistencies() {
        // Non-cumulative buckets.
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 0\nh_count 3\n";
        assert!(validate_exposition(text).unwrap_err().contains("cumulative"));
        // Missing +Inf.
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 0\nh_count 5\n";
        assert!(validate_exposition(text).unwrap_err().contains("+Inf"));
        // _count disagreeing with the +Inf bucket.
        let text = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 0\nh_count 4\n";
        assert!(validate_exposition(text).unwrap_err().contains("_count"));
        // A consistent one passes.
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        assert_eq!(validate_exposition(text), Ok(1));
    }

    #[test]
    fn validator_accepts_blank_lines_and_comments() {
        let text = "\n# just a comment\n# TYPE up gauge\nup 1\n\n";
        assert_eq!(validate_exposition(text), Ok(1));
    }
}
