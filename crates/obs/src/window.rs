//! Windowed time-series over cumulative metric snapshots.
//!
//! The live-telemetry layer answers "what is the check rate, hit rate,
//! and p99 *right now*?" without adding any hot-path instrumentation:
//! a pump thread (or the replay driver between slices) periodically
//! snapshots the cumulative [`MetricsRegistry`] the layers already
//! feed, and [`MetricsWindow::push`] turns consecutive snapshots into
//! per-interval deltas by saturating subtraction
//! ([`MetricsRegistry::delta_since`]). The deltas live in a
//! fixed-capacity ring whose slots are preallocated `Copy` values, so
//! pushing is zero-allocation in steady state — the same contract the
//! check path itself obeys.
//!
//! Derived sliding-window rates (checks/sec, cache-hit rate, deny
//! rate) and windowed latency quantiles come from merging the last `k`
//! interval deltas; the pow2 [`Histogram`]s merge element-wise, so a
//! window quantile costs one 16-bucket scan.
//!
//! The ring serializes as schema [`TIMESERIES_SCHEMA`]
//! (`draco-timeseries/v1`) for `repro throughput --timeseries` and the
//! coming `dracod` exporter.

use serde::{Deserialize, Serialize};

use crate::{Histogram, MetricsRegistry};

/// Schema tag of the serialized window-ring dump.
pub const TIMESERIES_SCHEMA: &str = "draco-timeseries/v1";

/// One interval of the time-series ring: the traffic delta between two
/// consecutive cumulative snapshots, plus the later snapshot itself so
/// gauges (VAT occupancy) stay readable in absolute terms.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WindowSlot {
    /// Interval ordinal since the window was created (0-based,
    /// monotonically increasing even after the ring wraps).
    pub interval: u64,
    /// Caller-supplied timestamp of the interval's start, nanoseconds
    /// relative to the caller's epoch (the previous push's `now_ns`).
    pub start_ns: u64,
    /// Caller-supplied timestamp of the interval's end (`now_ns` of the
    /// push that sealed this interval).
    pub end_ns: u64,
    /// Counters accumulated during this interval (saturating
    /// subtraction of the bracketing cumulative snapshots).
    pub delta: MetricsRegistry,
    /// The cumulative registry at `end_ns` — gauges and lifetime totals.
    pub cumulative: MetricsRegistry,
    /// Per-check latency samples recorded during this interval
    /// (nanoseconds; empty when the pump has no latency source).
    pub latency_ns: Histogram,
}

impl WindowSlot {
    /// Interval length in nanoseconds (zero for a degenerate interval).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Checks per second during this interval (0.0 when the interval
    /// has zero length).
    pub fn checks_per_sec(&self) -> f64 {
        let ns = self.duration_ns();
        if ns == 0 {
            return 0.0;
        }
        self.delta.checker.total() as f64 * 1e9 / ns as f64
    }
}

/// Sliding-window aggregates over the most recent interval deltas.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowRates {
    /// Intervals merged into this view.
    pub intervals: usize,
    /// Wall-clock span covered, nanoseconds.
    pub span_ns: u64,
    /// Checks per second across the window.
    pub checks_per_sec: f64,
    /// Fraction of window checks admitted by SPT/VAT.
    pub cache_hit_rate: f64,
    /// Fraction of window checks whose verdict was a denial.
    pub deny_rate: f64,
    /// Checks observed in the window.
    pub checks: u64,
    /// Denials observed in the window.
    pub denials: u64,
    /// Pooled per-check latency samples in the window (nanoseconds).
    pub latency_ns: Histogram,
}

/// A fixed-capacity ring of per-interval metric deltas.
///
/// All slots are preallocated at construction; [`MetricsWindow::push`]
/// writes `Copy` values in place and never allocates, so a pump can
/// run at arbitrary frequency without violating the zero-allocation
/// steady-state contract (proven by the counting-allocator tests in
/// `draco-core`). When the ring is full the oldest interval is
/// overwritten and counted in [`MetricsWindow::intervals_dropped`].
#[derive(Clone, Debug)]
pub struct MetricsWindow {
    slots: Vec<WindowSlot>,
    capacity: usize,
    /// Index of the next write (wraps at `capacity`).
    next: usize,
    /// Slots currently holding data (saturates at `capacity`).
    len: usize,
    pushed: u64,
    dropped: u64,
    last: MetricsRegistry,
    last_latency: Histogram,
    last_ns: u64,
}

impl MetricsWindow {
    /// Creates a window ring holding the most recent `capacity`
    /// intervals. The baseline snapshot starts zeroed at relative time
    /// zero; use [`MetricsWindow::reset_baseline`] to start mid-run.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "metrics window capacity must be nonzero");
        MetricsWindow {
            slots: vec![WindowSlot::default(); capacity],
            capacity,
            next: 0,
            len: 0,
            pushed: 0,
            dropped: 0,
            last: MetricsRegistry::default(),
            last_latency: Histogram::default(),
            last_ns: 0,
        }
    }

    /// Re-bases the delta computation on `cumulative` at `now_ns`
    /// without emitting an interval — used when the window attaches to
    /// a registry that already has traffic (e.g. after warm-up), so the
    /// first pushed interval covers only post-attach work.
    pub fn reset_baseline(&mut self, cumulative: &MetricsRegistry, now_ns: u64) {
        self.last = *cumulative;
        self.last_latency = Histogram::default();
        self.last_ns = now_ns;
    }

    /// Seals one interval: records the delta between `cumulative` and
    /// the previous snapshot, stamped `[last_ns, now_ns]`, and makes
    /// `cumulative` the new baseline. `latency_ns` is the *cumulative*
    /// latency histogram (the interval's samples are recovered by
    /// subtraction, like the counters); pass the previous cumulative
    /// value — or an empty histogram — when no latency source exists.
    ///
    /// Zero-allocation: the slot is written in place.
    pub fn push(&mut self, cumulative: &MetricsRegistry, latency_ns: &Histogram, now_ns: u64) {
        let slot = WindowSlot {
            interval: self.pushed,
            start_ns: self.last_ns,
            end_ns: now_ns,
            delta: cumulative.delta_since(&self.last),
            cumulative: *cumulative,
            latency_ns: latency_ns.delta_since(&self.last_latency),
        };
        if self.len == self.capacity {
            self.dropped = self.dropped.saturating_add(1);
        } else {
            self.len += 1;
        }
        self.slots[self.next] = slot;
        self.next = (self.next + 1) % self.capacity;
        self.pushed = self.pushed.saturating_add(1);
        self.last = *cumulative;
        self.last_latency = *latency_ns;
        self.last_ns = now_ns;
    }

    /// Intervals currently held (at most the capacity).
    pub const fn len(&self) -> usize {
        self.len
    }

    /// True when no interval has been pushed yet.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured ring capacity.
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total intervals ever pushed (including overwritten ones).
    pub const fn intervals_pushed(&self) -> u64 {
        self.pushed
    }

    /// Intervals lost to ring wraparound. Loss is accounted:
    /// `intervals_dropped() + len()` always equals
    /// [`MetricsWindow::intervals_pushed`].
    pub const fn intervals_dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over the held intervals, oldest first.
    pub fn iter_recent(&self) -> impl Iterator<Item = &WindowSlot> {
        // Before the first wrap the data sits in `[0, len)`; after it,
        // the oldest slot is at `next` and the buffer is fully live.
        let (tail, head) = if self.len < self.capacity {
            (&self.slots[..self.len], &self.slots[..0])
        } else {
            (&self.slots[self.next..], &self.slots[..self.next])
        };
        tail.iter().chain(head.iter())
    }

    /// The most recently sealed interval, if any.
    pub fn last_slot(&self) -> Option<&WindowSlot> {
        if self.len == 0 {
            return None;
        }
        let idx = (self.next + self.capacity - 1) % self.capacity;
        Some(&self.slots[idx])
    }

    /// Sliding-window aggregates over the newest `window` intervals
    /// (all held intervals when `window >= len`). Returns `None` when
    /// the ring is empty.
    pub fn rates_over_last(&self, window: usize) -> Option<WindowRates> {
        if self.len == 0 || window == 0 {
            return None;
        }
        let take = window.min(self.len);
        let mut delta = MetricsRegistry::default();
        let mut latency_ns = Histogram::default();
        let mut span_ns = 0u64;
        // Oldest-first iteration; keep only the newest `take`.
        for slot in self.iter_recent().skip(self.len - take) {
            delta.merge(&slot.delta);
            latency_ns.merge(&slot.latency_ns);
            span_ns = span_ns.saturating_add(slot.duration_ns());
        }
        let checks = delta.checker.total();
        let denials = delta.checker.denials;
        let checks_per_sec = if span_ns == 0 {
            0.0
        } else {
            checks as f64 * 1e9 / span_ns as f64
        };
        let deny_rate = if checks == 0 {
            0.0
        } else {
            denials as f64 / checks as f64
        };
        Some(WindowRates {
            intervals: take,
            span_ns,
            checks_per_sec,
            cache_hit_rate: delta.checker.cache_hit_rate(),
            deny_rate,
            checks,
            denials,
            latency_ns,
        })
    }

    /// Serializable dump of the whole ring, oldest interval first
    /// (schema [`TIMESERIES_SCHEMA`]).
    pub fn dump(&self) -> TimeseriesDump {
        TimeseriesDump {
            schema: TIMESERIES_SCHEMA.to_string(),
            capacity: self.capacity as u64,
            intervals_pushed: self.pushed,
            intervals_dropped: self.dropped,
            intervals: self.iter_recent().copied().collect(),
        }
    }
}

/// The serialized form of a [`MetricsWindow`] (`draco-timeseries/v1`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimeseriesDump {
    /// Always [`TIMESERIES_SCHEMA`] when produced by this crate.
    pub schema: String,
    /// Ring capacity at dump time.
    pub capacity: u64,
    /// Total intervals pushed over the window's lifetime.
    pub intervals_pushed: u64,
    /// Intervals lost to wraparound (accounted loss).
    pub intervals_dropped: u64,
    /// The held intervals, oldest first.
    pub intervals: Vec<WindowSlot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with(checks: u64, denials: u64) -> MetricsRegistry {
        let mut r = MetricsRegistry::default();
        r.checker.spt_hits = checks / 2;
        r.checker.vat_hits = checks / 4;
        r.checker.filter_runs = checks - checks / 2 - checks / 4;
        r.checker.denials = denials;
        r
    }

    #[test]
    fn push_seals_interval_deltas() {
        let mut w = MetricsWindow::with_capacity(4);
        assert!(w.is_empty());
        let lat = Histogram::default();
        w.push(&registry_with(100, 1), &lat, 1_000);
        w.push(&registry_with(250, 5), &lat, 2_000);
        assert_eq!(w.len(), 2);
        let slots: Vec<&WindowSlot> = w.iter_recent().collect();
        assert_eq!(slots[0].delta.checker.total(), 100);
        assert_eq!(slots[0].start_ns, 0);
        assert_eq!(slots[0].end_ns, 1_000);
        assert_eq!(slots[1].delta.checker.total(), 150);
        assert_eq!(slots[1].delta.checker.denials, 4);
        assert_eq!(slots[1].cumulative.checker.denials, 5);
        assert_eq!(slots[1].duration_ns(), 1_000);
        // checks/sec: 150 checks in 1 microsecond.
        assert!((slots[1].checks_per_sec() - 150e6).abs() < 1.0);
    }

    #[test]
    fn ring_wraps_and_accounts_drops() {
        let mut w = MetricsWindow::with_capacity(2);
        let lat = Histogram::default();
        for i in 1..=5u64 {
            w.push(&registry_with(i * 10, 0), &lat, i * 100);
        }
        assert_eq!(w.len(), 2);
        assert_eq!(w.intervals_pushed(), 5);
        assert_eq!(w.intervals_dropped(), 3);
        assert_eq!(w.intervals_dropped() + w.len() as u64, w.intervals_pushed());
        let intervals: Vec<u64> = w.iter_recent().map(|s| s.interval).collect();
        assert_eq!(intervals, vec![3, 4], "newest two, oldest first");
        assert_eq!(w.last_slot().unwrap().interval, 4);
    }

    #[test]
    fn reset_baseline_skips_preexisting_traffic() {
        let mut w = MetricsWindow::with_capacity(4);
        let lat = Histogram::default();
        w.reset_baseline(&registry_with(1_000, 50), 500);
        w.push(&registry_with(1_100, 51), &lat, 600);
        let slot = w.last_slot().unwrap();
        assert_eq!(slot.delta.checker.total(), 100);
        assert_eq!(slot.delta.checker.denials, 1);
        assert_eq!(slot.start_ns, 500);
    }

    #[test]
    fn rates_merge_the_newest_window() {
        let mut w = MetricsWindow::with_capacity(8);
        let mut lat = Histogram::default();
        // Three intervals of 1000 ns each: 100, 200, 300 checks.
        let mut cum = 0u64;
        let mut denials = 0u64;
        for (i, checks) in [100u64, 200, 300].iter().enumerate() {
            cum += checks;
            denials += 10;
            lat.record(1 << i); // one latency sample per interval
            w.push(&registry_with(cum, denials), &lat, (i as u64 + 1) * 1_000);
        }
        let all = w.rates_over_last(usize::MAX).unwrap();
        assert_eq!(all.intervals, 3);
        assert_eq!(all.checks, 600);
        assert_eq!(all.denials, 30);
        assert_eq!(all.span_ns, 3_000);
        assert!((all.checks_per_sec - 200e6).abs() < 1.0);
        assert!((all.deny_rate - 0.05).abs() < 1e-12);
        assert_eq!(all.latency_ns.count(), 3, "latency deltas pooled");
        let newest = w.rates_over_last(1).unwrap();
        assert_eq!(newest.checks, 300);
        assert_eq!(newest.latency_ns.count(), 1);
        assert!(w.rates_over_last(0).is_none());
        assert!(MetricsWindow::with_capacity(1).rates_over_last(3).is_none());
    }

    #[test]
    fn latency_is_deltaed_like_counters() {
        let mut w = MetricsWindow::with_capacity(4);
        let mut lat = Histogram::default();
        lat.record(10);
        lat.record(20);
        w.push(&registry_with(10, 0), &lat, 100);
        lat.record(40);
        w.push(&registry_with(20, 0), &lat, 200);
        let slots: Vec<&WindowSlot> = w.iter_recent().collect();
        assert_eq!(slots[0].latency_ns.count(), 2);
        assert_eq!(slots[1].latency_ns.count(), 1, "only the new sample");
        assert_eq!(slots[1].latency_ns.sum, 40);
    }

    #[test]
    fn dump_round_trips_with_schema() {
        let mut w = MetricsWindow::with_capacity(3);
        let lat = Histogram::default();
        for i in 1..=4u64 {
            w.push(&registry_with(i * 7, i), &lat, i * 50);
        }
        let dump = w.dump();
        assert_eq!(dump.schema, TIMESERIES_SCHEMA);
        assert_eq!(dump.capacity, 3);
        assert_eq!(dump.intervals_pushed, 4);
        assert_eq!(dump.intervals_dropped, 1);
        assert_eq!(dump.intervals.len(), 3);
        assert!(dump.intervals.windows(2).all(|p| p[0].interval + 1 == p[1].interval));
        let json = serde_json::to_string(&dump).expect("serializes");
        assert!(json.contains("draco-timeseries/v1"));
        let back: TimeseriesDump = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, dump);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = MetricsWindow::with_capacity(0);
    }

    proptest::proptest! {
        /// Windowed-delta correctness: over any monotone snapshot
        /// sequence, merging every held interval delta (when nothing
        /// was dropped) reconstructs the cumulative growth exactly —
        /// and no delta ever wraps (each is bounded by its cumulative).
        #[test]
        fn deltas_reconstruct_cumulative(
            increments in proptest::collection::vec((0u64..500, 0u64..50), 1..12),
        ) {
            let mut w = MetricsWindow::with_capacity(16);
            let lat = Histogram::default();
            let mut cum_checks = 0u64;
            let mut cum_denials = 0u64;
            for (i, &(checks, denials)) in increments.iter().enumerate() {
                cum_checks += checks;
                cum_denials = (cum_denials + denials).min(cum_checks);
                w.push(
                    &registry_with(cum_checks, cum_denials),
                    &lat,
                    (i as u64 + 1) * 1_000,
                );
            }
            proptest::prop_assert_eq!(w.intervals_dropped(), 0);
            let mut recombined = MetricsRegistry::default();
            for slot in w.iter_recent() {
                recombined.merge(&slot.delta);
                proptest::prop_assert!(
                    slot.delta.checker.total() <= slot.cumulative.checker.total()
                );
                proptest::prop_assert!(
                    slot.delta.checker.denials <= slot.cumulative.checker.denials
                );
            }
            proptest::prop_assert_eq!(recombined.checker.total(), cum_checks);
            proptest::prop_assert_eq!(recombined.checker.denials, cum_denials);
            proptest::prop_assert_eq!(
                recombined,
                w.last_slot().unwrap().cumulative,
                "sum of interval deltas == cumulative snapshot"
            );
        }
    }
}
