//! Unified Draco observability (`draco-obs`).
//!
//! The paper's whole evaluation (Figs. 11–13, Table I) is built on
//! per-layer hit-rate and locality statistics. This crate is the one
//! place those numbers live: every layer — the `draco-core` checker and
//! VAT, the `draco-cuckoo` tables, the `draco-sim` SLB/STB/temporary
//! buffer, and the sharded replay engine in `draco-workloads` — feeds a
//! [`MetricsRegistry`] section, and every surface that reports results
//! (`repro throughput`, `dracoctl stats`) reads one back.
//!
//! Design constraints, in order:
//!
//! 1. **Zero allocation on the hot path.** Counters are plain `u64`
//!    fields and histograms are fixed-size inline arrays
//!    ([`Histogram`]); recording is a bounded number of integer adds.
//!    The counting-allocator test in `draco-core` proves SPT/VAT-hit
//!    checks stay allocation-free with metrics enabled.
//! 2. **Deterministic and mergeable.** Every field is a sum, so
//!    [`MetricsRegistry::merge`] is associative and commutative:
//!    per-shard registries merged in any interleaving produce identical
//!    totals, and same-seed runs produce identical registries. Nothing
//!    wall-clock-dependent is stored here — timing lives in the replay
//!    reports.
//! 3. **Capacity-bounded debugging.** The [`EventRing`] records the most
//!    recent flow classifications ([`FlowEvent`]) for debugging fidelity
//!    regressions. It is off by default and pre-allocates at enable
//!    time, so recording never touches the heap either.
//! 4. **Sampled timing lives apart.** Stage-level wall-clock spans come
//!    from the deterministically sampled [`SpanTracer`] ([`trace`]
//!    module): unsampled checks cost one branch, sampled checks record
//!    into pre-allocated buffers, and exports (Chrome trace / folded
//!    flamegraph stacks) happen strictly off the hot path.
//! 5. **Live telemetry by subtraction, not instrumentation.** The
//!    [`window`] module turns periodic cumulative snapshots into a
//!    fixed-capacity ring of interval deltas ([`MetricsWindow`]) —
//!    sliding-window rates and quantiles with no new hot-path code.
//!    The [`audit`] module gives every denial a structured, bounded,
//!    rate-limited [`AuditEvent`] stream whose losses are explicitly
//!    counted; [`expo`] renders any snapshot in the Prometheus text
//!    format and ships the matching line-format checker.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod audit;
pub mod expo;
mod hist;
mod registry;
mod ring;
pub mod trace;
pub mod window;

pub use audit::{AuditDecision, AuditEngine, AuditEvent, AuditProvenance, AuditRing};
pub use expo::{render_prometheus, render_prometheus_audit, validate_exposition};
pub use hist::Histogram;
pub use registry::{
    CheckerMetrics, CuckooMetrics, MetricsRegistry, ReplayMetrics, SimMetrics, VatMetrics,
    FLOW_LABELS,
};
pub use ring::{merge_recent_events, EventRing, FlowClass, FlowEvent};
pub use trace::{
    chrome_trace_json, folded_stacks, merge_spans, Span, SpanTracer, Stage, StageStart, TraceScope,
};
pub use window::{
    MetricsWindow, TimeseriesDump, WindowRates, WindowSlot, TIMESERIES_SCHEMA,
};
