//! Fixed-bucket power-of-two histograms.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A fixed-bucket histogram of `u64` samples with power-of-two bucket
/// boundaries.
///
/// Bucket 0 counts exact zeros; bucket `i` (for `1 <= i < 15`) counts
/// values in `[2^(i-1), 2^i)`; the last bucket absorbs everything at or
/// above `2^14`. The bucket array is inline (no heap), recording is two
/// integer adds, and merging is an element-wise saturating sum — so
/// histograms are safe on the check hot path and merge associatively
/// across replay shards.
///
/// # Example
///
/// ```
/// use draco_obs::Histogram;
///
/// let mut h = Histogram::default();
/// h.record(0);
/// h.record(3);
/// h.record(3);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.sum, 6);
/// assert_eq!(h.counts[0], 1); // the zero
/// assert_eq!(h.counts[2], 2); // 3 lands in [2, 4)
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Per-bucket sample counts (see the type docs for boundaries).
    pub counts: [u64; Histogram::BUCKETS],
    /// Saturating sum of every recorded sample.
    pub sum: u64,
}

impl Histogram {
    /// Number of buckets.
    pub const BUCKETS: usize = 16;

    /// The bucket a value lands in.
    pub const fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            let b = 64 - value.leading_zeros() as usize;
            if b < Self::BUCKETS {
                b
            } else {
                Self::BUCKETS - 1
            }
        }
    }

    /// The inclusive lower bound of a bucket.
    pub const fn bucket_low(bucket: usize) -> u64 {
        if bucket == 0 {
            0
        } else {
            1u64 << (bucket - 1)
        }
    }

    /// The inclusive upper bound of a bucket, or `None` for the overflow
    /// bucket.
    pub const fn bucket_high(bucket: usize) -> Option<u64> {
        if bucket == 0 {
            Some(0)
        } else if bucket + 1 < Self::BUCKETS {
            Some((1u64 << bucket) - 1)
        } else {
            None
        }
    }

    /// Records one sample. Zero-allocation; overflow saturates.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        self.counts[b] = self.counts[b].saturating_add(1);
        self.sum = self.sum.saturating_add(value);
    }

    /// Records `n` samples of the same value, producing exactly the
    /// state of `n` successive [`Histogram::record`] calls (the bucket
    /// count and the sum both saturate to the same fixed point a
    /// one-at-a-time chain reaches). `n == 0` is a no-op. Lets bulk
    /// paths fold a run of identical samples into one bucket update.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let b = Self::bucket_of(value);
        self.counts[b] = self.counts[b].saturating_add(n);
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.counts
            .iter()
            .fold(0u64, |acc, &c| acc.saturating_add(c))
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Element-wise saturating merge (associative and commutative).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The samples recorded since an `earlier` snapshot of the same
    /// histogram: element-wise saturating subtraction of counts and sum.
    /// With `earlier` taken from the same monotonically growing
    /// histogram, the delta is exactly the interval's traffic; if
    /// `earlier` is not actually a prefix (or a counter saturated in
    /// between), saturation clamps at zero instead of wrapping.
    pub fn delta_since(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::default();
        for (o, (a, b)) in out
            .counts
            .iter_mut()
            .zip(self.counts.iter().zip(earlier.counts.iter()))
        {
            *o = a.saturating_sub(*b);
        }
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }

    /// Upper-bound estimate of the `q`-quantile (`q` clamped to
    /// `[0, 1]`): the inclusive upper edge of the bucket containing the
    /// `ceil(q*n)`-th smallest sample. Returns `None` when empty and
    /// `Some(u64::MAX)` when the quantile falls in the unbounded
    /// overflow bucket. The true quantile is never above the returned
    /// bound (pow2 buckets, so it is at most 2x below it).
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            cum = cum.saturating_add(c);
            if cum >= rank {
                return Some(Self::bucket_high(bucket).unwrap_or(u64::MAX));
            }
        }
        // Unreachable: cum reaches n >= rank by the last bucket.
        Some(u64::MAX)
    }

    /// Median upper bound (see [`Histogram::quantile_upper_bound`]).
    pub fn p50(&self) -> Option<u64> {
        self.quantile_upper_bound(0.50)
    }

    /// 95th-percentile upper bound.
    pub fn p95(&self) -> Option<u64> {
        self.quantile_upper_bound(0.95)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> Option<u64> {
        self.quantile_upper_bound(0.99)
    }

    /// Human-readable `p50<=A p95<=B p99<=C` summary ("empty" when no
    /// samples; `>=16384` when a quantile lands in the overflow bucket).
    pub fn quantile_summary(&self) -> String {
        use core::fmt::Write as _;
        if self.is_empty() {
            return "empty".to_string();
        }
        let mut out = String::new();
        for (label, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
            if !out.is_empty() {
                out.push(' ');
            }
            match self.quantile_upper_bound(q) {
                Some(u64::MAX) => {
                    let overflow_low = Self::bucket_low(Self::BUCKETS - 1);
                    write!(out, "{label}>={overflow_low}").expect("write to String");
                }
                Some(bound) => write!(out, "{label}<={bound}").expect("write to String"),
                None => unreachable!("non-empty histogram has quantiles"),
            }
        }
        out
    }
}

impl fmt::Display for Histogram {
    /// Compact one-line rendering of the non-empty buckets:
    /// `[0]=3 [2,3]=17 [>=16384]=1 (n=21, mean=2.4)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let low = Self::bucket_low(i);
            match Self::bucket_high(i) {
                Some(high) if high == low => write!(f, "[{low}]={c} ")?,
                Some(high) => write!(f, "[{low},{high}]={c} ")?,
                None => write!(f, "[>={low}]={c} ")?,
            }
        }
        write!(f, "(n={}, mean={:.2})", self.count(), self.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(16_383), 14);
        assert_eq!(Histogram::bucket_of(16_384), 15);
        assert_eq!(Histogram::bucket_of(u64::MAX), 15);
        // Bounds agree with bucket_of at the edges.
        for b in 0..Histogram::BUCKETS {
            assert_eq!(Histogram::bucket_of(Histogram::bucket_low(b)), b);
            if let Some(high) = Histogram::bucket_high(b) {
                assert_eq!(Histogram::bucket_of(high), b);
            }
        }
    }

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::default();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        for v in [0u64, 1, 1, 5, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum, 100_007);
        assert!(!h.is_empty());
        assert_eq!(h.counts[15], 1, "overflow bucket");
        assert!((h.mean() - 20_001.4).abs() < 1e-9);
    }

    #[test]
    fn merge_is_commutative_and_matches_pooled() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut pooled = Histogram::default();
        for v in [1u64, 2, 3] {
            a.record(v);
            pooled.record(v);
        }
        for v in [0u64, 9, 70_000] {
            b.record(v);
            pooled.record(v);
        }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, pooled);
    }

    #[test]
    fn saturating_never_panics() {
        let mut h = Histogram {
            counts: [u64::MAX; Histogram::BUCKETS],
            sum: u64::MAX,
        };
        h.record(u64::MAX);
        let copy = h;
        h.merge(&copy);
        assert_eq!(h.sum, u64::MAX);
    }

    #[test]
    fn display_labels_buckets() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(2);
        h.record(1 << 20);
        let s = h.to_string();
        assert!(s.contains("[0]=1"), "{s}");
        assert!(s.contains("[2,3]=1"), "{s}");
        assert!(s.contains("[>=16384]=1"), "{s}");
        assert!(s.contains("n=3"), "{s}");
    }

    #[test]
    fn quantiles_on_empty_histogram() {
        let h = Histogram::default();
        assert_eq!(h.p50(), None);
        assert_eq!(h.p95(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.quantile_summary(), "empty");
    }

    #[test]
    fn quantiles_are_upper_bounds() {
        // 100 samples: 50 zeros, 45 threes (bucket [2,3]), 4 hundreds
        // (bucket [64,127]), 1 huge (overflow).
        let mut h = Histogram::default();
        for _ in 0..50 {
            h.record(0);
        }
        for _ in 0..45 {
            h.record(3);
        }
        for _ in 0..4 {
            h.record(100);
        }
        h.record(1 << 40);
        assert_eq!(h.count(), 100);
        // rank(p50) = 50 -> still inside the zeros.
        assert_eq!(h.p50(), Some(0));
        // rank(p95) = 95 -> the threes' bucket, upper edge 3.
        assert_eq!(h.p95(), Some(3));
        // rank(p99) = 99 -> the hundreds' bucket [64, 127].
        assert_eq!(h.p99(), Some(127));
        // rank(p100) = 100 -> overflow bucket, unbounded above.
        assert_eq!(h.quantile_upper_bound(1.0), Some(u64::MAX));
        assert_eq!(h.quantile_summary(), "p50<=0 p95<=3 p99<=127");
    }

    #[test]
    fn quantile_of_single_sample_brackets_it() {
        let mut h = Histogram::default();
        h.record(37); // bucket [32, 63]
        for q in [0.0, 0.5, 0.99, 1.0] {
            let bound = h.quantile_upper_bound(q).unwrap();
            assert!((37..=63).contains(&bound), "q={q} bound={bound}");
        }
    }

    #[test]
    fn quantile_clamps_q_and_handles_overflow_only() {
        let mut h = Histogram::default();
        h.record(1 << 20);
        assert_eq!(h.quantile_upper_bound(-3.0), Some(u64::MAX));
        assert_eq!(h.quantile_upper_bound(7.0), Some(u64::MAX));
        assert_eq!(h.quantile_summary(), "p50>=16384 p95>=16384 p99>=16384");
    }

    #[test]
    fn quantiles_match_exact_on_dense_data() {
        // Samples 1..=1000: the true p50 is 500; the pow2 upper bound
        // must bracket it within its bucket [512, 1023].
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.p50().unwrap();
        assert_eq!(p50, 511, "rank 500 lands in [256,511]");
        let p99 = h.p99().unwrap();
        assert_eq!(p99, 1023, "rank 990 lands in [512,1023]");
    }

    /// Oracle for the quantile bound: the `ceil(q*n)`-th smallest of the
    /// actual samples, computed on a sorted copy.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let n = sorted.len() as u64;
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        sorted[(rank - 1) as usize]
    }

    proptest::proptest! {
        /// Against a sorted-sample oracle: the returned bound always
        /// brackets the true quantile — never below it, and (outside the
        /// unbounded overflow bucket) within the true value's own pow2
        /// bucket, i.e. less than 2x above it.
        #[test]
        fn quantile_upper_bound_brackets_the_sorted_sample_oracle(
            // Mixed so overflow-bucket values (>= 2^14), zeros, and
            // u64::MAX all appear often, not just the midrange.
            samples in proptest::collection::vec(
                proptest::prop_oneof![
                    proptest::strategy::Just(0u64),
                    0u64..16_384,
                    16_384u64..u64::MAX,
                    proptest::strategy::Just(u64::MAX),
                ],
                1..200,
            ),
            q_milli in 0u64..=1000,
        ) {
            let q = q_milli as f64 / 1000.0;
            let mut h = Histogram::default();
            for &v in &samples {
                h.record(v);
            }
            let mut sorted = samples;
            sorted.sort_unstable();
            for q in [q, 0.0, 1.0] {
                let truth = exact_quantile(&sorted, q);
                let bound = h.quantile_upper_bound(q).expect("non-empty");
                proptest::prop_assert!(
                    bound >= truth,
                    "q={q}: bound {bound} below the true quantile {truth}"
                );
                let bucket = Histogram::bucket_of(truth);
                proptest::prop_assert_eq!(
                    bound,
                    Histogram::bucket_high(bucket).unwrap_or(u64::MAX),
                    "q={} truth={}: bound must be the true value's bucket edge",
                    q, truth
                );
            }
        }

        /// Saturated per-bucket counts near `u64::MAX` must not overflow
        /// the rank scan — the cumulative sum saturates instead of
        /// wrapping, so the quantile lands in the first saturated bucket.
        #[test]
        fn quantile_survives_saturated_counts(
            hot in 0usize..Histogram::BUCKETS,
            q_milli in 0u64..=1000,
        ) {
            let q = q_milli as f64 / 1000.0;
            let mut h = Histogram::default();
            h.counts[hot] = u64::MAX - 1;
            h.record_n(Histogram::bucket_low(hot), 7); // push count to saturation
            proptest::prop_assert_eq!(h.count(), u64::MAX);
            let bound = h.quantile_upper_bound(q).expect("non-empty");
            proptest::prop_assert_eq!(
                bound,
                Histogram::bucket_high(hot).unwrap_or(u64::MAX)
            );
        }
    }

    #[test]
    fn delta_since_recovers_interval_traffic() {
        let mut h = Histogram::default();
        h.record(1);
        h.record(100);
        let snap = h;
        h.record(3);
        h.record(1 << 20);
        let delta = h.delta_since(&snap);
        let mut expect = Histogram::default();
        expect.record(3);
        expect.record(1 << 20);
        assert_eq!(delta, expect);
        // Delta against itself is empty; delta against a *later* state
        // clamps at zero instead of wrapping.
        assert_eq!(h.delta_since(&h), Histogram::default());
        assert_eq!(snap.delta_since(&h), Histogram::default());
    }

    #[test]
    fn serde_round_trip() {
        let mut h = Histogram::default();
        h.record(7);
        h.record(42);
        let json = serde_json::to_string(&h).expect("serializes");
        let back: Histogram = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, h);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        for (value, n) in [(0u64, 3u64), (1, 1), (7, 1000), (u64::MAX, 5), (1 << 40, 17)] {
            let mut bulk = Histogram::default();
            bulk.record(3); // pre-existing state must compose identically
            bulk.record_n(value, n);
            let mut serial = Histogram::default();
            serial.record(3);
            for _ in 0..n {
                serial.record(value);
            }
            assert_eq!(bulk, serial, "value={value} n={n}");
        }
        // n == 0 is a no-op.
        let mut h = Histogram::default();
        h.record_n(9, 0);
        assert_eq!(h, Histogram::default());
        // Sum saturation reaches the same fixed point as the serial chain.
        let mut bulk = Histogram::default();
        bulk.record_n(u64::MAX / 2, 3);
        let mut serial = Histogram::default();
        for _ in 0..3 {
            serial.record(u64::MAX / 2);
        }
        assert_eq!(bulk, serial);
    }
}
