//! Importing real Docker/OCI seccomp profiles.
//!
//! Container runtimes ship policies as `seccomp.json` (the Moby format:
//! `defaultAction`, `syscalls: [{names, action, args}]`). This module
//! converts the exact-match subset of that format — which is what real
//! deployments use (paper §II-B: "most real-world profiles simply check
//! system call IDs and argument values based on a whitelist of exact IDs
//! and values") — into a [`ProfileSpec`].
//!
//! Supported: `SCMP_ACT_ALLOW` rules over a `SCMP_ACT_ERRNO` /
//! `SCMP_ACT_KILL*` default, with `SCMP_CMP_EQ` argument conditions.
//! Multiple entries for one syscall OR together; conditions within an
//! entry AND together. Range/mask operators are rejected with a typed
//! error rather than silently weakened.

use serde::Deserialize;

use draco_bpf::SeccompAction;
use draco_syscalls::{ArgBitmask, ArgSet, SyscallTable, MAX_ARGS};

use crate::spec::{ArgPolicy, ProfileSpec, RuleSource, SyscallRule};

#[derive(Deserialize)]
#[serde(rename_all = "camelCase")]
struct Doc {
    default_action: String,
    #[serde(default)]
    syscalls: Vec<Entry>,
}

#[derive(Deserialize)]
struct Entry {
    #[serde(default)]
    names: Vec<String>,
    #[serde(default)]
    name: Option<String>,
    action: String,
    #[serde(default)]
    args: Option<Vec<ArgCond>>,
}

#[derive(Deserialize)]
struct ArgCond {
    index: usize,
    value: u64,
    #[serde(default)]
    op: String,
}

/// Errors importing a Docker-format profile.
#[derive(Debug)]
#[non_exhaustive]
pub enum DockerImportError {
    /// Malformed JSON.
    Json(serde_json::Error),
    /// An action string this importer does not support.
    UnsupportedAction(String),
    /// An argument comparison operator outside the exact-match subset.
    UnsupportedOp(String),
    /// A syscall name absent from the table (non-x86-64 syscalls in
    /// multi-arch profiles are skipped, not errored; this fires only for
    /// names that are argument-checked and unknown).
    UnknownSyscall(String),
    /// Entries for one syscall constrain different argument positions,
    /// which the exact-value whitelist model cannot express.
    MixedArgPositions(String),
    /// An argument index outside 0..6.
    BadArgIndex(usize),
}

impl std::fmt::Display for DockerImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DockerImportError::Json(e) => write!(f, "json error: {e}"),
            DockerImportError::UnsupportedAction(a) => write!(f, "unsupported action `{a}`"),
            DockerImportError::UnsupportedOp(o) => write!(f, "unsupported operator `{o}`"),
            DockerImportError::UnknownSyscall(s) => write!(f, "unknown syscall `{s}`"),
            DockerImportError::MixedArgPositions(s) => {
                write!(f, "`{s}` entries constrain different argument positions")
            }
            DockerImportError::BadArgIndex(i) => write!(f, "argument index {i} out of range"),
        }
    }
}

impl std::error::Error for DockerImportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DockerImportError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for DockerImportError {
    fn from(e: serde_json::Error) -> Self {
        DockerImportError::Json(e)
    }
}

fn parse_action(s: &str) -> Result<SeccompAction, DockerImportError> {
    Ok(match s {
        "SCMP_ACT_ALLOW" => SeccompAction::Allow,
        "SCMP_ACT_LOG" => SeccompAction::Log,
        "SCMP_ACT_ERRNO" => SeccompAction::Errno(1),
        "SCMP_ACT_TRAP" => SeccompAction::Trap,
        "SCMP_ACT_KILL" | "SCMP_ACT_KILL_THREAD" => SeccompAction::KillThread,
        "SCMP_ACT_KILL_PROCESS" => SeccompAction::KillProcess,
        other => return Err(DockerImportError::UnsupportedAction(other.to_owned())),
    })
}

/// Imports a Docker/OCI `seccomp.json` document.
///
/// Unknown syscall *names* without argument conditions are skipped (the
/// Moby profile lists syscalls of every architecture; only those present
/// in this table become rules). The import marks rules from
/// [`crate::RUNTIME_REQUIRED`] as runtime-sourced, like the built-in
/// catalog.
///
/// # Errors
///
/// Returns [`DockerImportError`] for malformed JSON or constructs outside
/// the exact-match subset.
///
/// # Example
///
/// ```
/// let json = r#"{
///   "defaultAction": "SCMP_ACT_ERRNO",
///   "syscalls": [
///     {"names": ["read", "write"], "action": "SCMP_ACT_ALLOW"},
///     {"name": "personality", "action": "SCMP_ACT_ALLOW",
///      "args": [{"index": 0, "value": 4294967295, "op": "SCMP_CMP_EQ"}]}
///   ]
/// }"#;
/// let profile = draco_profiles::from_docker_json(json, "mini")?;
/// assert_eq!(profile.allowed_syscall_count(), 3);
/// # Ok::<(), draco_profiles::DockerImportError>(())
/// ```
pub fn from_docker_json(json: &str, name: &str) -> Result<ProfileSpec, DockerImportError> {
    let doc: Doc = serde_json::from_str(json)?;
    let default = parse_action(&doc.default_action)?;
    let table = SyscallTable::shared();
    let runtime: std::collections::HashSet<&str> =
        crate::catalog::RUNTIME_REQUIRED.iter().copied().collect();
    let mut profile = ProfileSpec::new(name, default);

    // Collected conditions per syscall: (positions, value-sets).
    struct Collected {
        positions: Vec<usize>,
        sets: Vec<ArgSet>,
        any: bool,
    }
    let mut collected: std::collections::BTreeMap<u16, Collected> =
        std::collections::BTreeMap::new();

    for entry in &doc.syscalls {
        let action = parse_action(&entry.action)?;
        if !action.permits() {
            // Deny-rules on top of a deny default are no-ops in the
            // exact-match subset; skip.
            continue;
        }
        let names: Vec<&str> = entry
            .names
            .iter()
            .map(String::as_str)
            .chain(entry.name.as_deref())
            .collect();
        for syscall in names {
            let Some(desc) = table.by_name(syscall) else {
                // Foreign-architecture name: skip unless it carries
                // argument conditions (that would silently drop policy).
                if entry.args.as_ref().is_some_and(|a| !a.is_empty()) {
                    return Err(DockerImportError::UnknownSyscall(syscall.to_owned()));
                }
                continue;
            };
            let nr = desc.id().as_u16();
            let conds = entry.args.as_deref().unwrap_or(&[]);
            let slot = collected.entry(nr).or_insert_with(|| Collected {
                positions: Vec::new(),
                sets: Vec::new(),
                any: false,
            });
            if conds.is_empty() {
                slot.any = true;
                continue;
            }
            let mut positions: Vec<usize> = Vec::new();
            let mut set = ArgSet::empty();
            for cond in conds {
                if cond.index >= MAX_ARGS {
                    return Err(DockerImportError::BadArgIndex(cond.index));
                }
                if !cond.op.is_empty() && cond.op != "SCMP_CMP_EQ" {
                    return Err(DockerImportError::UnsupportedOp(cond.op.clone()));
                }
                positions.push(cond.index);
                set = set.with(cond.index, cond.value);
            }
            positions.sort_unstable();
            positions.dedup();
            if slot.sets.is_empty() {
                slot.positions = positions;
            } else if slot.positions != positions {
                return Err(DockerImportError::MixedArgPositions(syscall.to_owned()));
            }
            slot.sets.push(set);
        }
    }

    for (nr, c) in collected {
        let id = draco_syscalls::SyscallId::new(nr);
        let desc = table.get(id).expect("collected from table");
        let source = if runtime.contains(desc.name()) {
            RuleSource::Runtime
        } else {
            RuleSource::Application
        };
        let args = if c.any || c.sets.is_empty() {
            // An unconditional ALLOW entry dominates conditioned ones.
            ArgPolicy::AnyArgs
        } else {
            let mut widths = [0u8; MAX_ARGS];
            for &p in &c.positions {
                let w = desc.args()[p].checked_width();
                // Conditions on pointer args provide no protection; the
                // table knows, so use the full register width instead of
                // silently dropping the check.
                widths[p] = if w > 0 { w } else { 8 };
            }
            ArgPolicy::whitelist(ArgBitmask::from_widths(widths), c.sets)
        };
        profile.allow(id, SyscallRule { args, source });
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use draco_syscalls::SyscallId;

    const MINI: &str = r#"{
        "defaultAction": "SCMP_ACT_ERRNO",
        "architectures": ["SCMP_ARCH_X86_64"],
        "syscalls": [
            {"names": ["read", "write", "close"], "action": "SCMP_ACT_ALLOW"},
            {"names": ["arm_specific_call"], "action": "SCMP_ACT_ALLOW"},
            {"name": "personality", "action": "SCMP_ACT_ALLOW",
             "args": [{"index": 0, "value": 4294967295, "op": "SCMP_CMP_EQ"}]},
            {"name": "personality", "action": "SCMP_ACT_ALLOW",
             "args": [{"index": 0, "value": 131080, "op": "SCMP_CMP_EQ"}]}
        ]
    }"#;

    #[test]
    fn imports_the_exact_match_subset() {
        let p = from_docker_json(MINI, "mini").expect("imports");
        assert_eq!(p.name(), "mini");
        assert_eq!(p.default_action(), SeccompAction::Errno(1));
        // read/write/close + personality; the ARM name is skipped.
        assert_eq!(p.allowed_syscall_count(), 4);
        let personality = |v: u64| {
            draco_syscalls::SyscallRequest::new(
                0,
                SyscallId::new(135),
                draco_syscalls::ArgSet::from_slice(&[v]),
            )
        };
        assert!(p.evaluate(&personality(0xffff_ffff)).permits());
        assert!(p.evaluate(&personality(0x20008)).permits());
        assert!(!p.evaluate(&personality(0x1)).permits());
    }

    #[test]
    fn unconditional_entry_dominates_conditions() {
        let json = r#"{
            "defaultAction": "SCMP_ACT_KILL_PROCESS",
            "syscalls": [
                {"name": "ioctl", "action": "SCMP_ACT_ALLOW",
                 "args": [{"index": 1, "value": 21505, "op": "SCMP_CMP_EQ"}]},
                {"name": "ioctl", "action": "SCMP_ACT_ALLOW"}
            ]
        }"#;
        let p = from_docker_json(json, "t").unwrap();
        let ioctl = draco_syscalls::SyscallRequest::new(
            0,
            SyscallId::new(16),
            draco_syscalls::ArgSet::from_slice(&[1, 0x9999]),
        );
        assert!(p.evaluate(&ioctl).permits(), "unconditional wins");
    }

    #[test]
    fn rejects_range_operators() {
        let json = r#"{
            "defaultAction": "SCMP_ACT_ERRNO",
            "syscalls": [{"name": "ioctl", "action": "SCMP_ACT_ALLOW",
                "args": [{"index": 1, "value": 5, "op": "SCMP_CMP_LE"}]}]
        }"#;
        assert!(matches!(
            from_docker_json(json, "t"),
            Err(DockerImportError::UnsupportedOp(_))
        ));
    }

    #[test]
    fn rejects_unknown_argchecked_syscall() {
        let json = r#"{
            "defaultAction": "SCMP_ACT_ERRNO",
            "syscalls": [{"name": "martian", "action": "SCMP_ACT_ALLOW",
                "args": [{"index": 0, "value": 5, "op": "SCMP_CMP_EQ"}]}]
        }"#;
        assert!(matches!(
            from_docker_json(json, "t"),
            Err(DockerImportError::UnknownSyscall(_))
        ));
    }

    #[test]
    fn rejects_mixed_positions() {
        let json = r#"{
            "defaultAction": "SCMP_ACT_ERRNO",
            "syscalls": [
                {"name": "ioctl", "action": "SCMP_ACT_ALLOW",
                 "args": [{"index": 1, "value": 1, "op": "SCMP_CMP_EQ"}]},
                {"name": "ioctl", "action": "SCMP_ACT_ALLOW",
                 "args": [{"index": 2, "value": 2, "op": "SCMP_CMP_EQ"}]}
            ]
        }"#;
        assert!(matches!(
            from_docker_json(json, "t"),
            Err(DockerImportError::MixedArgPositions(_))
        ));
    }

    #[test]
    fn rejects_bad_index_and_action() {
        let json = r#"{
            "defaultAction": "SCMP_ACT_ERRNO",
            "syscalls": [{"name": "ioctl", "action": "SCMP_ACT_ALLOW",
                "args": [{"index": 9, "value": 5, "op": "SCMP_CMP_EQ"}]}]
        }"#;
        assert!(matches!(
            from_docker_json(json, "t"),
            Err(DockerImportError::BadArgIndex(9))
        ));
        let json = r#"{"defaultAction": "SCMP_ACT_NOTIFY", "syscalls": []}"#;
        assert!(matches!(
            from_docker_json(json, "t"),
            Err(DockerImportError::UnsupportedAction(_))
        ));
    }

    #[test]
    fn imported_profile_compiles_and_checks() {
        let p = from_docker_json(MINI, "mini").unwrap();
        let stack = crate::compile_stacked(&p, crate::FilterLayout::Linear).unwrap();
        let data = draco_bpf::SeccompData::for_syscall(0, &[3, 0, 8, 0, 0, 0]);
        assert!(stack.run(&data).unwrap().action.permits());
        let denied = draco_bpf::SeccompData::for_syscall(57, &[0; 6]);
        assert_eq!(
            stack.run(&denied).unwrap().action,
            SeccompAction::Errno(1)
        );
    }
}
