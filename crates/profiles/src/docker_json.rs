//! Importing real Docker/OCI seccomp profiles.
//!
//! Container runtimes ship policies as `seccomp.json` (the Moby format:
//! `defaultAction`, `syscalls: [{names, action, args}]`). This module
//! converts the exact-match subset of that format — which is what real
//! deployments use (paper §II-B: "most real-world profiles simply check
//! system call IDs and argument values based on a whitelist of exact IDs
//! and values") — into a [`ProfileSpec`].
//!
//! Supported: `SCMP_ACT_ALLOW` rules over a `SCMP_ACT_ERRNO` /
//! `SCMP_ACT_KILL*` default, with `SCMP_CMP_EQ` argument conditions.
//! Multiple entries for one syscall OR together; conditions within an
//! entry AND together. Range/mask operators are rejected with a typed
//! error rather than silently weakened.
//!
//! `SCMP_ACT_ERRNO` honors the document's `errnoRet` /
//! `defaultErrnoRet` fields (the errno the denial returns): absent means
//! `EPERM` (1), the Moby default, and values outside the 16 bits of
//! `SECCOMP_RET_DATA` are rejected like the kernel would at
//! filter-install time. Unknown syscall names without argument
//! conditions are skipped but reported ([`import_docker_json`]), so a
//! typo'd name is visible instead of silently unenforced.

use serde::Deserialize;

use draco_bpf::SeccompAction;
use draco_syscalls::{ArgBitmask, ArgSet, SyscallTable, MAX_ARGS};

use crate::spec::{ArgPolicy, ProfileSpec, RuleSource, SyscallRule};

#[derive(Deserialize)]
#[serde(rename_all = "camelCase")]
struct Doc {
    default_action: String,
    #[serde(default)]
    default_errno_ret: Option<u64>,
    #[serde(default)]
    syscalls: Vec<Entry>,
}

#[derive(Deserialize)]
#[serde(rename_all = "camelCase")]
struct Entry {
    #[serde(default)]
    names: Vec<String>,
    #[serde(default)]
    name: Option<String>,
    action: String,
    #[serde(default)]
    errno_ret: Option<u64>,
    #[serde(default)]
    args: Option<Vec<ArgCond>>,
}

#[derive(Deserialize)]
struct ArgCond {
    index: usize,
    value: u64,
    #[serde(default)]
    op: String,
}

/// Errors importing a Docker-format profile.
#[derive(Debug)]
#[non_exhaustive]
pub enum DockerImportError {
    /// Malformed JSON.
    Json(serde_json::Error),
    /// An action string this importer does not support.
    UnsupportedAction(String),
    /// An argument comparison operator outside the exact-match subset.
    UnsupportedOp(String),
    /// A syscall name absent from the table (non-x86-64 syscalls in
    /// multi-arch profiles are skipped, not errored; this fires only for
    /// names that are argument-checked and unknown).
    UnknownSyscall(String),
    /// Entries for one syscall constrain different argument positions,
    /// which the exact-value whitelist model cannot express.
    MixedArgPositions(String),
    /// An argument index outside 0..6.
    BadArgIndex(usize),
    /// An `errnoRet` value outside the 16 bits `SECCOMP_RET_DATA`
    /// carries (the kernel rejects these at filter-install time).
    BadErrnoRet(u64),
}

impl std::fmt::Display for DockerImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DockerImportError::Json(e) => write!(f, "json error: {e}"),
            DockerImportError::UnsupportedAction(a) => write!(f, "unsupported action `{a}`"),
            DockerImportError::UnsupportedOp(o) => write!(f, "unsupported operator `{o}`"),
            DockerImportError::UnknownSyscall(s) => write!(f, "unknown syscall `{s}`"),
            DockerImportError::MixedArgPositions(s) => {
                write!(f, "`{s}` entries constrain different argument positions")
            }
            DockerImportError::BadArgIndex(i) => write!(f, "argument index {i} out of range"),
            DockerImportError::BadErrnoRet(e) => {
                write!(f, "errnoRet {e} exceeds the 16-bit SECCOMP_RET_DATA range")
            }
        }
    }
}

impl std::error::Error for DockerImportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DockerImportError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for DockerImportError {
    fn from(e: serde_json::Error) -> Self {
        DockerImportError::Json(e)
    }
}

/// Parses an action string. `errno_ret` is the entry's (or document's)
/// `errnoRet` field: the errno an `SCMP_ACT_ERRNO` verdict returns. The
/// Moby default when the field is absent is `EPERM` (1); values outside
/// the 16 bits of `SECCOMP_RET_DATA` are rejected, as the kernel would.
fn parse_action(s: &str, errno_ret: Option<u64>) -> Result<SeccompAction, DockerImportError> {
    Ok(match s {
        "SCMP_ACT_ALLOW" => SeccompAction::Allow,
        "SCMP_ACT_LOG" => SeccompAction::Log,
        "SCMP_ACT_ERRNO" => {
            let errno = errno_ret.unwrap_or(1);
            let errno =
                u16::try_from(errno).map_err(|_| DockerImportError::BadErrnoRet(errno))?;
            SeccompAction::Errno(errno)
        }
        "SCMP_ACT_TRAP" => SeccompAction::Trap,
        "SCMP_ACT_KILL" | "SCMP_ACT_KILL_THREAD" => SeccompAction::KillThread,
        "SCMP_ACT_KILL_PROCESS" => SeccompAction::KillProcess,
        other => return Err(DockerImportError::UnsupportedAction(other.to_owned())),
    })
}

/// The result of a Docker/OCI import: the profile plus everything the
/// importer dropped on the floor — see [`import_docker_json`].
#[derive(Clone, Debug)]
pub struct DockerImport {
    /// The imported profile.
    pub profile: ProfileSpec,
    /// Syscall names (without argument conditions) absent from the
    /// syscall table and therefore skipped — typically foreign-arch
    /// names from a multi-arch Moby profile, but also typos, which is
    /// why `dracoctl analyze` surfaces them.
    pub skipped: Vec<String>,
}

/// Imports a Docker/OCI `seccomp.json` document.
///
/// Unknown syscall *names* without argument conditions are skipped (the
/// Moby profile lists syscalls of every architecture; only those present
/// in this table become rules). The import marks rules from
/// [`crate::RUNTIME_REQUIRED`] as runtime-sourced, like the built-in
/// catalog.
///
/// # Errors
///
/// Returns [`DockerImportError`] for malformed JSON or constructs outside
/// the exact-match subset.
///
/// # Example
///
/// ```
/// let json = r#"{
///   "defaultAction": "SCMP_ACT_ERRNO",
///   "syscalls": [
///     {"names": ["read", "write"], "action": "SCMP_ACT_ALLOW"},
///     {"name": "personality", "action": "SCMP_ACT_ALLOW",
///      "args": [{"index": 0, "value": 4294967295, "op": "SCMP_CMP_EQ"}]}
///   ]
/// }"#;
/// let profile = draco_profiles::from_docker_json(json, "mini")?;
/// assert_eq!(profile.allowed_syscall_count(), 3);
/// # Ok::<(), draco_profiles::DockerImportError>(())
/// ```
pub fn from_docker_json(json: &str, name: &str) -> Result<ProfileSpec, DockerImportError> {
    import_docker_json(json, name).map(|import| import.profile)
}

/// Like [`from_docker_json`], but also reports which syscall names the
/// importer skipped instead of silently dropping that information.
///
/// # Errors
///
/// Returns [`DockerImportError`] for malformed JSON or constructs outside
/// the exact-match subset.
pub fn import_docker_json(json: &str, name: &str) -> Result<DockerImport, DockerImportError> {
    let doc: Doc = serde_json::from_str(json)?;
    let default = parse_action(&doc.default_action, doc.default_errno_ret)?;
    let table = SyscallTable::shared();
    let runtime: std::collections::HashSet<&str> =
        crate::catalog::RUNTIME_REQUIRED.iter().copied().collect();
    let mut profile = ProfileSpec::new(name, default);

    // Collected conditions per syscall: (positions, value-sets).
    struct Collected {
        positions: Vec<usize>,
        sets: Vec<ArgSet>,
        any: bool,
    }
    let mut collected: std::collections::BTreeMap<u16, Collected> =
        std::collections::BTreeMap::new();
    let mut skipped: Vec<String> = Vec::new();

    for entry in &doc.syscalls {
        let action = parse_action(&entry.action, entry.errno_ret)?;
        if !action.permits() {
            // Deny-rules on top of a deny default are no-ops in the
            // exact-match subset; skip.
            continue;
        }
        let names: Vec<&str> = entry
            .names
            .iter()
            .map(String::as_str)
            .chain(entry.name.as_deref())
            .collect();
        for syscall in names {
            let Some(desc) = table.by_name(syscall) else {
                // Foreign-architecture name: skip unless it carries
                // argument conditions (that would silently drop policy).
                if entry.args.as_ref().is_some_and(|a| !a.is_empty()) {
                    return Err(DockerImportError::UnknownSyscall(syscall.to_owned()));
                }
                skipped.push(syscall.to_owned());
                continue;
            };
            let nr = desc.id().as_u16();
            let conds = entry.args.as_deref().unwrap_or(&[]);
            let slot = collected.entry(nr).or_insert_with(|| Collected {
                positions: Vec::new(),
                sets: Vec::new(),
                any: false,
            });
            if conds.is_empty() {
                slot.any = true;
                continue;
            }
            let mut positions: Vec<usize> = Vec::new();
            let mut set = ArgSet::empty();
            for cond in conds {
                if cond.index >= MAX_ARGS {
                    return Err(DockerImportError::BadArgIndex(cond.index));
                }
                if !cond.op.is_empty() && cond.op != "SCMP_CMP_EQ" {
                    return Err(DockerImportError::UnsupportedOp(cond.op.clone()));
                }
                positions.push(cond.index);
                set = set.with(cond.index, cond.value);
            }
            positions.sort_unstable();
            positions.dedup();
            if slot.sets.is_empty() {
                slot.positions = positions;
            } else if slot.positions != positions {
                return Err(DockerImportError::MixedArgPositions(syscall.to_owned()));
            }
            slot.sets.push(set);
        }
    }

    for (nr, c) in collected {
        let id = draco_syscalls::SyscallId::new(nr);
        let desc = table.get(id).expect("collected from table");
        let source = if runtime.contains(desc.name()) {
            RuleSource::Runtime
        } else {
            RuleSource::Application
        };
        let args = if c.any || c.sets.is_empty() {
            // An unconditional ALLOW entry dominates conditioned ones.
            ArgPolicy::AnyArgs
        } else {
            let mut widths = [0u8; MAX_ARGS];
            for &p in &c.positions {
                let w = desc.args()[p].checked_width();
                // Conditions on pointer args provide no protection; the
                // table knows, so use the full register width instead of
                // silently dropping the check.
                widths[p] = if w > 0 { w } else { 8 };
            }
            ArgPolicy::whitelist(ArgBitmask::from_widths(widths), c.sets)
        };
        profile.allow(id, SyscallRule { args, source });
    }
    skipped.sort_unstable();
    skipped.dedup();
    Ok(DockerImport { profile, skipped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use draco_syscalls::SyscallId;

    const MINI: &str = r#"{
        "defaultAction": "SCMP_ACT_ERRNO",
        "architectures": ["SCMP_ARCH_X86_64"],
        "syscalls": [
            {"names": ["read", "write", "close"], "action": "SCMP_ACT_ALLOW"},
            {"names": ["arm_specific_call"], "action": "SCMP_ACT_ALLOW"},
            {"name": "personality", "action": "SCMP_ACT_ALLOW",
             "args": [{"index": 0, "value": 4294967295, "op": "SCMP_CMP_EQ"}]},
            {"name": "personality", "action": "SCMP_ACT_ALLOW",
             "args": [{"index": 0, "value": 131080, "op": "SCMP_CMP_EQ"}]}
        ]
    }"#;

    #[test]
    fn imports_the_exact_match_subset() {
        let p = from_docker_json(MINI, "mini").expect("imports");
        assert_eq!(p.name(), "mini");
        assert_eq!(p.default_action(), SeccompAction::Errno(1));
        // read/write/close + personality; the ARM name is skipped.
        assert_eq!(p.allowed_syscall_count(), 4);
        let personality = |v: u64| {
            draco_syscalls::SyscallRequest::new(
                0,
                SyscallId::new(135),
                draco_syscalls::ArgSet::from_slice(&[v]),
            )
        };
        assert!(p.evaluate(&personality(0xffff_ffff)).permits());
        assert!(p.evaluate(&personality(0x20008)).permits());
        assert!(!p.evaluate(&personality(0x1)).permits());
    }

    #[test]
    fn unconditional_entry_dominates_conditions() {
        let json = r#"{
            "defaultAction": "SCMP_ACT_KILL_PROCESS",
            "syscalls": [
                {"name": "ioctl", "action": "SCMP_ACT_ALLOW",
                 "args": [{"index": 1, "value": 21505, "op": "SCMP_CMP_EQ"}]},
                {"name": "ioctl", "action": "SCMP_ACT_ALLOW"}
            ]
        }"#;
        let p = from_docker_json(json, "t").unwrap();
        let ioctl = draco_syscalls::SyscallRequest::new(
            0,
            SyscallId::new(16),
            draco_syscalls::ArgSet::from_slice(&[1, 0x9999]),
        );
        assert!(p.evaluate(&ioctl).permits(), "unconditional wins");
    }

    #[test]
    fn rejects_range_operators() {
        let json = r#"{
            "defaultAction": "SCMP_ACT_ERRNO",
            "syscalls": [{"name": "ioctl", "action": "SCMP_ACT_ALLOW",
                "args": [{"index": 1, "value": 5, "op": "SCMP_CMP_LE"}]}]
        }"#;
        assert!(matches!(
            from_docker_json(json, "t"),
            Err(DockerImportError::UnsupportedOp(_))
        ));
    }

    #[test]
    fn rejects_unknown_argchecked_syscall() {
        let json = r#"{
            "defaultAction": "SCMP_ACT_ERRNO",
            "syscalls": [{"name": "martian", "action": "SCMP_ACT_ALLOW",
                "args": [{"index": 0, "value": 5, "op": "SCMP_CMP_EQ"}]}]
        }"#;
        assert!(matches!(
            from_docker_json(json, "t"),
            Err(DockerImportError::UnknownSyscall(_))
        ));
    }

    #[test]
    fn rejects_mixed_positions() {
        let json = r#"{
            "defaultAction": "SCMP_ACT_ERRNO",
            "syscalls": [
                {"name": "ioctl", "action": "SCMP_ACT_ALLOW",
                 "args": [{"index": 1, "value": 1, "op": "SCMP_CMP_EQ"}]},
                {"name": "ioctl", "action": "SCMP_ACT_ALLOW",
                 "args": [{"index": 2, "value": 2, "op": "SCMP_CMP_EQ"}]}
            ]
        }"#;
        assert!(matches!(
            from_docker_json(json, "t"),
            Err(DockerImportError::MixedArgPositions(_))
        ));
    }

    #[test]
    fn rejects_bad_index_and_action() {
        let json = r#"{
            "defaultAction": "SCMP_ACT_ERRNO",
            "syscalls": [{"name": "ioctl", "action": "SCMP_ACT_ALLOW",
                "args": [{"index": 9, "value": 5, "op": "SCMP_CMP_EQ"}]}]
        }"#;
        assert!(matches!(
            from_docker_json(json, "t"),
            Err(DockerImportError::BadArgIndex(9))
        ));
        let json = r#"{"defaultAction": "SCMP_ACT_NOTIFY", "syscalls": []}"#;
        assert!(matches!(
            from_docker_json(json, "t"),
            Err(DockerImportError::UnsupportedAction(_))
        ));
    }

    #[test]
    fn default_errno_ret_round_trips_through_compile_and_check() {
        // Regression: the importer used to map every SCMP_ACT_ERRNO to
        // Errno(1), discarding errnoRet. 38 = ENOSYS.
        let json = r#"{
            "defaultAction": "SCMP_ACT_ERRNO",
            "defaultErrnoRet": 38,
            "syscalls": [{"names": ["read"], "action": "SCMP_ACT_ALLOW"}]
        }"#;
        let p = from_docker_json(json, "enosys").unwrap();
        assert_eq!(p.default_action(), SeccompAction::Errno(38));
        let denied = draco_bpf::SeccompData::for_syscall(57, &[0; 6]);
        let stack = crate::compile_stacked(&p, crate::FilterLayout::BinaryTree).unwrap();
        assert_eq!(stack.run(&denied).unwrap().action, SeccompAction::Errno(38));
        // …and identically through the specialized decision DAG.
        let dag = crate::compile_dag(&p).unwrap();
        assert_eq!(dag.run(&denied).unwrap().action, SeccompAction::Errno(38));
        let allowed = draco_bpf::SeccompData::for_syscall(0, &[0; 6]);
        assert!(dag.run(&allowed).unwrap().action.permits());
    }

    #[test]
    fn entry_errno_ret_is_parsed_and_out_of_range_rejected() {
        // Per-entry errnoRet parses (the entry is a deny-rule no-op over
        // a deny default, but the value must still validate).
        let json = r#"{
            "defaultAction": "SCMP_ACT_ERRNO",
            "syscalls": [{"name": "read", "action": "SCMP_ACT_ERRNO", "errnoRet": 70000}]
        }"#;
        assert!(matches!(
            from_docker_json(json, "t"),
            Err(DockerImportError::BadErrnoRet(70000))
        ));
        let json = r#"{
            "defaultAction": "SCMP_ACT_ERRNO",
            "defaultErrnoRet": 65536,
            "syscalls": []
        }"#;
        assert!(matches!(
            from_docker_json(json, "t"),
            Err(DockerImportError::BadErrnoRet(65536))
        ));
        // Absent errnoRet keeps the Moby EPERM default.
        let p = from_docker_json(r#"{"defaultAction": "SCMP_ACT_ERRNO"}"#, "t").unwrap();
        assert_eq!(p.default_action(), SeccompAction::Errno(1));
    }

    #[test]
    fn skipped_unknown_names_are_reported() {
        let import = import_docker_json(MINI, "mini").unwrap();
        assert_eq!(import.skipped, vec!["arm_specific_call".to_owned()]);
        assert_eq!(import.profile.allowed_syscall_count(), 4);
        // Known-only documents report nothing skipped.
        let clean = import_docker_json(
            r#"{"defaultAction": "SCMP_ACT_ERRNO",
                "syscalls": [{"names": ["read"], "action": "SCMP_ACT_ALLOW"}]}"#,
            "t",
        )
        .unwrap();
        assert!(clean.skipped.is_empty());
    }

    #[test]
    fn imported_profile_compiles_and_checks() {
        let p = from_docker_json(MINI, "mini").unwrap();
        let stack = crate::compile_stacked(&p, crate::FilterLayout::Linear).unwrap();
        let data = draco_bpf::SeccompData::for_syscall(0, &[3, 0, 8, 0, 0, 0]);
        assert!(stack.run(&data).unwrap().action.permits());
        let denied = draco_bpf::SeccompData::for_syscall(57, &[0; 6]);
        assert_eq!(
            stack.run(&denied).unwrap().action,
            SeccompAction::Errno(1)
        );
    }
}
