//! Profile serialization (the on-disk artifact the §X-B toolkit emits).
//!
//! Docker profiles ship as JSON; this module round-trips [`ProfileSpec`]
//! through a stable JSON schema so generated profiles can be saved,
//! diffed, and reloaded by the benchmark harness.

use serde::{Deserialize, Serialize};

use draco_bpf::SeccompAction;
use draco_syscalls::{ArgBitmask, ArgSet, SyscallId, MAX_ARGS};

use crate::spec::{ArgPolicy, ProfileSpec, RuleSource, SyscallRule};

/// Serialization schema version.
const SCHEMA_VERSION: u32 = 1;

#[derive(Serialize, Deserialize)]
struct ProfileDoc {
    version: u32,
    name: String,
    default_action: String,
    default_errno: Option<u16>,
    repeat: u8,
    rules: Vec<RuleDoc>,
}

#[derive(Serialize, Deserialize)]
struct RuleDoc {
    nr: u16,
    source: String,
    /// Absent for any-args rules.
    #[serde(skip_serializing_if = "Option::is_none")]
    mask: Option<u64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    sets: Option<Vec<[u64; MAX_ARGS]>>,
}

fn action_name(action: SeccompAction) -> (String, Option<u16>) {
    match action {
        SeccompAction::Allow => ("allow".into(), None),
        SeccompAction::Log => ("log".into(), None),
        SeccompAction::Errno(e) => ("errno".into(), Some(e)),
        SeccompAction::Trap => ("trap".into(), None),
        SeccompAction::Trace(d) => ("trace".into(), Some(d)),
        SeccompAction::KillThread => ("kill-thread".into(), None),
        SeccompAction::KillProcess => ("kill-process".into(), None),
    }
}

fn action_from(name: &str, data: Option<u16>) -> Result<SeccompAction, ProfileIoError> {
    Ok(match name {
        "allow" => SeccompAction::Allow,
        "log" => SeccompAction::Log,
        "errno" => SeccompAction::Errno(data.unwrap_or(1)),
        "trap" => SeccompAction::Trap,
        "trace" => SeccompAction::Trace(data.unwrap_or(0)),
        "kill-thread" => SeccompAction::KillThread,
        "kill-process" => SeccompAction::KillProcess,
        other => return Err(ProfileIoError::UnknownAction(other.to_owned())),
    })
}

/// Errors decoding a serialized profile.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProfileIoError {
    /// Underlying JSON failure.
    Json(serde_json::Error),
    /// Unsupported schema version.
    BadVersion(u32),
    /// Unrecognized action name.
    UnknownAction(String),
    /// Unrecognized rule source.
    UnknownSource(String),
    /// Mask wider than 48 bits.
    BadMask(u64),
}

impl std::fmt::Display for ProfileIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileIoError::Json(e) => write!(f, "json error: {e}"),
            ProfileIoError::BadVersion(v) => write!(f, "unsupported schema version {v}"),
            ProfileIoError::UnknownAction(a) => write!(f, "unknown action `{a}`"),
            ProfileIoError::UnknownSource(s) => write!(f, "unknown rule source `{s}`"),
            ProfileIoError::BadMask(m) => write!(f, "argument mask {m:#x} exceeds 48 bits"),
        }
    }
}

impl std::error::Error for ProfileIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileIoError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for ProfileIoError {
    fn from(e: serde_json::Error) -> Self {
        ProfileIoError::Json(e)
    }
}

/// Serializes a profile to pretty JSON.
///
/// # Example
///
/// ```
/// use draco_profiles::{firecracker, profile_from_json, profile_to_json};
///
/// let p = firecracker();
/// let json = profile_to_json(&p);
/// let back = profile_from_json(&json)?;
/// assert_eq!(back, p);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn profile_to_json(profile: &ProfileSpec) -> String {
    let (default_action, default_errno) = action_name(profile.default_action());
    let rules = profile
        .rules()
        .map(|(id, rule)| {
            let (mask, sets) = match &rule.args {
                ArgPolicy::AnyArgs => (None, None),
                ArgPolicy::Whitelist { mask, sets } => (
                    Some(mask.raw()),
                    Some(sets.iter().map(draco_syscalls::ArgSet::as_array).collect()),
                ),
            };
            RuleDoc {
                nr: id.as_u16(),
                source: match rule.source {
                    RuleSource::Runtime => "runtime".into(),
                    RuleSource::Application => "application".into(),
                },
                mask,
                sets,
            }
        })
        .collect();
    let doc = ProfileDoc {
        version: SCHEMA_VERSION,
        name: profile.name().to_owned(),
        default_action,
        default_errno,
        repeat: profile.repeat(),
        rules,
    };
    serde_json::to_string_pretty(&doc).expect("profile serialization is infallible")
}

/// Deserializes a profile from JSON.
///
/// # Errors
///
/// Returns [`ProfileIoError`] for malformed JSON, unknown schema versions,
/// or invalid field values.
pub fn profile_from_json(json: &str) -> Result<ProfileSpec, ProfileIoError> {
    let doc: ProfileDoc = serde_json::from_str(json)?;
    if doc.version != SCHEMA_VERSION {
        return Err(ProfileIoError::BadVersion(doc.version));
    }
    let default = action_from(&doc.default_action, doc.default_errno)?;
    let mut profile = ProfileSpec::new(doc.name, default);

    for rule in doc.rules {
        let source = match rule.source.as_str() {
            "runtime" => RuleSource::Runtime,
            "application" => RuleSource::Application,
            other => return Err(ProfileIoError::UnknownSource(other.to_owned())),
        };
        let args = match (rule.mask, rule.sets) {
            (Some(mask), Some(sets)) => {
                if mask >= 1 << 48 {
                    return Err(ProfileIoError::BadMask(mask));
                }
                ArgPolicy::whitelist(
                    ArgBitmask::from_raw(mask),
                    sets.into_iter().map(ArgSet::new),
                )
            }
            _ => ArgPolicy::AnyArgs,
        };
        profile.allow(SyscallId::new(rule.nr), SyscallRule { args, source });
    }
    // The serialized name already carries any `-2x` suffix, so restore the
    // repeat factor without the renaming `with_repeat` performs.
    if doc.repeat > 1 {
        profile.set_repeat_raw(doc.repeat);
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{docker_default, firecracker, gvisor_default};
    use crate::generate::{ProfileGenerator, ProfileKind};
    use draco_syscalls::SyscallRequest;

    #[test]
    fn catalog_profiles_roundtrip() {
        for p in [docker_default(), gvisor_default(), firecracker()] {
            let json = profile_to_json(&p);
            let back = profile_from_json(&json).expect("decodes");
            assert_eq!(back, p, "{}", p.name());
        }
    }

    #[test]
    fn generated_2x_profile_roundtrips() {
        let mut gen = ProfileGenerator::new("app");
        gen.observe(&SyscallRequest::new(
            0,
            SyscallId::new(0),
            ArgSet::from_slice(&[3, 0, 100]),
        ));
        let p = gen.emit(ProfileKind::SyscallComplete2x);
        let back = profile_from_json(&profile_to_json(&p)).expect("decodes");
        assert_eq!(back.repeat(), 2);
        assert_eq!(back.name(), p.name());
        assert_eq!(back, p);
    }

    #[test]
    fn bad_version_rejected() {
        let p = firecracker();
        let json = profile_to_json(&p).replace("\"version\": 1", "\"version\": 99");
        assert!(matches!(
            profile_from_json(&json),
            Err(ProfileIoError::BadVersion(99))
        ));
    }

    #[test]
    fn unknown_action_rejected() {
        let json = r#"{"version":1,"name":"x","default_action":"explode",
                       "default_errno":null,"repeat":1,"rules":[]}"#;
        assert!(matches!(
            profile_from_json(json),
            Err(ProfileIoError::UnknownAction(_))
        ));
    }

    #[test]
    fn unknown_source_rejected() {
        let json = r#"{"version":1,"name":"x","default_action":"allow",
                       "default_errno":null,"repeat":1,
                       "rules":[{"nr":0,"source":"martian"}]}"#;
        assert!(matches!(
            profile_from_json(json),
            Err(ProfileIoError::UnknownSource(_))
        ));
    }

    #[test]
    fn oversized_mask_rejected() {
        let json = format!(
            r#"{{"version":1,"name":"x","default_action":"allow",
                "default_errno":null,"repeat":1,
                "rules":[{{"nr":0,"source":"runtime","mask":{},"sets":[[0,0,0,0,0,0]]}}]}}"#,
            1u64 << 48
        );
        assert!(matches!(
            profile_from_json(&json),
            Err(ProfileIoError::BadMask(_))
        ));
    }

    #[test]
    fn malformed_json_is_a_json_error() {
        assert!(matches!(
            profile_from_json("{"),
            Err(ProfileIoError::Json(_))
        ));
    }
}
