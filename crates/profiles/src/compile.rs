//! Compiling profiles to cBPF filters.
//!
//! Two layouts are provided:
//!
//! * [`FilterLayout::Linear`] — the traditional Seccomp shape: one
//!   compare-and-branch block per allowed system call, executed in
//!   sequence (paper Fig. 1: "a long list of if statements executed in
//!   sequence"). Cost grows linearly with the whitelist position.
//! * [`FilterLayout::BinaryTree`] — libseccomp's binary-tree optimization
//!   (paper §XII): a balanced binary search over the sorted syscall
//!   numbers using `jgt` pivots with unconditional-jump fan-out, then a
//!   per-syscall argument block at the leaves. Cost grows
//!   logarithmically in the whitelist size — but argument checking within
//!   a syscall remains linear, which is why the optimization "does not
//!   fundamentally address the overhead".
//!
//! Profiles with `repeat == 2` (`syscall-complete-2x`) emit the whole
//! checking body twice, the second pass gated on the first one allowing —
//! reproducing the paper's "run the profile twice in a row" methodology.

use draco_bpf::{semdiff, BpfError, Cond, Program, ProgramBuilder, SeccompAction, SeccompData};
use draco_syscalls::{ArgSet, SyscallId, MAX_ARGS};

use crate::spec::{ArgPolicy, ProfileSpec};

/// Filter code layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FilterLayout {
    /// Sequential per-syscall blocks (classic Seccomp).
    Linear,
    /// Balanced binary search over syscall numbers (libseccomp §XII).
    BinaryTree,
}

/// Compiles a profile to a single cBPF program.
///
/// The generated filter is validated before being returned and always
/// agrees with [`ProfileSpec::evaluate`] on `Allow` vs the default action
/// (property-tested in this module and in the repo-level equivalence
/// tests).
///
/// # Errors
///
/// Returns [`BpfError::TooLong`] if the profile needs more than the
/// kernel's `BPF_MAXINSNS` (large `syscall-complete` profiles do) — use
/// [`compile_stacked`] for those, which is what real deployments do by
/// attaching several filters. Other errors indicate a compiler bug, since
/// any profile expressible in [`ProfileSpec`] is compilable.
pub fn compile(profile: &ProfileSpec, layout: FilterLayout) -> Result<Program, BpfError> {
    compile_with_unmatched(profile, layout, profile.default_action())
}

/// Compiles with an explicit action for *unmatched* syscall IDs.
///
/// Argument mismatches on an owned (whitelisted) syscall always return
/// the profile's default action; the `unmatched` action is what a filter
/// in a stack returns for syscalls another filter owns (`Allow`, so the
/// owning filter's verdict prevails under kernel most-restrictive
/// combining).
fn compile_with_unmatched(
    profile: &ProfileSpec,
    layout: FilterLayout,
    unmatched: SeccompAction,
) -> Result<Program, BpfError> {
    let mut ctx = Codegen::new(profile);
    ctx.unmatched = unmatched;
    ctx.builder.load_arch();
    // The deny target sits far away; a conditional jump only reaches 255
    // instructions, so route the failure through a local return.
    ctx.builder
        .jeq_imm(draco_bpf::AUDIT_ARCH_X86_64, "arch-ok", "arch-bad");
    ctx.builder.label("arch-bad");
    ctx.builder.ret_action(profile.default_action());
    ctx.builder.label("arch-ok");

    let passes = profile.repeat();
    for pass in 0..passes {
        let allow_label = if pass + 1 == passes {
            "allow".to_owned()
        } else {
            format!("pass{}", pass + 1)
        };
        ctx.emit_pass(layout, pass, &allow_label);
        if pass + 1 < passes {
            ctx.builder.label(format!("pass{}", pass + 1));
        }
    }

    ctx.builder.label("allow");
    ctx.builder.ret_action(SeccompAction::Allow);
    ctx.builder.label("deny-action");
    ctx.builder.ret_action(profile.default_action());
    ctx.builder.label("default-action");
    ctx.builder.ret_action(ctx.unmatched);
    // Deliberately *not* run through `draco_bpf::optimize` here: the
    // unoptimized chains match the cost structure of real kernel filters
    // (the paper's baseline). `FilterStack::optimize` applies the pass
    // explicitly — `repro ablate-opt` measures what it buys.
    ctx.builder.build()
}

/// Bookkeeping for the shared allow islands of the linear layout.
#[derive(Default)]
struct IslandState {
    label: Option<String>,
    /// Emission positions of the `jeq`s waiting for this island.
    jeq_positions: Vec<usize>,
}

struct Codegen<'p> {
    profile: &'p ProfileSpec,
    builder: ProgramBuilder,
    fresh: u32,
    unmatched: SeccompAction,
}

impl<'p> Codegen<'p> {
    fn new(profile: &'p ProfileSpec) -> Self {
        Codegen {
            profile,
            builder: ProgramBuilder::new(),
            fresh: 0,
            unmatched: profile.default_action(),
        }
    }

    fn fresh_label(&mut self, stem: &str) -> String {
        self.fresh += 1;
        format!("{stem}-{}", self.fresh)
    }

    /// Emits one full checking pass ending at `allow_label` on success and
    /// `default-action` on failure.
    fn emit_pass(&mut self, layout: FilterLayout, pass: u8, allow_label: &str) {
        self.builder.load_nr();
        // Linear chains execute rules in the profile's first-allow order
        // (like libseccomp); the binary tree needs the IDs sorted.
        let mut ids: Vec<SyscallId> = self.profile.rules().map(|(id, _)| id).collect();
        match layout {
            FilterLayout::Linear => {
                // Like libseccomp, an ID-only rule costs a single `jeq`
                // on the non-matching path: its true-branch targets a
                // shared allow *island* placed within conditional-jump
                // reach (at most every ~240 instructions), which `Ja`s to
                // the real allow label with unlimited reach.
                let mut island = IslandState::default();
                for id in &ids {
                    let rule = self.profile.rule(*id).expect("id from rules()");
                    let est = rule_insn_estimate(rule);
                    self.maybe_flush_island(&mut island, est, allow_label);
                    if matches!(rule.args, ArgPolicy::AnyArgs) {
                        let label = self.island_label(&mut island);
                        let next = self.fresh_label("next");
                        island.jeq_positions.push(self.builder.len());
                        self.builder
                            .jeq_imm(u32::from(id.as_u16()), label, next.clone());
                        self.builder.label(next);
                    } else {
                        self.emit_syscall_block(*id, pass, allow_label);
                    }
                }
                self.builder.goto("default-action");
                // A trailing island lands after the final goto, so the
                // fallthrough path never executes it.
                self.flush_island_here(&mut island, allow_label);
            }
            FilterLayout::BinaryTree => {
                ids.sort_unstable();
                self.emit_tree(&ids, pass, allow_label);
            }
        }
    }

    /// Names the pending allow island, creating it if needed.
    fn island_label(&mut self, island: &mut IslandState) -> String {
        if island.label.is_none() {
            island.label = Some(self.fresh_label("allow-island"));
        }
        island.label.clone().expect("just set")
    }

    /// Flushes the pending island if the upcoming `est`-instruction block
    /// would push the earliest waiting `jeq` beyond conditional-jump
    /// reach.
    fn maybe_flush_island(&mut self, island: &mut IslandState, est: usize, allow_label: &str) {
        let Some(&earliest) = island.jeq_positions.first() else {
            return;
        };
        // The island's `Ja allow` would sit at len()+1 after a flush.
        if self.builder.len() + est + 2 > earliest + 250 {
            let skip = self.fresh_label("island-skip");
            self.builder.goto(skip.clone());
            self.emit_island(island, allow_label);
            self.builder.label(skip);
        }
    }

    /// Places the pending island at the current position (call only where
    /// fallthrough cannot reach, e.g. right after an unconditional jump).
    fn flush_island_here(&mut self, island: &mut IslandState, allow_label: &str) {
        if !island.jeq_positions.is_empty() {
            self.emit_island(island, allow_label);
        }
    }

    fn emit_island(&mut self, island: &mut IslandState, allow_label: &str) {
        let label = island.label.take().expect("island has waiting jeqs");
        self.builder.label(label);
        self.builder.goto(allow_label.to_owned());
        island.jeq_positions.clear();
    }

    /// Emits the binary-search dispatch over `ids`, then the leaf blocks.
    fn emit_tree(&mut self, ids: &[SyscallId], pass: u8, allow_label: &str) {
        const LEAF_SIZE: usize = 4;
        if ids.len() <= LEAF_SIZE {
            for id in ids {
                self.emit_syscall_block(*id, pass, allow_label);
            }
            self.builder.goto("default-action");
            return;
        }
        let mid = ids.len() / 2;
        // Left subtree holds ids[..mid] (all ≤ pivot), right the rest.
        // The right subtree can lie further than a conditional jump
        // reaches (255 insns), so hop through an unconditional `Ja`
        // island, which has unlimited reach.
        let pivot = ids[mid - 1];
        let right = self.fresh_label("right");
        let left = self.fresh_label("left");
        let island = self.fresh_label("island");
        self.builder
            .jgt_imm(u32::from(pivot.as_u16()), island.clone(), left.clone());
        self.builder.label(island);
        self.builder.goto(right.clone());
        self.builder.label(left);
        self.emit_tree(&ids[..mid], pass, allow_label);
        self.builder.label(right);
        self.emit_tree(&ids[mid..], pass, allow_label);
    }

    /// Emits one per-syscall block. Entry invariant: `A == nr`. On exit
    /// (no match), `A == nr` still holds.
    fn emit_syscall_block(&mut self, id: SyscallId, pass: u8, allow_label: &str) {
        let rule = self.profile.rule(id).expect("id from rules()");
        let next = self.fresh_label("next");
        let body = self.fresh_label("body");
        let skip = self.fresh_label("skip");
        // Argument blocks can exceed the 255-instruction conditional-jump
        // reach (60-value ioctl whitelists, generated profiles), so the
        // non-matching path hops through a `Ja` island.
        self.builder
            .jeq_imm(u32::from(id.as_u16()), body.clone(), skip.clone());
        self.builder.label(skip);
        self.builder.goto(next.clone());
        self.builder.label(body);
        match &rule.args {
            ArgPolicy::AnyArgs => {
                self.builder.goto(allow_label);
            }
            ArgPolicy::Whitelist { mask, sets } => {
                for set in sets {
                    let next_set = self.fresh_label("set");
                    self.emit_set_check(*mask, set, &next_set, allow_label);
                    self.builder.label(next_set);
                }
                // ID matched but no argument set did: the call is denied
                // regardless of what other filters in a stack think.
                // (A was clobbered by argument loads, but we return
                // immediately, so the `A == nr` exit invariant is moot on
                // this path.)
                self.builder.goto("deny-action");
            }
        }
        self.builder.label(next);
        // Reload nr for the following block if argument loads clobbered A.
        if matches!(rule.args, ArgPolicy::Whitelist { .. }) {
            // `next` is only reached via the jeq (A untouched), so no
            // reload is needed: argument loads happen strictly after the
            // jeq matched, and those paths never reach `next`.
        }
        let _ = pass;
    }

    /// Emits the comparisons for one allowed argument set: every selected
    /// 32-bit word must match; any mismatch jumps to `next_set`.
    fn emit_set_check(
        &mut self,
        mask: draco_syscalls::ArgBitmask,
        set: &ArgSet,
        next_set: &str,
        allow_label: &str,
    ) {
        for pos in 0..MAX_ARGS {
            let byte_bits = ((mask.raw() >> (pos * 8)) & 0xff) as u32;
            if byte_bits == 0 {
                continue;
            }
            let lo_mask = word_mask(byte_bits & 0x0f);
            let hi_mask = word_mask((byte_bits >> 4) & 0x0f);
            let expected = set.get(pos);
            if lo_mask != 0 {
                self.emit_word_check(
                    SeccompData::off_arg_lo(pos),
                    lo_mask,
                    (expected & 0xffff_ffff) as u32,
                    next_set,
                );
            }
            if hi_mask != 0 {
                self.emit_word_check(
                    SeccompData::off_arg_hi(pos),
                    hi_mask,
                    (expected >> 32) as u32,
                    next_set,
                );
            }
        }
        // All selected words matched.
        self.builder.goto(allow_label);
    }

    /// Emits: load word, mask if partial, compare; mismatch → `next_set`.
    fn emit_word_check(&mut self, offset: u32, word_mask: u32, expected: u32, next_set: &str) {
        self.builder.insn(draco_bpf::Insn::LdAbs(offset));
        if word_mask != u32::MAX {
            self.builder.insn(draco_bpf::Insn::Alu(
                draco_bpf::AluOp::And,
                draco_bpf::Src::K(word_mask),
            ));
        }
        let cont = self.fresh_label("cmp");
        self.builder
            .jump_if(Cond::Jeq, expected & word_mask, cont.clone(), next_set.to_owned());
        self.builder.label(cont);
    }
}

/// The combined result of running a filter stack on one system call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StackOutcome {
    /// The kernel-combined (most restrictive) action.
    pub action: SeccompAction,
    /// Total cBPF instructions executed across every filter in the stack
    /// — the kernel runs *all* attached filters at every syscall.
    pub insns_executed: u64,
}

/// A stack of seccomp filters jointly enforcing one profile.
///
/// The kernel caps a single filter at `BPF_MAXINSNS` (4096) instructions;
/// real deployments with large argument whitelists attach several filters
/// and rely on the kernel's most-restrictive action combining. Each
/// filter in this stack *owns* a subset of the profile's syscalls —
/// denying bad arguments for owned syscalls, returning `Allow` for
/// everything else so the owning filter's verdict prevails.
#[derive(Debug)]
pub struct FilterStack {
    programs: Vec<Program>,
    default_action: SeccompAction,
}

impl FilterStack {
    /// The individual programs.
    pub fn programs(&self) -> &[Program] {
        &self.programs
    }

    /// Number of filters in the stack.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// True if the stack is empty (deny-everything degenerate case).
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// Total instructions across the stack.
    pub fn total_insns(&self) -> usize {
        self.programs.iter().map(Program::len).sum()
    }

    /// Runs every filter (interpreted) and combines the verdicts.
    ///
    /// # Errors
    ///
    /// Propagates interpreter faults (impossible for generated filters).
    pub fn run(&self, data: &draco_bpf::SeccompData) -> Result<StackOutcome, BpfError> {
        let mut action = SeccompAction::Allow;
        let mut insns = 0;
        for program in &self.programs {
            let out = draco_bpf::Interpreter::new(program).run(data)?;
            insns += out.insns_executed;
            action = action.most_restrictive(out.action);
        }
        if self.programs.is_empty() {
            action = self.default_action;
        }
        Ok(StackOutcome {
            action,
            insns_executed: insns,
        })
    }

    /// Returns a stack with every filter run through the
    /// [`draco_bpf::optimize`] peephole pass (jump threading + dead-code
    /// elimination). Semantics are unchanged; executed instruction counts
    /// shrink — a software optimization a kernel could deploy without any
    /// of Draco's caching.
    ///
    /// # Panics
    ///
    /// Panics if re-validation of an optimized filter fails, which would
    /// be an optimizer bug.
    #[must_use]
    pub fn optimize(&self) -> FilterStack {
        FilterStack {
            programs: self
                .programs
                .iter()
                .map(|p| draco_bpf::optimize(p).expect("optimizer preserves validity"))
                .collect(),
            default_action: self.default_action,
        }
    }

    /// Pre-decodes every filter (the kernel-JIT model).
    pub fn compiled(&self) -> CompiledStack {
        CompiledStack {
            filters: self
                .programs
                .iter()
                .map(draco_bpf::CompiledFilter::compile)
                .collect(),
            default_action: self.default_action,
        }
    }
}

/// The pre-decoded (JIT-model) form of a [`FilterStack`].
#[derive(Debug)]
pub struct CompiledStack {
    filters: Vec<draco_bpf::CompiledFilter>,
    default_action: SeccompAction,
}

impl CompiledStack {
    /// Runs every filter and combines the verdicts.
    ///
    /// # Errors
    ///
    /// Propagates executor faults (impossible for generated filters).
    pub fn run(&self, data: &draco_bpf::SeccompData) -> Result<StackOutcome, BpfError> {
        let mut action = SeccompAction::Allow;
        let mut insns = 0;
        for filter in &self.filters {
            let out = filter.run(data)?;
            insns += out.insns_executed;
            action = action.most_restrictive(out.action);
        }
        if self.filters.is_empty() {
            action = self.default_action;
        }
        Ok(StackOutcome {
            action,
            insns_executed: insns,
        })
    }

    /// Number of filters.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// True if the stack has no filters.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }
}

impl FilterStack {
    /// Lowers every filter to a specialized decision DAG
    /// ([`draco_bpf::CompiledDag`]), with one dispatch-table entry per
    /// number in `nrs` — typically the profile's whitelisted syscalls,
    /// which is what [`compile_dag`] passes.
    #[must_use]
    pub fn dag(&self, nrs: &[u32]) -> DagStack {
        DagStack {
            dags: self
                .programs
                .iter()
                .map(|p| draco_bpf::CompiledDag::compile(p, nrs))
                .collect(),
            default_action: self.default_action,
        }
    }
}

/// The specialized decision-DAG form of a [`FilterStack`]: the miss
/// path's fast filter engine. Combines per-filter verdicts exactly like
/// [`FilterStack::run`] / [`CompiledStack::run`]; `insns_executed`
/// counts DAG nodes walked (plus VM instructions on fallback), a
/// smaller unit than interpreted instructions.
#[derive(Debug)]
pub struct DagStack {
    dags: Vec<draco_bpf::CompiledDag>,
    default_action: SeccompAction,
}

impl DagStack {
    /// Runs every DAG and combines the verdicts.
    ///
    /// # Errors
    ///
    /// Propagates executor faults (impossible for generated filters).
    pub fn run(&self, data: &draco_bpf::SeccompData) -> Result<StackOutcome, BpfError> {
        let mut action = SeccompAction::Allow;
        let mut insns = 0;
        for dag in &self.dags {
            let out = dag.run(data)?;
            insns += out.insns_executed;
            action = action.most_restrictive(out.action);
        }
        if self.dags.is_empty() {
            action = self.default_action;
        }
        Ok(StackOutcome {
            action,
            insns_executed: insns,
        })
    }

    /// Number of DAGs.
    pub fn len(&self) -> usize {
        self.dags.len()
    }

    /// True if the stack has no DAGs.
    pub fn is_empty(&self) -> bool {
        self.dags.is_empty()
    }

    /// Aggregated shape summary across all filters in the stack.
    pub fn stats(&self) -> draco_bpf::DagStats {
        let mut total = draco_bpf::DagStats::default();
        for dag in &self.dags {
            let s = dag.stats();
            total.nodes += s.nodes;
            total.cmp += s.cmp;
            total.ret += s.ret;
            total.fallback += s.fallback;
            total.table_entries += s.table_entries;
            total.closed_entries += s.closed_entries;
        }
        total
    }

    /// Per-filter DAG listings with node provenance, for tooling.
    pub fn dump(&self) -> String {
        self.dags
            .iter()
            .enumerate()
            .map(|(i, dag)| format!("filter {i}:\n{}", dag.dump()))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Compiles a profile straight to its decision-DAG form: binary-tree
/// layout (whose nr dispatch the DAG's symbolic root reproduces for
/// out-of-table numbers) with one dispatch-table entry per whitelisted
/// syscall.
///
/// # Errors
///
/// Returns a [`BpfError`] only for compiler bugs; every expressible
/// profile is compilable.
pub fn compile_dag(profile: &ProfileSpec) -> Result<DagStack, BpfError> {
    let nrs: Vec<u32> = profile
        .rules()
        .map(|(id, _)| u32::from(id.as_u16()))
        .collect();
    Ok(compile_stacked(profile, FilterLayout::BinaryTree)?.dag(&nrs))
}

/// Instruction budget per chunk, conservatively below `BPF_MAXINSNS`.
const CHUNK_BUDGET: usize = 3600;

/// Rough upper bound on the instructions one rule compiles to.
fn rule_insn_estimate(rule: &crate::spec::SyscallRule) -> usize {
    match &rule.args {
        ArgPolicy::AnyArgs => 4,
        ArgPolicy::Whitelist { mask, sets } => {
            let words = 2 * mask.arg_count().max(1);
            4 + sets.len() * (3 * words + 2)
        }
    }
}

/// Compiles a profile into a [`FilterStack`], splitting across as many
/// filters as the kernel's per-filter instruction cap requires.
///
/// # Errors
///
/// Returns a [`BpfError`] only for compiler bugs; every expressible
/// profile is compilable.
pub fn compile_stacked(
    profile: &ProfileSpec,
    layout: FilterLayout,
) -> Result<FilterStack, BpfError> {
    let repeat = profile.repeat().max(1) as usize;
    let mut chunks: Vec<ProfileSpec> = Vec::new();
    let mut current = ProfileSpec::new(profile.name(), profile.default_action());
    let mut budget = 0usize;
    for (id, rule) in profile.rules() {
        let cost = rule_insn_estimate(rule) * repeat;
        if budget > 0 && budget + cost > CHUNK_BUDGET {
            chunks.push(std::mem::replace(
                &mut current,
                ProfileSpec::new(profile.name(), profile.default_action()),
            ));
            budget = 0;
        }
        current.allow(id, rule.clone());
        budget += cost;
    }
    if current.allowed_syscall_count() > 0 || chunks.is_empty() {
        chunks.push(current);
    }
    if chunks.len() == 1 {
        // Fits in one filter: identical to the single-program compile.
        let program = compile_with_unmatched(
            &chunks[0].clone().with_repeat(profile.repeat().max(1)),
            layout,
            profile.default_action(),
        )?;
        return Ok(FilterStack {
            programs: vec![program],
            default_action: profile.default_action(),
        });
    }
    // Multi-filter stack: every argument-checking chunk defers unmatched
    // IDs (`Allow`); a final *membership* filter owns the ID whitelist
    // and denies syscalls no chunk owns. Kernel most-restrictive
    // combining then yields exactly the profile's semantics.
    let mut programs = chunks
        .iter()
        .map(|chunk| {
            let chunk = chunk.clone().with_repeat(profile.repeat().max(1));
            compile_with_unmatched(&chunk, layout, SeccompAction::Allow)
        })
        .collect::<Result<Vec<_>, _>>()?;
    let mut membership = ProfileSpec::new(
        format!("{}-membership", profile.name()),
        profile.default_action(),
    );
    for (id, rule) in profile.rules() {
        membership.allow(id, crate::spec::SyscallRule::any(rule.source));
    }
    programs.push(compile_with_unmatched(
        &membership,
        layout,
        profile.default_action(),
    )?);
    Ok(FilterStack {
        programs,
        default_action: profile.default_action(),
    })
}

/// Why a checked DAG compile failed.
#[derive(Debug)]
pub enum SelfCheckError {
    /// The underlying filter compile failed (compiler bug).
    Compile(BpfError),
    /// A compiled DAG could not be proven `Equivalent` to its source
    /// filter at some syscall.
    NotEquivalent {
        /// Index of the offending filter within the stack.
        filter: usize,
        /// The first non-equivalent per-syscall result.
        diff: semdiff::SyscallDiff,
    },
}

impl std::fmt::Display for SelfCheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelfCheckError::Compile(e) => write!(f, "filter compile failed: {e}"),
            SelfCheckError::NotEquivalent { filter, diff } => {
                write!(
                    f,
                    "filter {filter}: DAG is {} (proof {:?}) vs its source at nr {}",
                    diff.relation, diff.proof, diff.nr
                )?;
                if let Some(w) = &diff.witness {
                    write!(
                        f,
                        "; witness args {:?} → source {}, dag {}",
                        w.data.args, w.old, w.new
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SelfCheckError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SelfCheckError::Compile(e) => Some(e),
            SelfCheckError::NotEquivalent { .. } => None,
        }
    }
}

impl From<BpfError> for SelfCheckError {
    fn from(e: BpfError) -> Self {
        SelfCheckError::Compile(e)
    }
}

impl DagStack {
    /// Compile-time self-check: semantically diffs every compiled DAG
    /// against its source filter (see [`draco_bpf::semdiff`]), probing
    /// each filter's own compare boundaries plus `extra_nrs` (typically
    /// the profile's whitelist and an out-of-table number). Returns one
    /// report per filter, in stack order.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is not the stack this DAG was compiled from
    /// (length mismatch).
    pub fn selfcheck(
        &self,
        sources: &FilterStack,
        extra_nrs: &[u32],
        cfg: &semdiff::DiffConfig,
    ) -> Vec<semdiff::DiffReport> {
        assert_eq!(
            self.dags.len(),
            sources.programs.len(),
            "self-check needs the source stack the DAG was compiled from"
        );
        sources
            .programs
            .iter()
            .zip(self.dags.iter())
            .map(|(program, dag)| {
                let side = semdiff::SemSide::filter(program);
                let nrs = semdiff::interesting_nrs(&side, &side, extra_nrs.iter().copied());
                semdiff::diff_filter_vs_dag(program, dag, &nrs, cfg)
            })
            .collect()
    }
}

/// [`compile_dag`] with the self-check mode on: every compiled DAG is
/// semantically diffed against its source filter, and any syscall that
/// cannot be proven `Equivalent` fails the compile. This is the paranoid
/// path for policy loads that must not trust the specializing compiler.
///
/// # Errors
///
/// [`SelfCheckError::Compile`] for an underlying compile failure,
/// [`SelfCheckError::NotEquivalent`] naming the first filter and syscall
/// whose DAG could not be proven equivalent.
pub fn compile_dag_checked(profile: &ProfileSpec) -> Result<DagStack, SelfCheckError> {
    let nrs: Vec<u32> = profile
        .rules()
        .map(|(id, _)| u32::from(id.as_u16()))
        .collect();
    let stack = compile_stacked(profile, FilterLayout::BinaryTree)?;
    let dags = stack.dag(&nrs);
    let mut probe = nrs;
    // One probe guaranteed outside any dispatch table.
    probe.push(u32::from(u16::MAX));
    // The selfcheck runs at compile time, so afford a much larger
    // concrete budget than an interactive diff: multi-argument
    // whitelists (e.g. gvisor's socket tuples) produce candidate grids
    // well past the interactive default, and a truncated search cannot
    // prove equivalence.
    let cfg = semdiff::DiffConfig {
        max_inputs_per_nr: 1 << 18,
        ..semdiff::DiffConfig::default()
    };
    for (filter, report) in dags.selfcheck(&stack, &probe, &cfg).iter().enumerate() {
        if let Some(diff) = report
            .syscalls
            .iter()
            .find(|s| s.relation != semdiff::Relation::Equivalent)
        {
            return Err(SelfCheckError::NotEquivalent {
                filter,
                diff: *diff,
            });
        }
    }
    Ok(dags)
}

/// Expands 4 byte-select bits into a 32-bit byte mask.
fn word_mask(byte_bits: u32) -> u32 {
    let mut m = 0u32;
    for b in 0..4 {
        if byte_bits >> b & 1 == 1 {
            m |= 0xff << (b * 8);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{docker_default, firecracker, gvisor_default};
    use crate::generate::{ProfileGenerator, ProfileKind};
    use crate::spec::{RuleSource, SyscallRule};
    use draco_bpf::{Interpreter, SeccompData};
    use draco_syscalls::SyscallRequest;

    fn agree(profile: &ProfileSpec, layout: FilterLayout, req: &SyscallRequest) {
        let prog = compile(profile, layout).expect("compiles");
        let out = Interpreter::new(&prog)
            .run(&SeccompData::from_request(req))
            .expect("runs");
        let oracle = profile.evaluate(req);
        assert_eq!(
            out.action, oracle,
            "{} {layout:?} disagrees on {req}",
            profile.name()
        );
    }

    fn req(nr: u16, args: &[u64]) -> SyscallRequest {
        SyscallRequest::new(
            0x1000,
            SyscallId::new(nr),
            draco_syscalls::ArgSet::from_slice(args),
        )
    }

    #[test]
    fn empty_profile_compiles_to_deny_all() {
        let p = ProfileSpec::new("empty", SeccompAction::KillProcess);
        for layout in [FilterLayout::Linear, FilterLayout::BinaryTree] {
            agree(&p, layout, &req(0, &[]));
            agree(&p, layout, &req(400, &[]));
        }
    }

    #[test]
    fn single_syscall_whitelist() {
        let mut p = ProfileSpec::new("one", SeccompAction::KillProcess);
        p.allow(SyscallId::new(39), SyscallRule::any(RuleSource::Runtime));
        for layout in [FilterLayout::Linear, FilterLayout::BinaryTree] {
            agree(&p, layout, &req(39, &[]));
            agree(&p, layout, &req(38, &[]));
            agree(&p, layout, &req(40, &[]));
        }
    }

    #[test]
    fn docker_default_compiles_and_agrees() {
        let p = docker_default();
        for layout in [FilterLayout::Linear, FilterLayout::BinaryTree] {
            // Allowed, ID-only.
            agree(&p, layout, &req(0, &[3, 0, 100]));
            // Denied (ptrace = 101).
            agree(&p, layout, &req(101, &[0, 0, 0]));
            // personality, allowed and denied values.
            agree(&p, layout, &req(135, &[0xffff_ffff]));
            agree(&p, layout, &req(135, &[0x1234]));
            // clone with good and bad flag words.
            agree(&p, layout, &req(56, &[0x003d_0f00, 1, 2, 3, 0]));
            agree(&p, layout, &req(56, &[0x1000_0000, 0, 0, 0, 0]));
            // Unknown nr.
            agree(&p, layout, &req(435, &[0, 0]));
            agree(&p, layout, &req(400, &[]));
        }
    }

    #[test]
    fn gvisor_and_firecracker_compile_and_agree() {
        for p in [gvisor_default(), firecracker()] {
            for layout in [FilterLayout::Linear, FilterLayout::BinaryTree] {
                agree(&p, layout, &req(0, &[1, 2, 3]));
                agree(&p, layout, &req(16, &[1, 0x5401, 0])); // ioctl TCGETS
                agree(&p, layout, &req(16, &[1, 0x9999, 0])); // bad ioctl
                agree(&p, layout, &req(72, &[1, 1, 0])); // fcntl F_GETFD
                agree(&p, layout, &req(72, &[1, 400, 0])); // bad fcntl cmd
                agree(&p, layout, &req(101, &[0, 0, 0])); // ptrace denied
            }
        }
    }

    #[test]
    fn tree_layout_executes_fewer_insns_for_high_nrs() {
        let p = docker_default();
        let linear = compile(&p, FilterLayout::Linear).unwrap();
        let tree = compile(&p, FilterLayout::BinaryTree).unwrap();
        // pidfd_open = 434, near the end of the whitelist.
        let data = SeccompData::for_syscall(434, &[0; 6]);
        let lin_out = Interpreter::new(&linear).run(&data).unwrap();
        let tree_out = Interpreter::new(&tree).run(&data).unwrap();
        assert_eq!(lin_out.action, tree_out.action);
        assert!(
            tree_out.insns_executed * 4 < lin_out.insns_executed,
            "tree {} vs linear {}",
            tree_out.insns_executed,
            lin_out.insns_executed
        );
    }

    #[test]
    fn linear_cost_grows_with_whitelist_position() {
        let p = docker_default();
        let prog = compile(&p, FilterLayout::Linear).unwrap();
        let early = Interpreter::new(&prog)
            .run(&SeccompData::for_syscall(0, &[0; 6]))
            .unwrap();
        let late = Interpreter::new(&prog)
            .run(&SeccompData::for_syscall(434, &[0; 6]))
            .unwrap();
        assert!(late.insns_executed > early.insns_executed * 10);
    }

    #[test]
    fn complete_2x_executes_roughly_twice_the_insns() {
        let mut gen = ProfileGenerator::new("app");
        for nr in [0u16, 1, 3, 9, 202] {
            gen.observe(&req(nr, &[1, 2, 3, 4, 5, 6]));
        }
        let p1 = gen.emit(ProfileKind::SyscallComplete);
        let p2 = gen.emit(ProfileKind::SyscallComplete2x);
        let prog1 = compile(&p1, FilterLayout::Linear).unwrap();
        let prog2 = compile(&p2, FilterLayout::Linear).unwrap();
        let data = SeccompData::for_syscall(202, &[1, 2, 3, 4, 5, 6]);
        let c1 = Interpreter::new(&prog1).run(&data).unwrap();
        let c2 = Interpreter::new(&prog2).run(&data).unwrap();
        assert_eq!(c1.action, c2.action);
        let ratio = c2.insns_executed as f64 / c1.insns_executed as f64;
        assert!((1.6..=2.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn partial_width_values_are_masked() {
        // mkdir(path, mode): mode is a 2-byte value; garbage in the upper
        // bytes of the register must not defeat the check.
        let mut gen = ProfileGenerator::new("app");
        gen.observe(&req(83, &[0xdead_0000, 0o755]));
        let p = gen.emit(ProfileKind::SyscallComplete);
        for layout in [FilterLayout::Linear, FilterLayout::BinaryTree] {
            agree(&p, layout, &req(83, &[0xbeef_0000, 0o755]));
            agree(&p, layout, &req(83, &[0, 0xdead_0000 | 0o755]));
            agree(&p, layout, &req(83, &[0, 0o700]));
        }
    }

    #[test]
    fn wrong_arch_hits_default_action() {
        let mut p = ProfileSpec::new("t", SeccompAction::KillProcess);
        p.allow(SyscallId::new(0), SyscallRule::any(RuleSource::Runtime));
        let prog = compile(&p, FilterLayout::Linear).unwrap();
        let mut data = SeccompData::for_syscall(0, &[0; 6]);
        data.arch = 0xdead;
        let out = Interpreter::new(&prog).run(&data).unwrap();
        assert_eq!(out.action, SeccompAction::KillProcess);
    }
}

#[cfg(test)]
mod stack_tests {
    use super::*;
    use crate::generate::{ProfileGenerator, ProfileKind};
    use crate::spec::{RuleSource, SyscallRule};
    use draco_bpf::{SeccompData, BPF_MAXINSNS};
    use draco_syscalls::{ArgSet, SyscallRequest};

    /// A profile big enough to need several filters: 40 syscalls with
    /// 40 argument sets each.
    fn huge_profile() -> ProfileSpec {
        let mut gen = ProfileGenerator::new("huge");
        for nr in 0u16..40 {
            for set in 0u64..40 {
                gen.observe(&SyscallRequest::new(
                    0,
                    SyscallId::new(nr),
                    ArgSet::from_slice(&[set, set + 1, set + 2, set + 3, set + 4, set + 5]),
                ));
            }
        }
        gen.emit(ProfileKind::SyscallComplete)
    }

    #[test]
    fn huge_profile_needs_multiple_filters_each_within_the_cap() {
        let profile = huge_profile();
        assert!(
            compile(&profile, FilterLayout::Linear).is_err(),
            "single-filter compile exceeds BPF_MAXINSNS"
        );
        let stack = compile_stacked(&profile, FilterLayout::Linear).unwrap();
        assert!(stack.len() >= 3, "chunks + membership, got {}", stack.len());
        for program in stack.programs() {
            assert!(program.len() <= BPF_MAXINSNS);
        }
        assert!(!stack.is_empty());
        assert!(stack.total_insns() > BPF_MAXINSNS);
    }

    #[test]
    fn stacked_semantics_match_oracle_on_all_classes() {
        let profile = huge_profile();
        let stack = compile_stacked(&profile, FilterLayout::Linear).unwrap();
        let compiled = stack.compiled();
        assert_eq!(compiled.len(), stack.len());
        let cases = [
            // Allowed: every chunk's own syscalls with good args.
            SyscallRequest::new(0, SyscallId::new(0), ArgSet::from_slice(&[0, 1, 2, 3, 4, 5])),
            SyscallRequest::new(0, SyscallId::new(39), ArgSet::from_slice(&[7, 8, 9, 10, 11, 12])),
            // Denied: owned syscall, bad argument set.
            SyscallRequest::new(0, SyscallId::new(0), ArgSet::from_slice(&[99, 1, 2, 3, 4, 5])),
            // Denied: syscall no chunk owns (membership filter).
            SyscallRequest::new(0, SyscallId::new(200), ArgSet::empty()),
            SyscallRequest::new(0, SyscallId::new(435), ArgSet::empty()),
        ];
        for req in &cases {
            let want = profile.evaluate(req);
            let data = SeccompData::from_request(req);
            assert_eq!(stack.run(&data).unwrap().action, want, "{req}");
            assert_eq!(compiled.run(&data).unwrap().action, want, "{req}");
        }
    }

    #[test]
    fn stack_charges_every_filter_on_every_call() {
        // The kernel runs all attached filters at each syscall; the
        // instruction count reflects that.
        let profile = huge_profile();
        let stack = compile_stacked(&profile, FilterLayout::Linear).unwrap();
        let data = SeccompData::for_syscall(0, &[0, 1, 2, 3, 4, 5]);
        let out = stack.run(&data).unwrap();
        // At minimum: one insn per filter beyond the matching one.
        assert!(out.insns_executed as usize >= stack.len());
    }

    #[test]
    fn empty_profile_stacks_to_single_deny_filter() {
        let profile = ProfileSpec::new("empty", SeccompAction::KillProcess);
        let stack = compile_stacked(&profile, FilterLayout::Linear).unwrap();
        assert_eq!(stack.len(), 1);
        let out = stack
            .run(&SeccompData::for_syscall(0, &[0; 6]))
            .unwrap();
        assert_eq!(out.action, SeccompAction::KillProcess);
    }

    #[test]
    fn stacked_tree_layout_agrees_too() {
        let profile = huge_profile();
        let stack = compile_stacked(&profile, FilterLayout::BinaryTree).unwrap();
        for nr in [0u16, 20, 39, 100] {
            let args = ArgSet::from_slice(&[5, 6, 7, 8, 9, 10]);
            let req = SyscallRequest::new(0, SyscallId::new(nr), args);
            assert_eq!(
                stack.run(&SeccompData::from_request(&req)).unwrap().action,
                profile.evaluate(&req),
                "nr {nr}"
            );
        }
    }

    #[test]
    fn twox_huge_profile_also_stacks() {
        let mut gen = ProfileGenerator::new("huge2x");
        for nr in 0u16..30 {
            for set in 0u64..40 {
                gen.observe(&SyscallRequest::new(
                    0,
                    SyscallId::new(nr),
                    ArgSet::from_slice(&[set, set, set, set, set, set]),
                ));
            }
        }
        let profile = gen.emit(ProfileKind::SyscallComplete2x);
        let stack = compile_stacked(&profile, FilterLayout::Linear).unwrap();
        for program in stack.programs() {
            assert!(program.len() <= BPF_MAXINSNS);
        }
        let ok = SyscallRequest::new(0, SyscallId::new(3), ArgSet::from_slice(&[8; 6]));
        assert_eq!(
            stack.run(&SeccompData::from_request(&ok)).unwrap().action,
            profile.evaluate(&ok)
        );
    }

    #[test]
    fn membership_filter_uses_id_only_rules() {
        let profile = huge_profile();
        let stack = compile_stacked(&profile, FilterLayout::Linear).unwrap();
        // The final filter is the membership filter: it must be small
        // (ID-only) relative to the chunks.
        let membership = stack.programs().last().unwrap();
        let chunk_max = stack.programs()[..stack.len() - 1]
            .iter()
            .map(draco_bpf::Program::len)
            .max()
            .unwrap();
        assert!(membership.len() < chunk_max / 4);
        let _ = SyscallRule::any(RuleSource::Runtime); // keep import used
    }

    #[test]
    fn catalog_dags_pass_the_selfcheck() {
        for profile in [
            crate::catalog::docker_default(),
            crate::catalog::gvisor_default(),
            crate::catalog::firecracker(),
        ] {
            let stack = compile_dag_checked(&profile)
                .unwrap_or_else(|e| panic!("{}: {e}", profile.name()));
            // The checked compile returns exactly what compile_dag does.
            assert_eq!(stack.len(), compile_dag(&profile).unwrap().len());
        }
    }

    #[test]
    fn selfcheck_reports_are_proven_and_exercised() {
        let profile = crate::catalog::firecracker();
        let sources = compile_stacked(&profile, FilterLayout::BinaryTree).unwrap();
        let dags = compile_dag(&profile).unwrap();
        let reports = dags.selfcheck(&sources, &[u32::from(u16::MAX)], &semdiff::DiffConfig::default());
        assert_eq!(reports.len(), sources.len());
        for report in &reports {
            assert_eq!(report.relation, semdiff::Relation::Equivalent);
            // DAG sides are never trusted abstractly: the compiled
            // artifact was concretely executed at least once per nr.
            assert!(report.inputs_executed >= report.syscalls.len() as u64);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::generate::{ProfileGenerator, ProfileKind};
    use draco_bpf::{Interpreter, SeccompData};
    use draco_syscalls::SyscallRequest;
    use proptest::prelude::*;

    proptest! {
        /// Compiled filters agree with direct evaluation on arbitrary
        /// generated profiles and arbitrary requests, in both layouts.
        #[test]
        fn compiled_agrees_with_oracle(
            observed in proptest::collection::vec((0u16..436, proptest::array::uniform6(0u64..16)), 1..24),
            queries in proptest::collection::vec((0u16..436, proptest::array::uniform6(0u64..16)), 1..24),
            kind_complete in any::<bool>(),
        ) {
            let mut gen = ProfileGenerator::new("prop");
            for (nr, args) in &observed {
                gen.observe(&SyscallRequest::new(
                    0,
                    draco_syscalls::SyscallId::new(*nr),
                    draco_syscalls::ArgSet::new(*args),
                ));
            }
            let kind = if kind_complete {
                ProfileKind::SyscallComplete
            } else {
                ProfileKind::SyscallNoargs
            };
            let profile = gen.emit(kind);
            for layout in [FilterLayout::Linear, FilterLayout::BinaryTree] {
                let prog = compile(&profile, layout).expect("compiles");
                let interp = Interpreter::new(&prog);
                for (nr, args) in &queries {
                    let req = SyscallRequest::new(
                        0,
                        draco_syscalls::SyscallId::new(*nr),
                        draco_syscalls::ArgSet::new(*args),
                    );
                    let out = interp.run(&SeccompData::from_request(&req)).expect("runs");
                    prop_assert_eq!(out.action, profile.evaluate(&req));
                }
            }
        }
    }
}
