//! Seccomp profile modeling for the Draco reproduction.
//!
//! A *profile* is the policy a container runtime installs for a process:
//! which system calls may run, and (for argument-checking profiles) which
//! exact argument values they may use (paper §II-C). This crate provides:
//!
//! * [`ProfileSpec`] — the declarative policy: per-syscall rules with
//!   optional argument-value whitelists, plus direct evaluation
//!   ([`ProfileSpec::evaluate`]) used as the oracle in tests;
//! * the published profile catalog — [`docker_default`] (358 syscalls,
//!   7 argument values on `clone`/`personality`), [`gvisor_default`]
//!   (74 syscalls, 130 argument checks), [`firecracker`] (37 syscalls,
//!   8 argument checks);
//! * [`ProfileGenerator`] — the paper's §X-B toolkit: record a trace,
//!   emit `syscall-noargs`, `syscall-complete`, and `syscall-complete-2x`
//!   profiles;
//! * [`compile`] — profile → cBPF filter, in the linear layout Seccomp
//!   filters traditionally use and the binary-tree layout of libseccomp's
//!   optimization (paper §XII);
//! * [`ProfileStats`] — the security statistics behind paper Fig. 15.
//!
//! # Example
//!
//! ```
//! use draco_profiles::{compile, docker_default, FilterLayout};
//! use draco_bpf::{Interpreter, SeccompData};
//!
//! let profile = docker_default();
//! assert_eq!(profile.allowed_syscall_count(), 358);
//! let filter = compile(&profile, FilterLayout::Linear)?;
//! let out = Interpreter::new(&filter)
//!     .run(&SeccompData::for_syscall(0 /* read */, &[0; 6]))?;
//! assert!(out.action.permits());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod analysis;
mod catalog;
mod compile;
mod diff;
mod docker_json;
mod generate;
mod serde_io;
mod spec;
mod stats;

pub use analysis::{
    analyze_profile, analyze_stack, FilterLint, MaskAgreement, ProfileAnalysis, SyscallReport,
};
pub use catalog::{
    docker_default, firecracker, gvisor_default, DOCKER_CLONE_FLAGS,
    DOCKER_PERSONALITY_VALUES, RUNTIME_REQUIRED,
};
pub use compile::{
    compile, compile_dag, compile_dag_checked, compile_stacked, CompiledStack, DagStack,
    FilterLayout, FilterStack, SelfCheckError, StackOutcome,
};
pub use diff::{diff_profiles, diff_profiles_with, ProfileDiff};
pub use docker_json::{from_docker_json, import_docker_json, DockerImport, DockerImportError};
pub use generate::{ProfileGenerator, ProfileKind};
pub use serde_io::{profile_from_json, profile_to_json, ProfileIoError};
pub use spec::{ArgPolicy, ProfileSpec, RuleSource, SyscallRule};
pub use stats::ProfileStats;
