//! The published profile catalog (paper §II-C).
//!
//! Three real-world profiles anchor the evaluation:
//!
//! * **docker-default** — "allows 358 system calls, and only checks 7
//!   unique argument values (of the `clone` and `personality` system
//!   calls)";
//! * **gVisor default** — "a whitelist of 74 system calls and 130 argument
//!   checks";
//! * **Firecracker** — "37 system calls and 8 argument checks".
//!
//! The membership below reconstructs those counts over this workspace's
//! 403-entry table: docker-default denies the canonical 45 dangerous calls
//! (the real Moby deny set) and argument-checks `clone`/`personality`;
//! the gVisor and Firecracker whitelists use each project's published
//! syscall families with argument-value counts arranged to match the
//! paper's totals. Every count is asserted by tests.

use draco_bpf::SeccompAction;
use draco_syscalls::{ArgBitmask, ArgSet, SyscallTable};

use crate::spec::{ArgPolicy, ProfileSpec, RuleSource, SyscallRule};

/// System calls every containerized application needs regardless of its
/// own logic — the container-runtime-required fraction (dark bars of paper
/// Fig. 15a, "a fraction of about 20% that are required by the container
/// runtime").
pub const RUNTIME_REQUIRED: &[&str] = &[
    "read",
    "write",
    "close",
    "fstat",
    "mmap",
    "mprotect",
    "munmap",
    "brk",
    "rt_sigaction",
    "rt_sigprocmask",
    "rt_sigreturn",
    "access",
    "execve",
    "exit",
    "exit_group",
    "arch_prctl",
    "set_tid_address",
    "set_robust_list",
    "prlimit64",
    "openat",
    "getrandom",
    "futex",
    "clone",
    "gettid",
];

/// The 45 system calls docker-default denies (the Moby project deny set,
/// adapted to this table: 403 − 45 = 358 allowed).
const DOCKER_DENIED: &[&str] = &[
    "acct",
    "add_key",
    "bpf",
    "clock_adjtime",
    "clock_settime",
    "create_module",
    "delete_module",
    "finit_module",
    "get_kernel_syms",
    "get_mempolicy",
    "init_module",
    "ioperm",
    "iopl",
    "kcmp",
    "kexec_file_load",
    "kexec_load",
    "keyctl",
    "lookup_dcookie",
    "mbind",
    "mount",
    "move_pages",
    "name_to_handle_at",
    "nfsservctl",
    "open_by_handle_at",
    "perf_event_open",
    "pivot_root",
    "process_vm_readv",
    "process_vm_writev",
    "ptrace",
    "query_module",
    "quotactl",
    "reboot",
    "request_key",
    "set_mempolicy",
    "setns",
    "settimeofday",
    "swapon",
    "swapoff",
    "_sysctl",
    "umount2",
    "unshare",
    "uselib",
    "userfaultfd",
    "ustat",
    "vhangup",
];

/// `personality` values docker-default allows (4 values, including the
/// two checked in paper Fig. 1: `0xffffffff` and `0x20008`).
pub const DOCKER_PERSONALITY_VALUES: [u64; 4] =
    [0x0, 0x2_0000, 0x2_0008, 0xffff_ffff];

/// `clone` flag words docker-default allows (2 values): a `pthread_create`
/// flag set and a `fork`-via-clone flag set, neither containing
/// `CLONE_NEWUSER`. The `tls` argument (position 4) is additionally pinned
/// to 0, so docker-default checks **three arguments and seven unique
/// values** in total — exactly the paper's §II-C accounting.
pub const DOCKER_CLONE_FLAGS: [u64; 2] = [0x003d_0f00, 0x0120_0011];

/// Builds the docker-default profile: 358 allowed system calls, argument
/// checks on `clone` (first argument, 2 values) and `personality` (first
/// argument, 5 values) — 7 unique argument values total (paper §II-C).
pub fn docker_default() -> ProfileSpec {
    let table = SyscallTable::shared();
    let mut profile = ProfileSpec::new("docker-default", SeccompAction::Errno(1));
    let denied: std::collections::HashSet<&str> = DOCKER_DENIED.iter().copied().collect();
    let runtime: std::collections::HashSet<&str> = RUNTIME_REQUIRED.iter().copied().collect();
    for desc in table.iter() {
        if denied.contains(desc.name()) {
            continue;
        }
        let source = if runtime.contains(desc.name()) {
            RuleSource::Runtime
        } else {
            RuleSource::Application
        };
        profile.allow(desc.id(), SyscallRule::any(source));
    }
    arg_check(
        &mut profile,
        table,
        "personality",
        0,
        &DOCKER_PERSONALITY_VALUES,
        RuleSource::Application,
    );
    // clone: flags (position 0) from the whitelist, tls (position 4)
    // pinned to 0.
    let clone_mask = positions_mask(table, "clone", &[0, 4]);
    let clone_sets: Vec<ArgSet> = DOCKER_CLONE_FLAGS
        .iter()
        .map(|&flags| ArgSet::empty().with(0, flags))
        .collect();
    let desc = table.by_name("clone").expect("clone exists");
    profile.allow(
        desc.id(),
        SyscallRule {
            args: ArgPolicy::whitelist(clone_mask, clone_sets),
            source: RuleSource::Runtime,
        },
    );
    profile
}

/// The gVisor host-filter whitelist: 74 system calls.
const GVISOR_ALLOWED: &[&str] = &[
    "read", "write", "close", "fstat", "lseek", "mmap", "mprotect", "munmap",
    "brk", "rt_sigaction", "rt_sigprocmask", "rt_sigreturn", "ioctl",
    "pread64", "pwrite64", "readv", "writev", "sched_yield", "mincore",
    "madvise", "shutdown", "dup", "nanosleep", "getpid", "sendmsg",
    "recvmsg", "socket", "connect", "accept", "bind", "listen",
    "getsockname", "getpeername", "socketpair", "setsockopt", "getsockopt",
    "clone", "fork", "execve", "exit", "wait4", "kill", "uname", "fcntl",
    "fsync", "fdatasync", "ftruncate", "getcwd", "chdir", "fchdir",
    "gettimeofday", "getrlimit", "sysinfo", "getuid", "getgid", "geteuid",
    "getegid", "sigaltstack", "futex", "sched_getaffinity", "epoll_create",
    "getdents64", "set_tid_address", "clock_gettime",
    "exit_group", "epoll_wait", "epoll_ctl", "tgkill", "pselect6", "ppoll",
    "epoll_pwait", "accept4", "eventfd2",
];

/// Builds the gVisor default profile: 74 system calls, 130 argument
/// checks (paper §II-C). Argument-value whitelists sit on the eight
/// syscalls gVisor's host filter constrains, totalling 130 distinct
/// values (asserted in tests).
pub fn gvisor_default() -> ProfileSpec {
    let table = SyscallTable::shared();
    let mut profile = ProfileSpec::new("gvisor-default", SeccompAction::KillProcess);
    let runtime: std::collections::HashSet<&str> = RUNTIME_REQUIRED.iter().copied().collect();
    for name in GVISOR_ALLOWED {
        let source = if runtime.contains(name) {
            RuleSource::Runtime
        } else {
            RuleSource::Application
        };
        profile.allow_name(table, name, source);
    }
    // ioctl cmd whitelist: 60 values (gVisor allows a long list of tty,
    // fs and socket ioctls).
    let ioctl_cmds: Vec<u64> = (0..60)
        .map(|i| 0x5400 + i as u64) // TCGETS.. region
        .collect();
    arg_check(&mut profile, table, "ioctl", 1, &ioctl_cmds, RuleSource::Application);
    // fcntl cmd whitelist: 12 commands.
    let fcntl_cmds: Vec<u64> = vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];
    arg_check(&mut profile, table, "fcntl", 1, &fcntl_cmds, RuleSource::Application);
    // futex op whitelist: 12 ops (WAIT/WAKE/REQUEUE families ± PRIVATE).
    let futex_ops: Vec<u64> = vec![0, 1, 3, 4, 5, 9, 10, 128, 129, 131, 137, 138];
    arg_check(&mut profile, table, "futex", 1, &futex_ops, RuleSource::Runtime);
    // epoll_ctl op whitelist: ADD/DEL/MOD.
    arg_check(&mut profile, table, "epoll_ctl", 1, &[1, 2, 3], RuleSource::Application);
    // socket (domain, type, protocol) tuples: 3 + 5 + 3 = 11 values.
    let mask = positions_mask(table, "socket", &[0, 1, 2]);
    let socket_sets = [
        [1u64, 1, 0],  // AF_UNIX, STREAM
        [1, 2, 0],     // AF_UNIX, DGRAM
        [1, 5, 0],     // AF_UNIX, SEQPACKET
        [2, 1, 6],     // AF_INET, STREAM, TCP
        [2, 2, 17],    // AF_INET, DGRAM, UDP
        [10, 1, 6],    // AF_INET6, STREAM, TCP
        [10, 2, 17],   // AF_INET6, DGRAM, UDP
        [10, 3, 58],   // AF_INET6, RAW, ICMPV6
    ];
    let sets = socket_sets
        .iter()
        .map(|s| ArgSet::from_slice(s))
        .collect::<Vec<_>>();
    set_policy(&mut profile, table, "socket", ArgPolicy::whitelist(mask, sets));
    // setsockopt (level, optname) pairs: 2 + 10 = 12 values.
    let mask = positions_mask(table, "setsockopt", &[1, 2]);
    let pairs: Vec<ArgSet> = (0..10)
        .map(|i| {
            ArgSet::empty()
                .with(1, if i < 5 { 1 } else { 6 }) // level
                .with(2, 10 + i as u64) // optname
        })
        .collect();
    set_policy(&mut profile, table, "setsockopt", ArgPolicy::whitelist(mask, pairs));
    // prctl option whitelist: 15 options (prctl is the 74th allowed call).
    let prctl_opts: Vec<u64> = (1..=15).collect();
    arg_check(&mut profile, table, "prctl", 0, &prctl_opts, RuleSource::Runtime);
    // madvise advice whitelist: 5 values.
    arg_check(&mut profile, table, "madvise", 2, &[0, 1, 2, 3, 4], RuleSource::Application);
    profile
}

/// The Firecracker microVM whitelist: 37 system calls.
const FIRECRACKER_ALLOWED: &[&str] = &[
    "read", "write", "open", "close", "stat", "fstat", "lseek", "mmap",
    "mprotect", "munmap", "brk", "rt_sigaction", "rt_sigprocmask",
    "rt_sigreturn", "ioctl", "readv", "writev", "pipe", "dup",
    "socket", "connect", "accept", "bind", "listen", "exit", "fcntl",
    "timerfd_create", "timerfd_settime", "epoll_create1", "epoll_ctl",
    "epoll_pwait", "eventfd2", "futex", "exit_group", "openat",
    "set_tid_address", "madvise",
];

/// Builds the Firecracker profile: 37 system calls, 8 argument checks
/// (paper §II-C) — 6 `ioctl` commands and 2 `fcntl` commands.
pub fn firecracker() -> ProfileSpec {
    let table = SyscallTable::shared();
    let mut profile = ProfileSpec::new("firecracker", SeccompAction::KillProcess);
    let runtime: std::collections::HashSet<&str> = RUNTIME_REQUIRED.iter().copied().collect();
    for name in FIRECRACKER_ALLOWED {
        let source = if runtime.contains(name) {
            RuleSource::Runtime
        } else {
            RuleSource::Application
        };
        profile.allow_name(table, name, source);
    }
    // KVM ioctls: KVM_RUN, KVM_GET/SET_REGS, KVM_IRQ_LINE, plus tty.
    arg_check(
        &mut profile,
        table,
        "ioctl",
        1,
        &[0xae80, 0x8090_ae81, 0x4090_ae82, 0x4008_ae67, 0x5401, 0x5421],
        RuleSource::Application,
    );
    arg_check(&mut profile, table, "fcntl", 1, &[1, 2], RuleSource::Application);
    profile
}

/// Installs a single-position argument whitelist on `name`, keeping the
/// rule's source.
fn arg_check(
    profile: &mut ProfileSpec,
    table: &SyscallTable,
    name: &str,
    position: usize,
    values: &[u64],
    source: RuleSource,
) {
    let mask = positions_mask(table, name, &[position]);
    let sets: Vec<ArgSet> = values
        .iter()
        .map(|&v| ArgSet::empty().with(position, v))
        .collect();
    let desc = table.by_name(name).expect("catalog names are valid");
    profile.allow(
        desc.id(),
        SyscallRule {
            args: ArgPolicy::whitelist(mask, sets),
            source,
        },
    );
}

/// Replaces the policy of an existing rule.
fn set_policy(profile: &mut ProfileSpec, table: &SyscallTable, name: &str, policy: ArgPolicy) {
    let desc = table.by_name(name).expect("catalog names are valid");
    let source = profile
        .rule(desc.id())
        .map_or(RuleSource::Application, |r| r.source);
    profile.allow(
        desc.id(),
        SyscallRule {
            args: policy,
            source,
        },
    );
}

/// Builds the bitmask selecting the full table-declared width of the given
/// argument positions.
fn positions_mask(table: &SyscallTable, name: &str, positions: &[usize]) -> ArgBitmask {
    let desc = table.by_name(name).expect("catalog names are valid");
    let mut widths = [0u8; draco_syscalls::MAX_ARGS];
    for &p in positions {
        let w = desc.args()[p].checked_width();
        assert!(w > 0, "{name} argument {p} is not checkable");
        widths[p] = w;
    }
    ArgBitmask::from_widths(widths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ProfileStats;
    use draco_syscalls::{SyscallId, SyscallRequest};

    #[test]
    fn docker_default_has_paper_counts() {
        let p = docker_default();
        assert_eq!(p.allowed_syscall_count(), 358, "paper §II-C");
        let stats = ProfileStats::for_profile(&p);
        assert_eq!(stats.distinct_values_allowed, 7, "7 unique argument values");
        assert_eq!(
            stats.args_checked, 3,
            "clone arg0 + clone arg4 + personality arg0 (paper: three arguments)"
        );
    }

    #[test]
    fn docker_denies_the_dangerous_calls() {
        let p = docker_default();
        let table = SyscallTable::shared();
        for name in DOCKER_DENIED {
            let id = table.by_name(name).unwrap().id();
            assert!(p.rule(id).is_none(), "{name} must be denied");
        }
        // And the deny action is errno (docker-default uses EPERM).
        assert_eq!(p.default_action(), SeccompAction::Errno(1));
    }

    #[test]
    fn docker_personality_matches_figure_1() {
        // Paper Fig. 1 checks personality(0xffffffff) and
        // personality(0x20008).
        let p = docker_default();
        let table = SyscallTable::shared();
        let personality = table.by_name("personality").unwrap().id();
        for ok in DOCKER_PERSONALITY_VALUES {
            let req = SyscallRequest::new(
                0,
                personality,
                draco_syscalls::ArgSet::from_slice(&[ok]),
            );
            assert_eq!(p.evaluate(&req), SeccompAction::Allow, "{ok:#x}");
        }
        let bad = SyscallRequest::new(
            0,
            personality,
            draco_syscalls::ArgSet::from_slice(&[0x1234]),
        );
        assert_eq!(p.evaluate(&bad), SeccompAction::Errno(1));
    }

    #[test]
    fn docker_clone_blocks_unknown_flags() {
        let p = docker_default();
        let clone = SyscallTable::shared().by_name("clone").unwrap().id();
        for flags in DOCKER_CLONE_FLAGS {
            // Stack/ptid/ctid pointers (positions 1-3) are unchecked;
            // tls (position 4) must be 0.
            let req = SyscallRequest::new(
                0,
                clone,
                draco_syscalls::ArgSet::from_slice(&[flags, 0xdead, 0xbeef, 0x77, 0]),
            );
            assert_eq!(p.evaluate(&req), SeccompAction::Allow);
        }
        // CLONE_NEWUSER (0x10000000) is not whitelisted.
        let req = SyscallRequest::new(
            0,
            clone,
            draco_syscalls::ArgSet::from_slice(&[0x1000_0000]),
        );
        assert_eq!(p.evaluate(&req), SeccompAction::Errno(1));
        // Nonzero tls is rejected even with good flags.
        let req = SyscallRequest::new(
            0,
            clone,
            draco_syscalls::ArgSet::from_slice(&[DOCKER_CLONE_FLAGS[0], 0, 0, 0, 0x1000]),
        );
        assert_eq!(p.evaluate(&req), SeccompAction::Errno(1));
    }

    #[test]
    fn gvisor_has_paper_counts() {
        let p = gvisor_default();
        assert_eq!(p.allowed_syscall_count(), 74, "paper §II-C");
        let stats = ProfileStats::for_profile(&p);
        assert_eq!(stats.distinct_values_allowed, 130, "130 argument checks");
        assert_eq!(p.default_action(), SeccompAction::KillProcess);
    }

    #[test]
    fn firecracker_has_paper_counts() {
        let p = firecracker();
        assert_eq!(p.allowed_syscall_count(), 37, "paper §II-C");
        let stats = ProfileStats::for_profile(&p);
        assert_eq!(stats.distinct_values_allowed, 8, "8 argument checks");
    }

    #[test]
    fn profiles_disagree_on_coverage() {
        // Fig. 15a shape: linux(403) > docker(358) >> gvisor(74) >
        // firecracker(37).
        assert!(SyscallTable::shared().len() > docker_default().allowed_syscall_count());
        assert!(
            docker_default().allowed_syscall_count()
                > gvisor_default().allowed_syscall_count()
        );
        assert!(
            gvisor_default().allowed_syscall_count() > firecracker().allowed_syscall_count()
        );
    }

    #[test]
    fn runtime_required_subset_is_allowed_everywhere_docker() {
        let p = docker_default();
        let table = SyscallTable::shared();
        for name in RUNTIME_REQUIRED {
            let id = table.by_name(name).unwrap().id();
            assert!(p.rule(id).is_some(), "{name} required by runtime");
        }
    }

    #[test]
    fn unknown_syscall_id_denied() {
        let p = docker_default();
        let req = SyscallRequest::new(
            0,
            SyscallId::new(999),
            draco_syscalls::ArgSet::empty(),
        );
        assert_eq!(p.evaluate(&req), SeccompAction::Errno(1));
    }
}
