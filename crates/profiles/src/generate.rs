//! Trace-driven profile generation — the paper's §X-B toolkit.
//!
//! The paper builds its application-specific profiles by attaching
//! `strace` to a running workload, collecting the system call trace, and
//! emitting whitelists of the observed IDs (and, for the `-complete`
//! profiles, the observed argument sets). [`ProfileGenerator`] is that
//! toolkit: feed it [`SyscallRequest`]s, then emit any of the three
//! profile kinds.

use std::collections::{BTreeMap, BTreeSet};

use draco_bpf::SeccompAction;
use draco_syscalls::{ArgSet, SyscallId, SyscallRequest, SyscallTable};

use crate::catalog::RUNTIME_REQUIRED;
use crate::spec::{ArgPolicy, ProfileSpec, RuleSource, SyscallRule};

/// Which application-specific profile to emit (paper §IV-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProfileKind {
    /// `syscall-noargs`: whitelist exact IDs, no argument checks.
    SyscallNoargs,
    /// `syscall-complete`: whitelist exact IDs and exact argument values.
    SyscallComplete,
    /// `syscall-complete-2x`: `syscall-complete` run twice in a row,
    /// modeling a near-future environment with more extensive checks.
    SyscallComplete2x,
}

impl ProfileKind {
    /// The paper's name for the profile kind.
    pub const fn label(self) -> &'static str {
        match self {
            ProfileKind::SyscallNoargs => "syscall-noargs",
            ProfileKind::SyscallComplete => "syscall-complete",
            ProfileKind::SyscallComplete2x => "syscall-complete-2x",
        }
    }
}

/// Records observed system calls and emits application-specific profiles.
///
/// # Example
///
/// ```
/// use draco_profiles::{ProfileGenerator, ProfileKind};
/// use draco_syscalls::{ArgSet, SyscallId, SyscallRequest};
///
/// let mut gen = ProfileGenerator::new("myapp");
/// gen.observe(&SyscallRequest::new(0x1000, SyscallId::new(39), ArgSet::empty()));
/// let profile = gen.emit(ProfileKind::SyscallComplete);
/// assert_eq!(profile.allowed_syscall_count(), 1);
/// assert_eq!(profile.name(), "myapp-syscall-complete");
/// ```
#[derive(Clone, Debug)]
pub struct ProfileGenerator {
    app: String,
    /// Observed masked argument sets per syscall.
    observed: BTreeMap<SyscallId, BTreeSet<ArgSet>>,
    /// First-observation order (profiles list rules in trace order, like
    /// the strace toolkit).
    order: Vec<SyscallId>,
    calls_recorded: u64,
}

impl ProfileGenerator {
    /// Creates a generator for the named application.
    pub fn new(app: impl Into<String>) -> Self {
        ProfileGenerator {
            app: app.into(),
            observed: BTreeMap::new(),
            order: Vec::new(),
            calls_recorded: 0,
        }
    }

    /// Records one observed system call.
    ///
    /// Arguments are masked through the syscall's table bitmask before
    /// recording (pointer values are volatile and never checked).
    pub fn observe(&mut self, req: &SyscallRequest) {
        let table = SyscallTable::shared();
        let masked = match table.get(req.id) {
            Some(desc) => desc.bitmask().masked(&req.args),
            // Unknown syscalls are recorded ID-only.
            None => ArgSet::empty(),
        };
        let entry = self.observed.entry(req.id).or_insert_with(|| {
            self.order.push(req.id);
            BTreeSet::new()
        });
        entry.insert(masked);
        self.calls_recorded += 1;
    }

    /// Records every call in a trace.
    pub fn observe_all<'a>(&mut self, trace: impl IntoIterator<Item = &'a SyscallRequest>) {
        for req in trace {
            self.observe(req);
        }
    }

    /// Number of calls recorded so far.
    pub const fn calls_recorded(&self) -> u64 {
        self.calls_recorded
    }

    /// Number of distinct system calls observed.
    pub fn distinct_syscalls(&self) -> usize {
        self.observed.len()
    }

    /// Emits the requested profile kind.
    ///
    /// System calls in [`RUNTIME_REQUIRED`] are tagged
    /// [`RuleSource::Runtime`]; everything else is
    /// [`RuleSource::Application`] (the Fig. 15a split).
    pub fn emit(&self, kind: ProfileKind) -> ProfileSpec {
        let table = SyscallTable::shared();
        let runtime: std::collections::HashSet<&str> =
            RUNTIME_REQUIRED.iter().copied().collect();
        let mut profile = ProfileSpec::new(
            format!("{}-{}", self.app, kind.label()),
            SeccompAction::KillProcess,
        );
        for &id in &self.order {
            let sets = &self.observed[&id];
            let source = match table.get(id) {
                Some(desc) if runtime.contains(desc.name()) => RuleSource::Runtime,
                _ => RuleSource::Application,
            };
            let args = match kind {
                ProfileKind::SyscallNoargs => ArgPolicy::AnyArgs,
                ProfileKind::SyscallComplete | ProfileKind::SyscallComplete2x => {
                    match table.get(id) {
                        Some(desc) if !desc.bitmask().is_empty() => ArgPolicy::whitelist(
                            desc.bitmask(),
                            sets.iter().copied(),
                        ),
                        // Zero-checkable-arg calls degrade to ID-only.
                        _ => ArgPolicy::AnyArgs,
                    }
                }
            };
            profile.allow(id, SyscallRule { args, source });
        }
        match kind {
            ProfileKind::SyscallComplete2x => profile.with_repeat(2),
            _ => profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(nr: u16, args: &[u64]) -> SyscallRequest {
        SyscallRequest::new(0x1000, SyscallId::new(nr), ArgSet::from_slice(args))
    }

    #[test]
    fn noargs_profile_allows_observed_ids_any_args() {
        let mut gen = ProfileGenerator::new("app");
        gen.observe(&req(0, &[3, 0xdead, 100]));
        gen.observe(&req(1, &[4, 0xbeef, 200]));
        let p = gen.emit(ProfileKind::SyscallNoargs);
        assert_eq!(p.allowed_syscall_count(), 2);
        assert!(!p.checks_arguments());
        // Unobserved args allowed, unobserved syscalls denied.
        assert_eq!(p.evaluate(&req(0, &[9, 9, 9])), SeccompAction::Allow);
        assert_eq!(p.evaluate(&req(2, &[])), SeccompAction::KillProcess);
    }

    #[test]
    fn complete_profile_pins_argument_values() {
        let mut gen = ProfileGenerator::new("app");
        gen.observe(&req(0, &[3, 0xdead, 100])); // read(3, buf, 100)
        let p = gen.emit(ProfileKind::SyscallComplete);
        assert!(p.checks_arguments());
        // Same fd/count, different buffer pointer: allowed (pointer
        // excluded by the bitmask).
        assert_eq!(p.evaluate(&req(0, &[3, 0xbeef, 100])), SeccompAction::Allow);
        // Different fd: denied.
        assert_eq!(
            p.evaluate(&req(0, &[4, 0xdead, 100])),
            SeccompAction::KillProcess
        );
    }

    #[test]
    fn complete_2x_doubles_repeat() {
        let mut gen = ProfileGenerator::new("app");
        gen.observe(&req(39, &[]));
        let p = gen.emit(ProfileKind::SyscallComplete2x);
        assert_eq!(p.repeat(), 2);
        assert!(p.name().ends_with("-2x"));
    }

    #[test]
    fn zero_arg_syscalls_degrade_to_id_only() {
        let mut gen = ProfileGenerator::new("app");
        gen.observe(&req(39, &[])); // getpid
        let p = gen.emit(ProfileKind::SyscallComplete);
        assert_eq!(p.evaluate(&req(39, &[1, 2, 3])), SeccompAction::Allow);
    }

    #[test]
    fn duplicate_observations_dedup() {
        let mut gen = ProfileGenerator::new("app");
        for _ in 0..100 {
            gen.observe(&req(0, &[3, 0, 100]));
        }
        assert_eq!(gen.calls_recorded(), 100);
        assert_eq!(gen.distinct_syscalls(), 1);
        let p = gen.emit(ProfileKind::SyscallComplete);
        let rule = p.rule(SyscallId::new(0)).unwrap();
        match &rule.args {
            ArgPolicy::Whitelist { sets, .. } => assert_eq!(sets.len(), 1),
            ArgPolicy::AnyArgs => panic!("expected whitelist"),
        }
    }

    #[test]
    fn runtime_required_calls_tagged() {
        let mut gen = ProfileGenerator::new("app");
        gen.observe(&req(0, &[3, 0, 1])); // read: runtime-required
        gen.observe(&req(41, &[2, 1, 6])); // socket: app-specific
        let p = gen.emit(ProfileKind::SyscallNoargs);
        assert_eq!(
            p.rule(SyscallId::new(0)).unwrap().source,
            RuleSource::Runtime
        );
        assert_eq!(
            p.rule(SyscallId::new(41)).unwrap().source,
            RuleSource::Application
        );
    }

    #[test]
    fn unknown_syscalls_recorded_id_only() {
        let mut gen = ProfileGenerator::new("app");
        gen.observe(&req(999, &[1, 2, 3]));
        let p = gen.emit(ProfileKind::SyscallComplete);
        assert_eq!(p.evaluate(&req(999, &[7, 8, 9])), SeccompAction::Allow);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(ProfileKind::SyscallNoargs.label(), "syscall-noargs");
        assert_eq!(ProfileKind::SyscallComplete.label(), "syscall-complete");
        assert_eq!(
            ProfileKind::SyscallComplete2x.label(),
            "syscall-complete-2x"
        );
    }
}
