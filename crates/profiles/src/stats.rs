//! Security statistics over profiles (paper Fig. 15).

use core::fmt;

use draco_syscalls::{category, Category, SyscallTable};

use crate::spec::{ProfileSpec, RuleSource};

/// Aggregate security statistics of one profile.
///
/// * Fig. 15a plots [`ProfileStats::allowed_syscalls`] split into
///   application-specific and runtime-required fractions;
/// * Fig. 15b plots [`ProfileStats::args_checked`] and
///   [`ProfileStats::distinct_values_allowed`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfileStats {
    /// Total system calls the profile allows.
    pub allowed_syscalls: usize,
    /// Allowed syscalls required by the container runtime itself.
    pub runtime_required: usize,
    /// Allowed syscalls specific to the application.
    pub application_specific: usize,
    /// Total argument positions checked across all rules.
    pub args_checked: usize,
    /// Total distinct argument values allowed across all rules.
    pub distinct_values_allowed: usize,
    /// Allowed syscalls per kernel subsystem, indexed by
    /// [`Category::ALL`] order — the attack-surface breakdown.
    pub category_counts: [usize; 9],
}

impl ProfileStats {
    /// Computes the statistics for a profile.
    pub fn for_profile(profile: &ProfileSpec) -> Self {
        let mut stats = ProfileStats {
            allowed_syscalls: profile.allowed_syscall_count(),
            ..ProfileStats::default()
        };
        let table = SyscallTable::shared();
        for (id, rule) in profile.rules() {
            match rule.source {
                RuleSource::Runtime => stats.runtime_required += 1,
                RuleSource::Application => stats.application_specific += 1,
            }
            stats.args_checked += rule.args.checked_arg_positions();
            stats.distinct_values_allowed += rule.args.distinct_values();
            if let Some(desc) = table.get(id) {
                let cat = category::categorize(desc);
                let idx = Category::ALL
                    .iter()
                    .position(|c| *c == cat)
                    .expect("category in ALL");
                stats.category_counts[idx] += 1;
            }
        }
        stats
    }

    /// Allowed syscalls in one category.
    pub fn category_count(&self, cat: Category) -> usize {
        let idx = Category::ALL
            .iter()
            .position(|c| *c == cat)
            .expect("category in ALL");
        self.category_counts[idx]
    }

    /// Fraction of allowed syscalls that the runtime (not the application)
    /// requires — the paper observes "a fraction of about 20%".
    pub fn runtime_fraction(&self) -> f64 {
        if self.allowed_syscalls == 0 {
            0.0
        } else {
            self.runtime_required as f64 / self.allowed_syscalls as f64
        }
    }
}

impl fmt::Display for ProfileStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} syscalls ({} runtime, {} app), {} args checked, {} values allowed",
            self.allowed_syscalls,
            self.runtime_required,
            self.application_specific,
            self.args_checked,
            self.distinct_values_allowed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ArgPolicy, SyscallRule};
    use draco_bpf::SeccompAction;
    use draco_syscalls::{ArgBitmask, ArgSet, SyscallId};

    #[test]
    fn empty_profile_stats_are_zero() {
        let p = ProfileSpec::new("empty", SeccompAction::KillProcess);
        let s = ProfileStats::for_profile(&p);
        assert_eq!(s, ProfileStats::default());
        assert_eq!(s.runtime_fraction(), 0.0);
    }

    #[test]
    fn source_split_and_value_counts() {
        let mut p = ProfileSpec::new("t", SeccompAction::KillProcess);
        p.allow(SyscallId::new(0), SyscallRule::any(RuleSource::Runtime));
        p.allow(SyscallId::new(1), SyscallRule::any(RuleSource::Application));
        let mask = ArgBitmask::from_widths([4, 0, 0, 0, 0, 0]);
        p.allow(
            SyscallId::new(2),
            SyscallRule {
                args: ArgPolicy::whitelist(
                    mask,
                    [ArgSet::from_slice(&[1]), ArgSet::from_slice(&[2])],
                ),
                source: RuleSource::Application,
            },
        );
        let s = ProfileStats::for_profile(&p);
        assert_eq!(s.allowed_syscalls, 3);
        assert_eq!(s.runtime_required, 1);
        assert_eq!(s.application_specific, 2);
        assert_eq!(s.args_checked, 1);
        assert_eq!(s.distinct_values_allowed, 2);
        assert!((s.runtime_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn category_surface_breakdown() {
        let docker = crate::docker_default();
        let s = ProfileStats::for_profile(&docker);
        // docker-default denies most of the module/tracing/mount surface
        // (keeping a handful like personality, argument-checked, and
        // chroot): the admin remainder is a fraction of the interface's.
        let admin = s.category_count(Category::Admin);
        let linux_admin = category::surface(SyscallTable::shared())
            .iter()
            .find(|(c, _)| *c == Category::Admin)
            .unwrap()
            .1;
        assert!(admin * 3 < linux_admin, "admin {admin} vs linux {linux_admin}");
        assert!(s.category_count(Category::File) > 60);
        let strict = crate::firecracker();
        let fs = ProfileStats::for_profile(&strict);
        assert_eq!(fs.category_count(Category::Admin), 0, "firecracker");
        let total: usize = fs.category_counts.iter().sum();
        assert_eq!(total, fs.allowed_syscalls);
    }

    #[test]
    fn display_is_single_line() {
        let p = ProfileSpec::new("t", SeccompAction::KillProcess);
        let s = ProfileStats::for_profile(&p).to_string();
        assert!(s.contains("syscalls"));
        assert!(!s.contains('\n'));
    }
}
