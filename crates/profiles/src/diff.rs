//! Semantic diffing of whole profiles.
//!
//! Lifts [`draco_bpf::semdiff`] from single filters to profile stacks:
//! both profiles are compiled exactly as they would be installed
//! ([`compile_stacked`], binary-tree layout, chunking and membership
//! filter included), the stacks become the two [`SemSide`]s, and the
//! probe set is derived from every syscall either profile mentions plus
//! each compiled filter's own compare boundaries. On top of the
//! per-syscall relation lattice this layer adds *dead-rule detection*:
//! a syscall a profile whitelists whose combined stack verdict is
//! nevertheless a constant deny — a rule shadowed by chunking, an empty
//! argument whitelist (e.g. produced by an intersection of disjoint
//! whitelists), or an importer artifact.
//!
//! This is the engine behind `dracoctl diff` and the
//! `RequireRefinement` hot-reload gate in `draco-core`.

use draco_bpf::semdiff::{diff_sides, interesting_nrs, DiffConfig, DiffReport, SemSide};
use draco_bpf::{BpfError, Verdict};
use draco_syscalls::SyscallId;

use crate::analysis::analyze_profile;
use crate::compile::{compile_stacked, FilterLayout};
use crate::spec::ProfileSpec;

/// The result of semantically diffing two profiles.
#[derive(Clone, Debug)]
pub struct ProfileDiff {
    /// Name of the old (currently installed) profile.
    pub old_name: String,
    /// Name of the new (candidate) profile.
    pub new_name: String,
    /// The per-syscall semantic comparison of the two compiled stacks.
    pub report: DiffReport,
    /// Syscalls the old profile whitelists whose combined stack verdict
    /// is a constant deny (shadowed or dead rules).
    pub dead_old: Vec<SyscallId>,
    /// Same, for the new profile — a tightening that was probably not
    /// intended to be spelled as a dead whitelist entry.
    pub dead_new: Vec<SyscallId>,
}

impl ProfileDiff {
    /// True if swapping old for new cannot permit anything new.
    #[must_use]
    pub fn is_safe_swap(&self) -> bool {
        self.report.relation.is_safe_swap()
    }
}

/// Semantically compares two profiles as their installed filter stacks,
/// with the default search budget.
///
/// # Errors
///
/// Propagates filter-compile failures (compiler bugs; every expressible
/// profile is compilable).
pub fn diff_profiles(old: &ProfileSpec, new: &ProfileSpec) -> Result<ProfileDiff, BpfError> {
    diff_profiles_with(old, new, &DiffConfig::default())
}

/// [`diff_profiles`] with an explicit [`DiffConfig`].
///
/// # Errors
///
/// Propagates filter-compile failures.
pub fn diff_profiles_with(
    old: &ProfileSpec,
    new: &ProfileSpec,
    cfg: &DiffConfig,
) -> Result<ProfileDiff, BpfError> {
    let old_stack = compile_stacked(old, FilterLayout::BinaryTree)?;
    let new_stack = compile_stacked(new, FilterLayout::BinaryTree)?;
    let old_side = SemSide::stack(old_stack.programs(), old.default_action());
    let new_side = SemSide::stack(new_stack.programs(), new.default_action());
    // Probe every syscall either profile mentions plus one number
    // guaranteed outside both whitelists; interesting_nrs adds every
    // compiled compare boundary on the nr word on top.
    let mentioned = old
        .rules()
        .chain(new.rules())
        .map(|(id, _)| u32::from(id.as_u16()))
        .chain([u32::from(u16::MAX)]);
    let nrs = interesting_nrs(&old_side, &new_side, mentioned);
    let report = diff_sides(&old_side, &new_side, &nrs, cfg);
    Ok(ProfileDiff {
        old_name: old.name().to_owned(),
        new_name: new.name().to_owned(),
        report,
        dead_old: dead_rules(old)?,
        dead_new: dead_rules(new)?,
    })
}

/// Whitelisted syscalls whose combined stack verdict is a constant
/// deny: the rule exists but can never permit anything.
fn dead_rules(profile: &ProfileSpec) -> Result<Vec<SyscallId>, BpfError> {
    let analysis = analyze_profile(profile)?;
    Ok(analysis
        .syscalls()
        .iter()
        .filter(|r| matches!(r.verdict, Verdict::AlwaysDeny(_)))
        .map(|r| r.sid)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{docker_default, firecracker};
    use crate::spec::{ArgPolicy, RuleSource, SyscallRule};
    use draco_bpf::semdiff::Relation;
    use draco_bpf::{Interpreter, SeccompAction, SeccompData};
    use draco_syscalls::{ArgBitmask, SyscallId};

    fn sid(nr: u16) -> SyscallId {
        SyscallId::new(nr)
    }

    #[test]
    fn identical_profiles_are_equivalent() {
        let diff = diff_profiles(&firecracker(), &firecracker()).expect("diff");
        assert_eq!(diff.report.relation, Relation::Equivalent);
        assert!(diff.is_safe_swap());
        assert!(diff.dead_old.is_empty() && diff.dead_new.is_empty());
    }

    #[test]
    fn dropping_a_rule_refines() {
        let old = firecracker();
        let mut new = firecracker();
        let dropped = old.rules().next().expect("non-empty").0;
        assert!(new.deny(dropped));
        let diff = diff_profiles(&old, &new).expect("diff");
        assert_eq!(diff.report.relation, Relation::Refines, "{:?}", diff.report);
        assert!(diff.is_safe_swap());
        // The witness names the dropped syscall and diverges for real.
        let w = diff.report.witnesses().next().expect("witness");
        assert_eq!(w.data.nr, i32::from(dropped.as_u16()));
    }

    #[test]
    fn adding_a_rule_relaxes() {
        let old = firecracker();
        let mut new = firecracker();
        new.allow(sid(1000), SyscallRule::any(RuleSource::Application));
        let diff = diff_profiles(&old, &new).expect("diff");
        assert_eq!(diff.report.relation, Relation::Relaxes, "{:?}", diff.report);
        assert!(!diff.is_safe_swap());
    }

    #[test]
    fn tightening_an_arg_whitelist_refines() {
        // clone in docker_default carries an argument whitelist; drop
        // one of its allowed values.
        let old = docker_default();
        let mut new = docker_default();
        let clone_id = old
            .rules()
            .find(|(_, r)| matches!(r.args, ArgPolicy::Whitelist { .. }))
            .expect("docker has arg rules")
            .0;
        let mut rule = new.rule(clone_id).expect("rule").clone();
        let ArgPolicy::Whitelist { mask, ref sets } = rule.args else {
            unreachable!()
        };
        assert!(sets.len() > 1, "need at least two values to drop one");
        let kept: Vec<_> = sets[1..].to_vec();
        rule.args = ArgPolicy::whitelist(mask, kept);
        new.allow(clone_id, rule);
        let diff = diff_profiles(&old, &new).expect("diff");
        assert_eq!(diff.report.relation, Relation::Refines, "{:?}", diff.report);
        // The witness is the dropped argument vector, and it diverges
        // when replayed through the real stacks.
        let w = diff.report.witnesses().next().expect("witness");
        let old_stack = compile_stacked(&old, FilterLayout::BinaryTree).unwrap();
        let new_stack = compile_stacked(&new, FilterLayout::BinaryTree).unwrap();
        assert_ne!(
            old_stack.run(&w.data).unwrap().action,
            new_stack.run(&w.data).unwrap().action
        );
    }

    #[test]
    fn empty_arg_whitelist_is_a_dead_rule() {
        let mut p = firecracker();
        // A whitelist with no accepted value sets: structurally present,
        // semantically a constant deny.
        p.allow(
            sid(1001),
            SyscallRule {
                args: ArgPolicy::Whitelist {
                    mask: ArgBitmask::from_widths([8, 0, 0, 0, 0, 0]),
                    sets: Vec::new(),
                },
                source: RuleSource::Application,
            },
        );
        let diff = diff_profiles(&p, &p).expect("diff");
        assert_eq!(diff.dead_old, vec![sid(1001)]);
        assert_eq!(diff.report.relation, Relation::Equivalent);
    }

    #[test]
    fn errno_default_change_is_incomparable() {
        let mut old = firecracker();
        let mut new = firecracker();
        // Rebuild with different default errno values.
        old = rebuild_with_default(&old, SeccompAction::Errno(1));
        new = rebuild_with_default(&new, SeccompAction::Errno(38));
        let diff = diff_profiles(&old, &new).expect("diff");
        assert_eq!(
            diff.report.relation,
            Relation::Incomparable,
            "{:?}",
            diff.report
        );
        let w = diff.report.witnesses().next().expect("witness");
        // Replay: both sides deny, with different errno values.
        let old_stack = compile_stacked(&old, FilterLayout::BinaryTree).unwrap();
        let got = Interpreter::new(&old_stack.programs()[0])
            .run(&SeccompData { ..w.data })
            .unwrap();
        assert_eq!(got.action, SeccompAction::Errno(1));
    }

    fn rebuild_with_default(p: &ProfileSpec, action: SeccompAction) -> ProfileSpec {
        let mut out = ProfileSpec::new(p.name(), action);
        for (id, rule) in p.rules() {
            out.allow(id, rule.clone());
        }
        out
    }
}
