//! The declarative profile specification.

use std::collections::BTreeMap;
use std::fmt;

use draco_bpf::SeccompAction;
use draco_syscalls::{ArgBitmask, ArgSet, SyscallId, SyscallRequest, SyscallTable};

/// How a rule entered the profile — used by the Fig. 15a breakdown of
/// application-specific vs container-runtime-required system calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RuleSource {
    /// Required by the container runtime itself (≈20% in the paper).
    Runtime,
    /// Observed in / required by the application.
    Application,
}

/// The argument policy of one allowed system call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgPolicy {
    /// Any argument values are acceptable (ID-only checking).
    AnyArgs,
    /// Only the listed masked argument sets are acceptable.
    Whitelist {
        /// Which argument bytes are compared.
        mask: ArgBitmask,
        /// The allowed masked argument sets (each already masked).
        sets: Vec<ArgSet>,
    },
}

impl ArgPolicy {
    /// Builds a whitelist policy, masking the provided sets.
    pub fn whitelist(mask: ArgBitmask, sets: impl IntoIterator<Item = ArgSet>) -> Self {
        let mut masked: Vec<ArgSet> = sets.into_iter().map(|s| mask.masked(&s)).collect();
        masked.sort_unstable();
        masked.dedup();
        ArgPolicy::Whitelist { mask, sets: masked }
    }

    /// True if the policy accepts these (raw) arguments.
    pub fn accepts(&self, args: &ArgSet) -> bool {
        match self {
            ArgPolicy::AnyArgs => true,
            ArgPolicy::Whitelist { mask, sets } => {
                let masked = mask.masked(args);
                sets.binary_search(&masked).is_ok()
            }
        }
    }

    /// Number of argument *positions* this policy compares (0 for
    /// [`ArgPolicy::AnyArgs`]).
    pub fn checked_arg_positions(&self) -> usize {
        match self {
            ArgPolicy::AnyArgs => 0,
            ArgPolicy::Whitelist { mask, .. } => mask.arg_count(),
        }
    }

    /// Number of distinct argument values allowed across all positions.
    pub fn distinct_values(&self) -> usize {
        match self {
            ArgPolicy::AnyArgs => 0,
            ArgPolicy::Whitelist { mask, sets } => {
                let mut values = std::collections::BTreeSet::new();
                for set in sets {
                    for arg in 0..draco_syscalls::MAX_ARGS {
                        if (mask.raw() >> (arg * 8)) & 0xff != 0 {
                            values.insert((arg, set.get(arg)));
                        }
                    }
                }
                values.len()
            }
        }
    }
}

/// One allowed system call and its argument policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyscallRule {
    /// The argument policy.
    pub args: ArgPolicy,
    /// Who put the rule in the profile.
    pub source: RuleSource,
}

impl SyscallRule {
    /// A rule allowing the call with any arguments.
    pub fn any(source: RuleSource) -> Self {
        SyscallRule {
            args: ArgPolicy::AnyArgs,
            source,
        }
    }
}

/// A complete seccomp policy: allowed system calls, argument whitelists,
/// and the action for everything else.
///
/// Profiles are *stateless*: the verdict for a call depends only on its ID
/// and argument values — the property that makes Draco's caching sound
/// (paper §V: "This approach is correct because Seccomp profiles are
/// stateless").
#[derive(Clone, PartialEq, Eq)]
pub struct ProfileSpec {
    name: String,
    rules: BTreeMap<SyscallId, SyscallRule>,
    /// First-allow order. Filters execute rules in this order, like
    /// libseccomp and the strace-driven toolkit (first-observed syscalls
    /// sit at the front of the chain); re-allowing keeps the original
    /// position.
    order: Vec<SyscallId>,
    default_action: SeccompAction,
    /// How many times checks are conceptually repeated; 2 models the
    /// paper's `syscall-complete-2x` near-future profile (§IV-A).
    repeat: u8,
}

impl ProfileSpec {
    /// Creates an empty profile that denies everything.
    pub fn new(name: impl Into<String>, default_action: SeccompAction) -> Self {
        ProfileSpec {
            name: name.into(),
            rules: BTreeMap::new(),
            order: Vec::new(),
            default_action,
            repeat: 1,
        }
    }

    /// The profile name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The action for calls not matched by any rule.
    pub const fn default_action(&self) -> SeccompAction {
        self.default_action
    }

    /// Check-repetition factor (see [`ProfileSpec::with_repeat`]).
    pub const fn repeat(&self) -> u8 {
        self.repeat
    }

    /// Returns a copy whose compiled filter performs the checks `repeat`
    /// times in a row (the paper's `-2x` profiles).
    ///
    /// # Panics
    ///
    /// Panics if `repeat == 0`.
    #[must_use]
    pub fn with_repeat(mut self, repeat: u8) -> Self {
        assert!(repeat >= 1, "repeat factor must be at least 1");
        self.repeat = repeat;
        if repeat > 1 && !self.name.ends_with("-2x") && repeat == 2 {
            self.name = format!("{}-2x", self.name);
        }
        self
    }

    /// Sets the repeat factor without touching the name (deserialization
    /// path: the serialized name already carries any `-2x` suffix).
    pub(crate) fn set_repeat_raw(&mut self, repeat: u8) {
        assert!(repeat >= 1, "repeat factor must be at least 1");
        self.repeat = repeat;
    }

    /// Adds (or replaces) a rule. A new syscall takes the next position
    /// in the filter chain; replacing keeps the original position.
    pub fn allow(&mut self, id: SyscallId, rule: SyscallRule) -> &mut Self {
        if self.rules.insert(id, rule).is_none() {
            self.order.push(id);
        }
        self
    }

    /// Adds an any-args rule by syscall name, resolving against a table.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown — profile construction is
    /// programmer-driven and a typo should fail loudly.
    pub fn allow_name(
        &mut self,
        table: &SyscallTable,
        name: &str,
        source: RuleSource,
    ) -> &mut Self {
        let desc = table
            .by_name(name)
            .unwrap_or_else(|| panic!("unknown syscall `{name}` in profile"));
        self.allow(desc.id(), SyscallRule::any(source))
    }

    /// Removes a rule; returns true if one was present.
    pub fn deny(&mut self, id: SyscallId) -> bool {
        let removed = self.rules.remove(&id).is_some();
        if removed {
            self.order.retain(|&o| o != id);
        }
        removed
    }

    /// The rule for a syscall, if allowed.
    pub fn rule(&self, id: SyscallId) -> Option<&SyscallRule> {
        self.rules.get(&id)
    }

    /// Returns a copy whose filter chain lists the given syscalls first,
    /// in the given order (libseccomp's rule-priority mechanism: put the
    /// hottest syscalls at the front of the chain). Syscalls not listed
    /// keep their relative order after the prioritized ones; listed
    /// syscalls without a rule are ignored.
    #[must_use]
    pub fn with_priority_order(&self, hottest_first: &[SyscallId]) -> ProfileSpec {
        let mut reordered = self.clone();
        let mut seen = std::collections::HashSet::new();
        let prioritized: Vec<SyscallId> = hottest_first
            .iter()
            .copied()
            .filter(|id| self.rules.contains_key(id) && seen.insert(*id))
            .collect();
        let mut order = prioritized.clone();
        order.extend(self.order.iter().copied().filter(|id| !prioritized.contains(id)));
        debug_assert_eq!(order.len(), self.order.len());
        reordered.order = order;
        reordered
    }

    /// Iterates over `(id, rule)` pairs in filter-chain (first-allow)
    /// order.
    pub fn rules(&self) -> impl Iterator<Item = (SyscallId, &SyscallRule)> {
        self.order.iter().map(move |id| {
            (*id, self.rules.get(id).expect("order tracks rules"))
        })
    }

    /// Number of allowed system calls.
    pub fn allowed_syscall_count(&self) -> usize {
        self.rules.len()
    }

    /// True if any rule whitelists argument values.
    pub fn checks_arguments(&self) -> bool {
        self.rules
            .values()
            .any(|r| !matches!(r.args, ArgPolicy::AnyArgs))
    }

    /// Intersects two profiles: the result allows exactly the calls both
    /// allow — the semantics of attaching a second seccomp filter to a
    /// running process (the kernel combines verdicts most-restrictively).
    ///
    /// Argument whitelists intersect by joining value sets over the union
    /// of their masks: a joined set exists for each pair of sets that
    /// agree on the overlapping bytes.
    #[must_use]
    pub fn intersect(&self, other: &ProfileSpec) -> ProfileSpec {
        let default = self.default_action.most_restrictive(other.default_action);
        let mut out = ProfileSpec::new(
            format!("{}+{}", self.name, other.name),
            default,
        );
        for (id, rule_a) in self.rules() {
            let Some(rule_b) = other.rule(id) else {
                continue;
            };
            let args = match (&rule_a.args, &rule_b.args) {
                (ArgPolicy::AnyArgs, ArgPolicy::AnyArgs) => ArgPolicy::AnyArgs,
                (ArgPolicy::AnyArgs, w @ ArgPolicy::Whitelist { .. })
                | (w @ ArgPolicy::Whitelist { .. }, ArgPolicy::AnyArgs) => w.clone(),
                (
                    ArgPolicy::Whitelist { mask: m1, sets: s1 },
                    ArgPolicy::Whitelist { mask: m2, sets: s2 },
                ) => {
                    let union = m1.union(*m2);
                    let overlap = ArgBitmask::from_raw(m1.raw() & m2.raw());
                    let mut joined = Vec::new();
                    for a in s1 {
                        for b in s2 {
                            if overlap.masked(a) == overlap.masked(b) {
                                let mut merged = ArgSet::empty();
                                for pos in 0..draco_syscalls::MAX_ARGS {
                                    merged = merged.with(pos, a.get(pos) | b.get(pos));
                                }
                                joined.push(union.masked(&merged));
                            }
                        }
                    }
                    if joined.is_empty() {
                        // No common argument set: the syscall is
                        // effectively denied — omit the rule.
                        continue;
                    }
                    ArgPolicy::whitelist(union, joined)
                }
            };
            let source = match (rule_a.source, rule_b.source) {
                (RuleSource::Runtime, RuleSource::Runtime) => RuleSource::Runtime,
                _ => RuleSource::Application,
            };
            out.allow(id, SyscallRule { args, source });
        }
        out
    }

    /// Evaluates the profile directly (the test oracle; compiled filters
    /// and Draco checkers must agree with this).
    pub fn evaluate(&self, req: &SyscallRequest) -> SeccompAction {
        match self.rules.get(&req.id) {
            Some(rule) if rule.args.accepts(&req.args) => SeccompAction::Allow,
            _ => self.default_action,
        }
    }
}

impl fmt::Debug for ProfileSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProfileSpec")
            .field("name", &self.name)
            .field("syscalls", &self.rules.len())
            .field("default", &self.default_action)
            .field("repeat", &self.repeat)
            .finish()
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_profile() -> impl Strategy<Value = ProfileSpec> {
        proptest::collection::vec(
            (
                0u16..24,
                proptest::option::of(proptest::collection::vec(0u64..6, 1..4)),
            ),
            0..10,
        )
        .prop_map(|rules| {
            let mut p = ProfileSpec::new("prop", SeccompAction::KillProcess);
            for (nr, values) in rules {
                let rule = match values {
                    None => SyscallRule::any(RuleSource::Application),
                    Some(vals) => SyscallRule {
                        args: ArgPolicy::whitelist(
                            ArgBitmask::from_widths([4, 0, 0, 0, 0, 0]),
                            vals.into_iter().map(|v| ArgSet::from_slice(&[v])),
                        ),
                        source: RuleSource::Application,
                    },
                };
                p.allow(SyscallId::new(nr), rule);
            }
            p
        })
    }

    proptest! {
        /// `intersect` is exactly logical conjunction of the two
        /// policies, for arbitrary profiles and probes.
        #[test]
        fn intersect_is_pointwise_and(
            a in arb_profile(),
            b in arb_profile(),
            probes in proptest::collection::vec((0u16..26, 0u64..8), 1..32),
        ) {
            let i = a.intersect(&b);
            for (nr, v) in probes {
                let req = SyscallRequest::new(
                    0,
                    SyscallId::new(nr),
                    ArgSet::from_slice(&[v]),
                );
                let want = a.evaluate(&req).permits() && b.evaluate(&req).permits();
                prop_assert_eq!(i.evaluate(&req).permits(), want, "nr {} v {}", nr, v);
            }
        }

        /// Reordering the filter chain never changes semantics.
        #[test]
        fn priority_order_preserves_semantics(
            p in arb_profile(),
            order in proptest::collection::vec(0u16..30, 0..12),
            probes in proptest::collection::vec((0u16..26, 0u64..8), 1..16),
        ) {
            let ids: Vec<SyscallId> = order.into_iter().map(SyscallId::new).collect();
            let r = p.with_priority_order(&ids);
            prop_assert_eq!(r.allowed_syscall_count(), p.allowed_syscall_count());
            for (nr, v) in probes {
                let req = SyscallRequest::new(
                    0,
                    SyscallId::new(nr),
                    ArgSet::from_slice(&[v]),
                );
                prop_assert_eq!(r.evaluate(&req), p.evaluate(&req));
            }
        }

        /// Intersection is commutative in semantics (names differ).
        #[test]
        fn intersect_commutes(
            a in arb_profile(),
            b in arb_profile(),
            probes in proptest::collection::vec((0u16..26, 0u64..8), 1..16),
        ) {
            let ab = a.intersect(&b);
            let ba = b.intersect(&a);
            for (nr, v) in probes {
                let req = SyscallRequest::new(
                    0,
                    SyscallId::new(nr),
                    ArgSet::from_slice(&[v]),
                );
                prop_assert_eq!(ab.evaluate(&req).permits(), ba.evaluate(&req).permits());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use draco_syscalls::ArgBitmask;

    fn req(nr: u16, args: [u64; 6]) -> SyscallRequest {
        SyscallRequest::new(0, SyscallId::new(nr), ArgSet::new(args))
    }

    #[test]
    fn empty_profile_denies_everything() {
        let p = ProfileSpec::new("empty", SeccompAction::KillProcess);
        assert_eq!(p.evaluate(&req(0, [0; 6])), SeccompAction::KillProcess);
        assert_eq!(p.allowed_syscall_count(), 0);
        assert!(!p.checks_arguments());
    }

    #[test]
    fn any_args_rule_allows_all_values() {
        let mut p = ProfileSpec::new("t", SeccompAction::KillProcess);
        p.allow(SyscallId::new(1), SyscallRule::any(RuleSource::Application));
        assert_eq!(p.evaluate(&req(1, [99; 6])), SeccompAction::Allow);
        assert_eq!(p.evaluate(&req(2, [0; 6])), SeccompAction::KillProcess);
    }

    #[test]
    fn whitelist_rule_checks_masked_values() {
        let mask = ArgBitmask::from_widths([4, 0, 0, 0, 0, 0]);
        let mut p = ProfileSpec::new("t", SeccompAction::Errno(1));
        p.allow(
            SyscallId::new(135),
            SyscallRule {
                args: ArgPolicy::whitelist(
                    mask,
                    [ArgSet::from_slice(&[0xffff_ffff]), ArgSet::from_slice(&[0x20008])],
                ),
                source: RuleSource::Application,
            },
        );
        assert_eq!(
            p.evaluate(&req(135, [0xffff_ffff, 0, 0, 0, 0, 0])),
            SeccompAction::Allow
        );
        assert_eq!(
            p.evaluate(&req(135, [0x20008, 7, 7, 7, 7, 7])),
            SeccompAction::Allow,
            "unmasked args ignored"
        );
        assert_eq!(
            p.evaluate(&req(135, [1, 0, 0, 0, 0, 0])),
            SeccompAction::Errno(1)
        );
        assert!(p.checks_arguments());
    }

    #[test]
    fn whitelist_dedups_and_masks_sets() {
        let mask = ArgBitmask::from_widths([1, 0, 0, 0, 0, 0]);
        let policy = ArgPolicy::whitelist(
            mask,
            [
                ArgSet::from_slice(&[0x1ff]), // masks to 0xff
                ArgSet::from_slice(&[0xff]),  // duplicate after masking
            ],
        );
        match &policy {
            ArgPolicy::Whitelist { sets, .. } => assert_eq!(sets.len(), 1),
            ArgPolicy::AnyArgs => panic!("expected whitelist"),
        }
    }

    #[test]
    fn distinct_values_counts_per_position() {
        let mask = ArgBitmask::from_widths([4, 4, 0, 0, 0, 0]);
        let policy = ArgPolicy::whitelist(
            mask,
            [
                ArgSet::from_slice(&[1, 10]),
                ArgSet::from_slice(&[1, 20]),
                ArgSet::from_slice(&[2, 10]),
            ],
        );
        // Position 0: {1, 2}; position 1: {10, 20} → 4 distinct values.
        assert_eq!(policy.distinct_values(), 4);
        assert_eq!(policy.checked_arg_positions(), 2);
        assert_eq!(ArgPolicy::AnyArgs.distinct_values(), 0);
    }

    #[test]
    fn allow_name_resolves_table() {
        let table = SyscallTable::shared();
        let mut p = ProfileSpec::new("t", SeccompAction::KillProcess);
        p.allow_name(table, "getpid", RuleSource::Runtime);
        assert_eq!(p.evaluate(&req(39, [0; 6])), SeccompAction::Allow);
    }

    #[test]
    #[should_panic(expected = "unknown syscall")]
    fn allow_name_panics_on_typo() {
        let mut p = ProfileSpec::new("t", SeccompAction::KillProcess);
        p.allow_name(SyscallTable::shared(), "getpidd", RuleSource::Runtime);
    }

    #[test]
    fn deny_removes_rule() {
        let mut p = ProfileSpec::new("t", SeccompAction::KillProcess);
        p.allow(SyscallId::new(5), SyscallRule::any(RuleSource::Runtime));
        assert!(p.deny(SyscallId::new(5)));
        assert!(!p.deny(SyscallId::new(5)));
        assert_eq!(p.evaluate(&req(5, [0; 6])), SeccompAction::KillProcess);
    }

    #[test]
    fn with_repeat_renames_2x() {
        let p = ProfileSpec::new("app-complete", SeccompAction::KillProcess).with_repeat(2);
        assert_eq!(p.name(), "app-complete-2x");
        assert_eq!(p.repeat(), 2);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_repeat_rejected() {
        let _ = ProfileSpec::new("t", SeccompAction::KillProcess).with_repeat(0);
    }

    #[test]
    fn intersect_is_conjunction() {
        let mask0 = ArgBitmask::from_widths([4, 0, 0, 0, 0, 0]);
        let mut a = ProfileSpec::new("a", SeccompAction::Errno(1));
        a.allow(SyscallId::new(1), SyscallRule::any(RuleSource::Runtime));
        a.allow(SyscallId::new(2), SyscallRule::any(RuleSource::Application));
        a.allow(
            SyscallId::new(3),
            SyscallRule {
                args: ArgPolicy::whitelist(
                    mask0,
                    [ArgSet::from_slice(&[1]), ArgSet::from_slice(&[2])],
                ),
                source: RuleSource::Application,
            },
        );
        let mut b = ProfileSpec::new("b", SeccompAction::KillProcess);
        b.allow(SyscallId::new(1), SyscallRule::any(RuleSource::Runtime));
        b.allow(
            SyscallId::new(3),
            SyscallRule {
                args: ArgPolicy::whitelist(
                    mask0,
                    [ArgSet::from_slice(&[2]), ArgSet::from_slice(&[9])],
                ),
                source: RuleSource::Application,
            },
        );
        let i = a.intersect(&b);
        assert_eq!(i.name(), "a+b");
        assert_eq!(i.default_action(), SeccompAction::KillProcess);
        // Conjunction over a grid of probes.
        for nr in [1u16, 2, 3, 4] {
            for v in [1u64, 2, 9, 77] {
                let r = req(nr, [v, 0, 0, 0, 0, 0]);
                let both = a.evaluate(&r).permits() && b.evaluate(&r).permits();
                assert_eq!(i.evaluate(&r).permits(), both, "nr {nr} v {v}");
            }
        }
    }

    #[test]
    fn intersect_joins_different_masks() {
        // a constrains arg0, b constrains arg1: the intersection
        // constrains both.
        let ma = ArgBitmask::from_widths([4, 0, 0, 0, 0, 0]);
        let mb = ArgBitmask::from_widths([0, 4, 0, 0, 0, 0]);
        let mut a = ProfileSpec::new("a", SeccompAction::KillProcess);
        a.allow(
            SyscallId::new(5),
            SyscallRule {
                args: ArgPolicy::whitelist(ma, [ArgSet::from_slice(&[7])]),
                source: RuleSource::Application,
            },
        );
        let mut b = ProfileSpec::new("b", SeccompAction::KillProcess);
        b.allow(
            SyscallId::new(5),
            SyscallRule {
                args: ArgPolicy::whitelist(mb, [ArgSet::from_slice(&[0, 8])]),
                source: RuleSource::Application,
            },
        );
        let i = a.intersect(&b);
        assert!(i.evaluate(&req(5, [7, 8, 0, 0, 0, 0])).permits());
        assert!(!i.evaluate(&req(5, [7, 9, 0, 0, 0, 0])).permits());
        assert!(!i.evaluate(&req(5, [6, 8, 0, 0, 0, 0])).permits());
    }

    #[test]
    fn priority_order_moves_hot_rules_first() {
        let mut p = ProfileSpec::new("t", SeccompAction::KillProcess);
        for nr in [10u16, 20, 30, 40] {
            p.allow(SyscallId::new(nr), SyscallRule::any(RuleSource::Application));
        }
        let hot = [SyscallId::new(30), SyscallId::new(10), SyscallId::new(99)];
        let r = p.with_priority_order(&hot);
        let order: Vec<u16> = r.rules().map(|(id, _)| id.as_u16()).collect();
        assert_eq!(order, vec![30, 10, 20, 40], "99 ignored, rest stable");
        // Semantics unchanged.
        for nr in [10u16, 20, 30, 40, 99] {
            let req = req(nr, [0; 6]);
            assert_eq!(p.evaluate(&req), r.evaluate(&req));
        }
    }

    #[test]
    fn debug_mentions_counts() {
        let p = ProfileSpec::new("t", SeccompAction::KillProcess);
        assert!(format!("{p:?}").contains("syscalls"));
    }
}
