//! Profile-level filter analysis: derived SPT masks and verdict tables.
//!
//! [`draco_bpf::analysis`] classifies one *program*; a profile compiles
//! to a *stack* of programs the kernel combines most-restrictively. This
//! module lifts the per-program analysis to whole profiles:
//!
//! * per allowed syscall, the stack-combined verdict and the **derived**
//!   argument-byte mask — computed from the filters themselves, the way
//!   a kernel could at `seccomp(2)` install time (paper §V-B), instead
//!   of trusting the hand-authored [`ArgBitmask`] in the rule;
//! * a cross-check of derived against authored masks: the authored mask
//!   is kept as an explicit *override* and any disagreement is surfaced
//!   (and counted by the checker's metrics);
//! * the union of every member filter's lint findings.
//!
//! [`crate::ProfileSpec`]'s rules carry the authored masks;
//! [`analyze_profile`] is what `draco-core`'s checker and `dracoctl
//! analyze` consume.

use draco_bpf::analysis::{analyze_syscall, lint_program, Lint, SyscallVerdict, Verdict};
use draco_bpf::{BpfError, SeccompAction};
use draco_syscalls::{ArgBitmask, SyscallId, SyscallTable};

use crate::compile::{compile_stacked, FilterLayout, FilterStack};
use crate::spec::{ArgPolicy, ProfileSpec};

/// How a derived mask relates to the rule's hand-authored one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaskAgreement {
    /// Derived and authored masks are identical (ID-only rules match
    /// trivially: both empty).
    Match,
    /// The analysis proved the filter inspects strictly fewer bytes than
    /// the author declared; the derived mask is safe to install and
    /// caches more aggressively.
    DerivedNarrower,
    /// The filter can read bytes the authored mask does not select. The
    /// authored mask wins (it is an explicit override), but installing
    /// it risks caching decisions on stale bytes — surfaced as a
    /// disagreement everywhere.
    Disagreement,
}

/// The analysis result for one allowed syscall of a profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyscallReport {
    /// The syscall.
    pub sid: SyscallId,
    /// Stack-combined decision classification.
    pub verdict: Verdict,
    /// Argument bytes the stack's decision can depend on, derived from
    /// the compiled filters.
    pub derived_mask: ArgBitmask,
    /// The rule's hand-authored mask (`None` for ID-only rules).
    pub authored_mask: Option<ArgBitmask>,
    /// Derived-vs-authored relationship.
    pub agreement: MaskAgreement,
    /// The verdict class matches what the rule's shape predicts
    /// (ID-only → always-allow, argument whitelist → arg-dependent).
    pub matches_spec: bool,
    /// The decision can depend on the instruction pointer.
    pub ip_dependent: bool,
    /// A runtime filter fault is reachable for this syscall.
    pub may_fault: bool,
}

impl SyscallReport {
    /// The mask the checker should install: the derived mask, unless the
    /// authored override disagrees with it.
    pub fn effective_mask(&self) -> ArgBitmask {
        match self.agreement {
            MaskAgreement::Match | MaskAgreement::DerivedNarrower => self.derived_mask,
            MaskAgreement::Disagreement => self.authored_mask.unwrap_or(self.derived_mask),
        }
    }

    /// True if the stack's decision for this syscall is proven `Allow`
    /// for every argument vector — the checker's no-VAT fast path.
    pub fn is_always_allow(&self) -> bool {
        self.verdict == Verdict::AlwaysAllow
    }
}

/// One lint finding, attributed to a filter of the stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FilterLint {
    /// Index of the filter within the stack.
    pub filter: usize,
    /// The finding.
    pub lint: Lint,
}

/// The full analysis of one profile's compiled filter stack.
#[derive(Clone, Debug)]
pub struct ProfileAnalysis {
    name: String,
    /// Per-syscall reports, sorted by syscall id.
    syscalls: Vec<SyscallReport>,
    /// Lint findings across every filter in the stack.
    lints: Vec<FilterLint>,
    /// Number of filters in the analyzed stack.
    filters: usize,
    /// Total instructions across the stack.
    instructions: usize,
}

impl ProfileAnalysis {
    /// The analyzed profile's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-syscall reports, sorted by syscall id.
    pub fn syscalls(&self) -> &[SyscallReport] {
        &self.syscalls
    }

    /// All lint findings.
    pub fn lints(&self) -> &[FilterLint] {
        &self.lints
    }

    /// Number of filters in the stack.
    pub fn filters(&self) -> usize {
        self.filters
    }

    /// Total cBPF instructions across the stack.
    pub fn instructions(&self) -> usize {
        self.instructions
    }

    /// The report for one syscall, if the profile has a rule for it.
    pub fn report(&self, sid: SyscallId) -> Option<&SyscallReport> {
        self.syscalls
            .binary_search_by_key(&sid, |r| r.sid)
            .ok()
            .map(|i| &self.syscalls[i])
    }

    /// Lint findings of [`draco_bpf::analysis::Severity::Error`].
    pub fn error_lints(&self) -> impl Iterator<Item = &FilterLint> {
        self.lints
            .iter()
            .filter(|f| f.lint.kind.severity() == draco_bpf::analysis::Severity::Error)
    }

    /// Reports whose derived mask disagrees with the authored override.
    pub fn disagreements(&self) -> impl Iterator<Item = &SyscallReport> {
        self.syscalls
            .iter()
            .filter(|r| r.agreement == MaskAgreement::Disagreement)
    }

    /// Syscalls proven `AlwaysAllow`.
    pub fn always_allow_count(&self) -> usize {
        self.syscalls.iter().filter(|r| r.is_always_allow()).count()
    }

    /// True if nothing needs human attention: no error lints, no mask
    /// disagreements, every verdict matching its rule's shape.
    pub fn is_clean(&self) -> bool {
        self.error_lints().next().is_none()
            && self.disagreements().next().is_none()
            && self.syscalls.iter().all(|r| r.matches_spec)
    }
}

/// Combines per-filter verdicts for one syscall the way the kernel
/// combines filter verdicts: most-restrictive action wins.
fn combine_stack(verdicts: &[SyscallVerdict]) -> SyscallVerdict {
    let mut ip_dependent = false;
    let mut may_fault = false;
    let mut all_const = true;
    let mut const_action = SeccompAction::Allow;
    let mut kill = false;
    let mut mask_bits = 0u64;
    for v in verdicts {
        ip_dependent |= v.ip_dependent;
        may_fault |= v.may_fault;
        match v.verdict {
            Verdict::AlwaysAllow => {}
            Verdict::AlwaysDeny(a) => {
                const_action = const_action.most_restrictive(a);
                kill |= a == SeccompAction::KillProcess;
            }
            Verdict::ArgDependent => {
                all_const = false;
                mask_bits |= v.mask.raw();
            }
        }
    }
    if may_fault {
        return SyscallVerdict {
            verdict: Verdict::ArgDependent,
            mask: ArgBitmask::from_raw((1 << 48) - 1),
            ip_dependent: true,
            may_fault,
        };
    }
    // A constant KillProcess member dominates: it has the lowest
    // precedence value, so no other filter's outcome can override it.
    let verdict = if all_const || kill {
        if kill {
            Verdict::AlwaysDeny(SeccompAction::KillProcess)
        } else if const_action == SeccompAction::Allow {
            Verdict::AlwaysAllow
        } else {
            Verdict::AlwaysDeny(const_action)
        }
    } else {
        Verdict::ArgDependent
    };
    let mask = if verdict == Verdict::ArgDependent {
        ArgBitmask::from_raw(mask_bits)
    } else {
        ArgBitmask::EMPTY
    };
    SyscallVerdict {
        verdict,
        mask,
        ip_dependent,
        may_fault,
    }
}

/// The verdict class a rule's *shape* predicts, for the `matches_spec`
/// cross-check.
fn expected_class(policy: &ArgPolicy) -> Verdict {
    match policy {
        ArgPolicy::AnyArgs => Verdict::AlwaysAllow,
        ArgPolicy::Whitelist { mask, sets } => {
            if sets.is_empty() {
                // No accepted value: denied regardless of arguments.
                Verdict::AlwaysDeny(SeccompAction::KillProcess)
            } else if mask.is_empty() {
                // Empty mask: every argument vector matches any set.
                Verdict::AlwaysAllow
            } else {
                Verdict::ArgDependent
            }
        }
    }
}

fn same_class(a: Verdict, b: Verdict) -> bool {
    matches!(
        (a, b),
        (Verdict::AlwaysAllow, Verdict::AlwaysAllow)
            | (Verdict::AlwaysDeny(_), Verdict::AlwaysDeny(_))
            | (Verdict::ArgDependent, Verdict::ArgDependent)
    )
}

/// Analyzes an already-compiled stack against the profile that produced
/// it. Use [`analyze_profile`] unless you already hold the stack.
pub fn analyze_stack(profile: &ProfileSpec, stack: &FilterStack) -> ProfileAnalysis {
    let capacity = SyscallTable::shared().capacity() as u32;
    let mut lints = Vec::new();
    for (filter, program) in stack.programs().iter().enumerate() {
        lints.extend(
            lint_program(program, capacity)
                .into_iter()
                .map(|lint| FilterLint { filter, lint }),
        );
    }
    let mut syscalls: Vec<SyscallReport> = profile
        .rules()
        .map(|(sid, rule)| {
            let per_filter: Vec<SyscallVerdict> = stack
                .programs()
                .iter()
                .map(|p| analyze_syscall(p, u32::from(sid.as_u16())))
                .collect();
            let combined = combine_stack(&per_filter);
            let authored_mask = match &rule.args {
                ArgPolicy::AnyArgs => None,
                ArgPolicy::Whitelist { mask, .. } => Some(*mask),
            };
            let authored = authored_mask.unwrap_or(ArgBitmask::EMPTY);
            let agreement = if combined.mask == authored {
                MaskAgreement::Match
            } else if combined.mask.raw() & !authored.raw() == 0 {
                MaskAgreement::DerivedNarrower
            } else {
                MaskAgreement::Disagreement
            };
            SyscallReport {
                sid,
                verdict: combined.verdict,
                derived_mask: combined.mask,
                authored_mask,
                agreement,
                matches_spec: same_class(combined.verdict, expected_class(&rule.args)),
                ip_dependent: combined.ip_dependent,
                may_fault: combined.may_fault,
            }
        })
        .collect();
    syscalls.sort_by_key(|r| r.sid);
    ProfileAnalysis {
        name: profile.name().to_owned(),
        syscalls,
        lints,
        filters: stack.len(),
        instructions: stack.total_insns(),
    }
}

/// Compiles `profile` (linear layout, as the checker does) and analyzes
/// the resulting stack.
///
/// # Errors
///
/// Propagates filter-compilation failures, which indicate a compiler bug
/// for any expressible profile.
pub fn analyze_profile(profile: &ProfileSpec) -> Result<ProfileAnalysis, BpfError> {
    let stack = compile_stacked(profile, FilterLayout::Linear)?;
    Ok(analyze_stack(profile, &stack))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{docker_default, firecracker, gvisor_default};
    use crate::generate::{ProfileGenerator, ProfileKind};
    use crate::spec::{RuleSource, SyscallRule};
    use draco_bpf::SeccompData;
    use draco_syscalls::{ArgSet, SyscallRequest};

    fn req(nr: u16, args: &[u64]) -> SyscallRequest {
        SyscallRequest::new(0, SyscallId::new(nr), ArgSet::from_slice(args))
    }

    #[test]
    fn catalog_profiles_analyze_cleanly() {
        for profile in [docker_default(), gvisor_default(), firecracker()] {
            let analysis = analyze_profile(&profile).expect("compiles");
            assert!(
                analysis.is_clean(),
                "{}: lints {:?}, disagreements {:?}, class mismatches {:?}",
                profile.name(),
                analysis.lints(),
                analysis.disagreements().collect::<Vec<_>>(),
                analysis
                    .syscalls()
                    .iter()
                    .filter(|r| !r.matches_spec)
                    .collect::<Vec<_>>()
            );
            assert_eq!(analysis.syscalls().len(), profile.allowed_syscall_count());
            assert!(analysis.always_allow_count() > 0);
        }
    }

    #[test]
    fn id_only_rules_are_proven_always_allow_with_empty_masks() {
        let profile = docker_default();
        let analysis = analyze_profile(&profile).unwrap();
        // read(0) is ID-only in docker-default.
        let r = analysis.report(SyscallId::new(0)).expect("read has a rule");
        assert!(r.is_always_allow());
        assert_eq!(r.derived_mask, ArgBitmask::EMPTY);
        assert_eq!(r.agreement, MaskAgreement::Match);
        assert_eq!(r.effective_mask(), ArgBitmask::EMPTY);
    }

    #[test]
    fn arg_checked_rules_derive_exactly_the_authored_mask() {
        let profile = docker_default();
        let analysis = analyze_profile(&profile).unwrap();
        // personality(135) whitelists arg0 values in docker-default.
        let r = analysis
            .report(SyscallId::new(135))
            .expect("personality has a rule");
        assert_eq!(r.verdict, Verdict::ArgDependent);
        assert_eq!(r.agreement, MaskAgreement::Match, "derived {:?} authored {:?}",
            r.derived_mask, r.authored_mask);
        assert_eq!(Some(r.derived_mask), r.authored_mask);
        assert!(!r.derived_mask.is_empty());
    }

    #[test]
    fn unlisted_syscalls_have_no_report() {
        let analysis = analyze_profile(&firecracker()).unwrap();
        assert!(analysis.report(SyscallId::new(101)).is_none(), "ptrace");
    }

    #[test]
    fn multi_filter_stacks_combine_per_syscall() {
        // Big enough to need chunking + a membership filter.
        let mut gen = ProfileGenerator::new("huge");
        for nr in 0u16..40 {
            for set in 0u64..40 {
                gen.observe(&req(nr, &[set, set + 1, set + 2, set + 3, set + 4, set + 5]));
            }
        }
        let profile = gen.emit(ProfileKind::SyscallComplete);
        let stack = compile_stacked(&profile, FilterLayout::Linear).unwrap();
        assert!(stack.len() >= 3, "needs chunks + membership");
        let analysis = analyze_stack(&profile, &stack);
        assert!(analysis.is_clean(), "{:?}", analysis.lints());
        assert_eq!(analysis.filters(), stack.len());
        assert!(analysis.instructions() > 0);
        for r in analysis.syscalls() {
            // Generated profiles mix argument whitelists with ID-only
            // runtime-required rules; each must classify to its shape.
            match &profile.rule(r.sid).unwrap().args {
                ArgPolicy::AnyArgs => {
                    assert_eq!(r.verdict, Verdict::AlwaysAllow, "sid {}", r.sid);
                }
                ArgPolicy::Whitelist { .. } => {
                    assert_eq!(r.verdict, Verdict::ArgDependent, "sid {}", r.sid);
                }
            }
            assert_eq!(r.agreement, MaskAgreement::Match, "sid {}", r.sid);
        }
    }

    #[test]
    fn derived_verdicts_agree_with_interpreted_stack() {
        let profile = gvisor_default();
        let stack = compile_stacked(&profile, FilterLayout::Linear).unwrap();
        let analysis = analyze_stack(&profile, &stack);
        for r in analysis.syscalls() {
            for args in [[0u64; 6], [1, 0x5401, 0, 0, 0, 0], [u64::MAX; 6]] {
                let data = SeccompData::for_syscall(i32::from(r.sid.as_u16()), &args);
                let out = stack.run(&data).unwrap();
                match r.verdict {
                    Verdict::AlwaysAllow => {
                        assert_eq!(out.action, SeccompAction::Allow, "sid {}", r.sid);
                    }
                    Verdict::AlwaysDeny(a) => assert_eq!(out.action, a, "sid {}", r.sid),
                    Verdict::ArgDependent => {}
                }
            }
        }
    }

    #[test]
    fn overridden_masks_are_flagged_as_disagreements() {
        // Author a mask narrower than what the compiled filter checks by
        // intersecting profiles... simplest: construct a rule whose mask
        // selects byte 0 but compare the filter derived for a *wider*
        // authored profile. Instead, hand-build the disagreement: analyze
        // a profile, then ask how a *different* authored mask would have
        // compared by checking the agreement logic through a stack whose
        // filter checks more bytes than the rule advertises.
        let mut wide = ProfileSpec::new("wide", SeccompAction::KillProcess);
        wide.allow(
            SyscallId::new(100),
            SyscallRule {
                args: ArgPolicy::whitelist(
                    ArgBitmask::from_widths([4, 0, 0, 0, 0, 0]),
                    vec![ArgSet::from_slice(&[7])],
                ),
                source: RuleSource::Runtime,
            },
        );
        let stack = compile_stacked(&wide, FilterLayout::Linear).unwrap();
        // The same stack, analyzed against a profile authored with a
        // narrower mask, must disagree (filter reads bytes 0..4 of arg0,
        // author claims only byte 0).
        let mut narrow = ProfileSpec::new("narrow", SeccompAction::KillProcess);
        narrow.allow(
            SyscallId::new(100),
            SyscallRule {
                args: ArgPolicy::whitelist(
                    ArgBitmask::from_widths([1, 0, 0, 0, 0, 0]),
                    vec![ArgSet::from_slice(&[7])],
                ),
                source: RuleSource::Runtime,
            },
        );
        let analysis = analyze_stack(&narrow, &stack);
        let r = analysis.report(SyscallId::new(100)).unwrap();
        assert_eq!(r.agreement, MaskAgreement::Disagreement);
        assert_eq!(r.effective_mask(), ArgBitmask::from_widths([1, 0, 0, 0, 0, 0]), "authored override wins");
        assert!(!analysis.is_clean());
        assert_eq!(analysis.disagreements().count(), 1);
    }

    #[test]
    fn narrower_derived_mask_is_preferred() {
        // Authored mask claims bytes 0..4, filter only checks byte 0.
        let mut narrow_filter = ProfileSpec::new("nf", SeccompAction::KillProcess);
        narrow_filter.allow(
            SyscallId::new(100),
            SyscallRule {
                args: ArgPolicy::whitelist(
                    ArgBitmask::from_widths([1, 0, 0, 0, 0, 0]),
                    vec![ArgSet::from_slice(&[7])],
                ),
                source: RuleSource::Runtime,
            },
        );
        let stack = compile_stacked(&narrow_filter, FilterLayout::Linear).unwrap();
        let mut wide_author = ProfileSpec::new("wa", SeccompAction::KillProcess);
        wide_author.allow(
            SyscallId::new(100),
            SyscallRule {
                args: ArgPolicy::whitelist(
                    ArgBitmask::from_widths([4, 0, 0, 0, 0, 0]),
                    vec![ArgSet::from_slice(&[7])],
                ),
                source: RuleSource::Runtime,
            },
        );
        let analysis = analyze_stack(&wide_author, &stack);
        let r = analysis.report(SyscallId::new(100)).unwrap();
        assert_eq!(r.agreement, MaskAgreement::DerivedNarrower);
        assert_eq!(r.effective_mask(), ArgBitmask::from_widths([1, 0, 0, 0, 0, 0]));
    }

    #[test]
    fn twox_profiles_analyze_like_their_single_pass_form() {
        let mut gen = ProfileGenerator::new("app");
        for nr in [0u16, 1, 202] {
            gen.observe(&req(nr, &[1, 2, 3, 4, 5, 6]));
        }
        let p1 = gen.emit(ProfileKind::SyscallComplete);
        let p2 = gen.emit(ProfileKind::SyscallComplete2x);
        let a1 = analyze_profile(&p1).unwrap();
        let a2 = analyze_profile(&p2).unwrap();
        assert!(a2.is_clean(), "{:?}", a2.lints());
        for (r1, r2) in a1.syscalls().iter().zip(a2.syscalls()) {
            assert_eq!(r1.sid, r2.sid);
            assert!(same_class(r1.verdict, r2.verdict));
            assert_eq!(r1.derived_mask, r2.derived_mask, "sid {}", r1.sid);
        }
    }

    #[test]
    fn binary_tree_layout_derives_the_same_masks() {
        let profile = firecracker();
        let linear = analyze_stack(
            &profile,
            &compile_stacked(&profile, FilterLayout::Linear).unwrap(),
        );
        let tree = analyze_stack(
            &profile,
            &compile_stacked(&profile, FilterLayout::BinaryTree).unwrap(),
        );
        for (l, t) in linear.syscalls().iter().zip(tree.syscalls()) {
            assert_eq!(l.sid, t.sid);
            assert!(same_class(l.verdict, t.verdict), "sid {}", l.sid);
            assert_eq!(l.derived_mask, t.derived_mask, "sid {}", l.sid);
        }
    }
}
