//! Kernel-subsystem categories for system calls.
//!
//! Profile security analyses (paper Fig. 15 and the motivation of §III:
//! "the system call interface is the major attack vector") become more
//! legible when the allowed surface is broken down by kernel subsystem —
//! a profile that allows 60 syscalls of which zero touch modules,
//! tracing, or keyrings exposes a very different surface than one that
//! allows 60 including `ptrace` and `init_module`.

use core::fmt;

use crate::{SyscallDesc, SyscallTable};

/// The kernel subsystem a system call primarily exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// File and filesystem operations (open/read/stat/...).
    File,
    /// Memory management (mmap/brk/madvise/...).
    Memory,
    /// Networking (socket/sendto/...).
    Network,
    /// Process and thread lifecycle and control.
    Process,
    /// Signals.
    Signal,
    /// System V / POSIX IPC.
    Ipc,
    /// Clocks and timers.
    Time,
    /// Security-sensitive administration (modules, tracing, keys,
    /// mounts, reboot, ...): the calls hardened profiles deny first.
    Admin,
    /// Everything else (misc info, scheduling hints, ...).
    Other,
}

impl Category {
    /// All categories, in display order.
    pub const ALL: [Category; 9] = [
        Category::File,
        Category::Memory,
        Category::Network,
        Category::Process,
        Category::Signal,
        Category::Ipc,
        Category::Time,
        Category::Admin,
        Category::Other,
    ];
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Category::File => "file",
            Category::Memory => "memory",
            Category::Network => "network",
            Category::Process => "process",
            Category::Signal => "signal",
            Category::Ipc => "ipc",
            Category::Time => "time",
            Category::Admin => "admin",
            Category::Other => "other",
        };
        f.write_str(name)
    }
}

/// Classifies a system call by name.
pub fn categorize(desc: &SyscallDesc) -> Category {
    categorize_name(desc.name())
}

/// Classifies a system call name.
pub fn categorize_name(name: &str) -> Category {
    const ADMIN: &[&str] = &[
        "ptrace", "init_module", "finit_module", "delete_module", "create_module",
        "query_module", "get_kernel_syms", "kexec_load", "kexec_file_load", "bpf",
        "perf_event_open", "add_key", "request_key", "keyctl", "mount", "umount2",
        "move_mount", "open_tree", "fsopen", "fsconfig", "fsmount", "fspick",
        "pivot_root", "chroot", "swapon", "swapoff", "reboot", "acct", "quotactl",
        "nfsservctl", "_sysctl", "seccomp", "setns", "unshare", "lookup_dcookie",
        "process_vm_readv", "process_vm_writev", "userfaultfd", "iopl", "ioperm",
        "vhangup", "sethostname", "setdomainname", "syslog", "personality",
        "modify_ldt", "uselib", "kcmp",
    ];
    const IPC_PREFIXES: &[&str] = &["shm", "sem", "msg", "mq_"];
    const NET: &[&str] = &[
        "socket", "connect", "accept", "accept4", "bind", "listen", "sendto",
        "recvfrom", "sendmsg", "recvmsg", "sendmmsg", "recvmmsg", "shutdown",
        "getsockname", "getpeername", "socketpair", "setsockopt", "getsockopt",
        "sendfile",
    ];
    const MEM: &[&str] = &[
        "mmap", "munmap", "mprotect", "brk", "mremap", "msync", "mincore",
        "madvise", "mlock", "munlock", "mlockall", "munlockall", "mlock2",
        "remap_file_pages", "mbind", "set_mempolicy", "get_mempolicy",
        "migrate_pages", "move_pages", "membarrier", "pkey_mprotect",
        "pkey_alloc", "pkey_free", "readahead",
    ];
    const TIME: &[&str] = &[
        "nanosleep", "gettimeofday", "settimeofday", "time", "times", "alarm",
        "getitimer", "setitimer", "timer_create", "timer_settime", "timer_gettime",
        "timer_getoverrun", "timer_delete", "clock_settime", "clock_gettime",
        "clock_getres", "clock_nanosleep", "clock_adjtime", "adjtimex",
        "timerfd_create", "timerfd_settime", "timerfd_gettime", "utime", "utimes",
        "utimensat", "futimesat",
    ];
    if ADMIN.contains(&name) {
        return Category::Admin;
    }
    if IPC_PREFIXES.iter().any(|p| name.starts_with(p)) || name == "pipe" || name == "pipe2" {
        return Category::Ipc;
    }
    if NET.contains(&name) {
        return Category::Network;
    }
    if MEM.contains(&name) {
        return Category::Memory;
    }
    if TIME.contains(&name) {
        return Category::Time;
    }
    if name.contains("sig") || name == "kill" || name == "tkill" || name == "tgkill" || name == "pause" {
        return Category::Signal;
    }
    const PROCESS: &[&str] = &[
        "clone", "clone3", "fork", "vfork", "execve", "execveat", "exit",
        "exit_group", "wait4", "waitid", "getpid", "getppid", "gettid", "getpgrp",
        "setsid", "setpgid", "getpgid", "getsid", "setuid", "setgid", "getuid",
        "getgid", "geteuid", "getegid", "setreuid", "setregid", "setresuid",
        "getresuid", "setresgid", "getresgid", "setfsuid", "setfsgid", "getgroups",
        "setgroups", "capget", "capset", "prctl", "arch_prctl", "set_tid_address",
        "set_robust_list", "get_robust_list", "futex", "sched_yield",
        "sched_setparam", "sched_getparam", "sched_setscheduler",
        "sched_getscheduler", "sched_get_priority_max", "sched_get_priority_min",
        "sched_rr_get_interval", "sched_setaffinity", "sched_getaffinity",
        "sched_setattr", "sched_getattr", "setpriority", "getpriority",
        "getrlimit", "setrlimit", "prlimit64", "getrusage", "pidfd_open",
        "pidfd_send_signal", "rseq", "umask", "ioprio_set", "ioprio_get",
    ];
    if PROCESS.contains(&name) {
        return Category::Process;
    }
    const FILE_HINTS: &[&str] = &[
        "open", "read", "write", "close", "stat", "lseek", "dup", "link", "mkdir",
        "rmdir", "rename", "chmod", "chown", "truncate", "sync", "getdents",
        "getcwd", "chdir", "access", "fcntl", "flock", "fallocate", "splice",
        "tee", "xattr", "inotify", "fanotify", "epoll", "poll", "select",
        "eventfd", "signalfd", "io_", "creat", "mknod", "statfs", "ustat",
        "sysfs", "umount", "mount", "name_to_handle", "open_by_handle",
        "copy_file_range", "memfd", "getrandom", "fadvise", "fdatasync", "fsync",
        "readlink", "symlink", "unlink", "statx", "vmsplice", "syncfs",
    ];
    if FILE_HINTS.iter().any(|h| name.contains(h)) {
        return Category::File;
    }
    Category::Other
}

/// Counts the table's syscalls per category (the whole-interface surface).
pub fn surface(table: &SyscallTable) -> [(Category, usize); 9] {
    let mut counts = Category::ALL.map(|c| (c, 0usize));
    for desc in table.iter() {
        let cat = categorize(desc);
        let slot = counts
            .iter_mut()
            .find(|(c, _)| *c == cat)
            .expect("category in ALL");
        slot.1 += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_representatives() {
        let cases = [
            ("read", Category::File),
            ("openat", Category::File),
            ("mmap", Category::Memory),
            ("socket", Category::Network),
            ("clone", Category::Process),
            ("futex", Category::Process),
            ("rt_sigaction", Category::Signal),
            ("mq_open", Category::Ipc),
            ("shmget", Category::Ipc),
            ("clock_gettime", Category::Time),
            ("ptrace", Category::Admin),
            ("init_module", Category::Admin),
            ("personality", Category::Admin),
            ("uname", Category::Other),
        ];
        for (name, want) in cases {
            assert_eq!(categorize_name(name), want, "{name}");
        }
    }

    #[test]
    fn surface_covers_the_whole_table() {
        let table = SyscallTable::shared();
        let surface = surface(table);
        let total: usize = surface.iter().map(|(_, n)| n).sum();
        assert_eq!(total, table.len());
        let get = |c: Category| surface.iter().find(|(x, _)| *x == c).unwrap().1;
        assert!(get(Category::File) > 60, "file-heavy interface");
        assert!(get(Category::Admin) >= 40, "admin surface exists");
        assert!(get(Category::Process) > 40);
    }

    #[test]
    fn every_docker_denied_call_is_admin_or_memory() {
        // Sanity: the dangerous set concentrates in admin-ish categories.
        let admin_or_mem = ["acct", "bpf", "keyctl", "mount", "reboot", "ptrace"]
            .iter()
            .all(|n| {
                matches!(
                    categorize_name(n),
                    Category::Admin | Category::Memory
                )
            });
        assert!(admin_or_mem);
    }

    #[test]
    fn display_names() {
        assert_eq!(Category::Admin.to_string(), "admin");
        assert_eq!(Category::ALL.len(), 9);
    }
}
