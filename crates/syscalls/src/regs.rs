//! The x86-64 system call register ABI.
//!
//! On x86-64 Linux the system call ID travels in `rax` and the up-to-six
//! arguments in `rdi, rsi, rdx, r10, r8, r9` (paper §II-A). Draco's
//! hardware knows this mapping; for generality the paper (§VIII) proposes an
//! *OS-programmable table* mapping argument positions to arbitrary
//! registers — [`ArgRegisterMap`] models exactly that.

use core::fmt;

use crate::{ArgSet, SyscallId, MAX_ARGS};

/// The general-purpose registers that participate in the syscall ABI.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Register {
    Rax,
    Rdi,
    Rsi,
    Rdx,
    R10,
    R8,
    R9,
    Rcx,
    Rbx,
}

impl fmt::Display for Register {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Register::Rax => "rax",
            Register::Rdi => "rdi",
            Register::Rsi => "rsi",
            Register::Rdx => "rdx",
            Register::R10 => "r10",
            Register::R8 => "r8",
            Register::R9 => "r9",
            Register::Rcx => "rcx",
            Register::Rbx => "rbx",
        };
        f.write_str(name)
    }
}

/// A snapshot of the registers visible to the syscall entry path.
///
/// # Example
///
/// ```
/// use draco_syscalls::{ArgRegisterMap, Register, RegisterFile, SyscallId};
///
/// let mut regs = RegisterFile::new();
/// regs.set(Register::Rax, 135); // personality
/// regs.set(Register::Rdi, 0x20008);
/// let req = regs.request(0x401000, &ArgRegisterMap::linux_x86_64());
/// assert_eq!(req.id, SyscallId::new(135));
/// assert_eq!(req.args.get(0), 0x20008);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegisterFile {
    rax: u64,
    rdi: u64,
    rsi: u64,
    rdx: u64,
    r10: u64,
    r8: u64,
    r9: u64,
    rcx: u64,
    rbx: u64,
}

impl RegisterFile {
    /// Creates a register file with every register zero.
    pub fn new() -> Self {
        RegisterFile::default()
    }

    /// Writes a register.
    pub fn set(&mut self, reg: Register, value: u64) -> &mut Self {
        *self.slot_mut(reg) = value;
        self
    }

    /// Reads a register.
    pub fn get(&self, reg: Register) -> u64 {
        match reg {
            Register::Rax => self.rax,
            Register::Rdi => self.rdi,
            Register::Rsi => self.rsi,
            Register::Rdx => self.rdx,
            Register::R10 => self.r10,
            Register::R8 => self.r8,
            Register::R9 => self.r9,
            Register::Rcx => self.rcx,
            Register::Rbx => self.rbx,
        }
    }

    fn slot_mut(&mut self, reg: Register) -> &mut u64 {
        match reg {
            Register::Rax => &mut self.rax,
            Register::Rdi => &mut self.rdi,
            Register::Rsi => &mut self.rsi,
            Register::Rdx => &mut self.rdx,
            Register::R10 => &mut self.r10,
            Register::R8 => &mut self.r8,
            Register::R9 => &mut self.r9,
            Register::Rcx => &mut self.rcx,
            Register::Rbx => &mut self.rbx,
        }
    }

    /// Materializes the pending system call request under a register map.
    ///
    /// `pc` is the address of the `syscall` instruction; the STB is indexed
    /// by it (paper §VI-B).
    pub fn request(&self, pc: u64, map: &ArgRegisterMap) -> SyscallRequest {
        let mut args = [0u64; MAX_ARGS];
        for (i, slot) in args.iter_mut().enumerate() {
            *slot = self.get(map.arg_register(i));
        }
        SyscallRequest {
            pc,
            id: SyscallId::new((self.get(map.id_register()) & 0xffff) as u16),
            args: ArgSet::new(args),
        }
    }
}

/// Maps syscall argument positions to general-purpose registers.
///
/// The default is the Linux x86-64 convention; alternative kernels can
/// install a different mapping (paper §VIII "we can add an OS-programmable
/// table that contains the mapping between system call argument number and
/// general-purpose register").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArgRegisterMap {
    id: Register,
    args: [Register; MAX_ARGS],
}

impl ArgRegisterMap {
    /// The Linux x86-64 convention: ID in `rax`, arguments in
    /// `rdi, rsi, rdx, r10, r8, r9`.
    pub const fn linux_x86_64() -> Self {
        ArgRegisterMap {
            id: Register::Rax,
            args: [
                Register::Rdi,
                Register::Rsi,
                Register::Rdx,
                Register::R10,
                Register::R8,
                Register::R9,
            ],
        }
    }

    /// A custom mapping.
    pub const fn custom(id: Register, args: [Register; MAX_ARGS]) -> Self {
        ArgRegisterMap { id, args }
    }

    /// The register holding the system call ID.
    pub const fn id_register(&self) -> Register {
        self.id
    }

    /// The register holding argument `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 6`.
    pub const fn arg_register(&self, i: usize) -> Register {
        self.args[i]
    }
}

impl Default for ArgRegisterMap {
    fn default() -> Self {
        ArgRegisterMap::linux_x86_64()
    }
}

/// One decoded system call request: where it came from, what it asks for.
///
/// This is the unit every checker in the workspace consumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SyscallRequest {
    /// Address of the `syscall` instruction (STB index).
    pub pc: u64,
    /// System call ID (SPT/SLB index component).
    pub id: SyscallId,
    /// The six raw argument registers.
    pub args: ArgSet,
}

impl SyscallRequest {
    /// Convenience constructor.
    pub fn new(pc: u64, id: SyscallId, args: ArgSet) -> Self {
        SyscallRequest { pc, id, args }
    }
}

impl fmt::Display for SyscallRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ pc={:#x}", self.id, self.pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_map_routes_abi_registers() {
        let map = ArgRegisterMap::linux_x86_64();
        assert_eq!(map.id_register(), Register::Rax);
        assert_eq!(map.arg_register(0), Register::Rdi);
        assert_eq!(map.arg_register(3), Register::R10);
        assert_eq!(map.arg_register(5), Register::R9);
        assert_eq!(ArgRegisterMap::default(), map);
    }

    #[test]
    fn register_file_roundtrip() {
        let mut regs = RegisterFile::new();
        for (i, reg) in [
            Register::Rax,
            Register::Rdi,
            Register::Rsi,
            Register::Rdx,
            Register::R10,
            Register::R8,
            Register::R9,
            Register::Rcx,
            Register::Rbx,
        ]
        .into_iter()
        .enumerate()
        {
            regs.set(reg, i as u64 + 1);
            assert_eq!(regs.get(reg), i as u64 + 1);
        }
    }

    #[test]
    fn request_follows_paper_figure_1() {
        // Paper Fig. 1: movl 0xffffffff,%rdi ; movl $135,%rax ; SYSCALL.
        let mut regs = RegisterFile::new();
        regs.set(Register::Rax, 135).set(Register::Rdi, 0xffff_ffff);
        let req = regs.request(0x1000, &ArgRegisterMap::linux_x86_64());
        assert_eq!(req.id, SyscallId::new(135));
        assert_eq!(req.args.get(0), 0xffff_ffff);
        assert_eq!(req.pc, 0x1000);
        assert_eq!(req.to_string(), "sid:135 @ pc=0x1000");
    }

    #[test]
    fn custom_map_swaps_argument_sources() {
        let map = ArgRegisterMap::custom(
            Register::Rbx,
            [
                Register::R9,
                Register::R8,
                Register::R10,
                Register::Rdx,
                Register::Rsi,
                Register::Rdi,
            ],
        );
        let mut regs = RegisterFile::new();
        regs.set(Register::Rbx, 7)
            .set(Register::R9, 100)
            .set(Register::Rdi, 600);
        let req = regs.request(0, &map);
        assert_eq!(req.id, SyscallId::new(7));
        assert_eq!(req.args.get(0), 100);
        assert_eq!(req.args.get(5), 600);
    }

    #[test]
    fn id_is_truncated_to_16_bits() {
        let mut regs = RegisterFile::new();
        regs.set(Register::Rax, 0xdead_0001);
        let req = regs.request(0, &ArgRegisterMap::linux_x86_64());
        assert_eq!(req.id, SyscallId::new(1));
    }
}
