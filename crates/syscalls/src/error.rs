//! Error types for the syscall model.

use core::fmt;

use crate::SyscallId;

/// Errors produced when resolving system calls against a concrete table.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SyscallError {
    /// The system call number is outside the kernel interface.
    UnknownId(SyscallId),
    /// No system call with this name exists in the table.
    UnknownName(String),
}

impl fmt::Display for SyscallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyscallError::UnknownId(id) => {
                write!(f, "unknown system call number {}", id.as_u16())
            }
            SyscallError::UnknownName(name) => {
                write!(f, "unknown system call name `{name}`")
            }
        }
    }
}

impl std::error::Error for SyscallError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SyscallError::UnknownId(SyscallId::new(999)).to_string(),
            "unknown system call number 999"
        );
        assert_eq!(
            SyscallError::UnknownName("frobnicate".into()).to_string(),
            "unknown system call name `frobnicate`"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync>() {}
        assert_traits::<SyscallError>();
    }
}
