//! System call argument sets and the 48-bit Argument Bitmask.

use core::fmt;

/// Maximum number of arguments a Linux system call takes.
pub const MAX_ARGS: usize = 6;

/// Bytes per argument register (x86-64 general-purpose registers).
pub const ARG_BYTES: usize = 8;

/// Total number of bitmask bits: one per argument byte (paper §V-B).
const MASK_BITS: usize = MAX_ARGS * ARG_BYTES;

/// Mask with the low 48 bits set.
const MASK_ALL: u64 = (1u64 << MASK_BITS) - 1;

/// The six 64-bit argument values of a system call invocation.
///
/// Unused trailing arguments are zero. Equality and hashing are bytewise
/// over all six slots; Draco-level comparisons that must ignore pointer
/// bytes go through [`ArgBitmask::masked`].
///
/// # Example
///
/// ```
/// use draco_syscalls::ArgSet;
///
/// let args = ArgSet::new([1, 2, 3, 0, 0, 0]);
/// assert_eq!(args.get(1), 2);
/// assert_eq!(args.iter().sum::<u64>(), 6);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArgSet([u64; MAX_ARGS]);

impl ArgSet {
    /// Creates an argument set from raw register values
    /// (`rdi, rsi, rdx, r10, r8, r9` in ABI order).
    pub const fn new(values: [u64; MAX_ARGS]) -> Self {
        ArgSet(values)
    }

    /// An argument set with all six slots zero (for zero-argument calls).
    pub const fn empty() -> Self {
        ArgSet([0; MAX_ARGS])
    }

    /// Creates an argument set from the first `values.len()` slots, zero
    /// filling the rest.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() > 6`.
    pub fn from_slice(values: &[u64]) -> Self {
        assert!(values.len() <= MAX_ARGS, "at most 6 syscall arguments");
        let mut slots = [0u64; MAX_ARGS];
        slots[..values.len()].copy_from_slice(values);
        ArgSet(slots)
    }

    /// Returns argument `i` (0-based register-order position).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 6`.
    pub const fn get(&self, i: usize) -> u64 {
        self.0[i]
    }

    /// Replaces argument `i`, returning the updated set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 6`.
    #[must_use]
    pub const fn with(mut self, i: usize, value: u64) -> Self {
        self.0[i] = value;
        self
    }

    /// Iterates over the six argument values in register order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.0.iter().copied()
    }

    /// Returns the underlying array.
    pub const fn as_array(&self) -> [u64; MAX_ARGS] {
        self.0
    }
}

impl From<[u64; MAX_ARGS]> for ArgSet {
    fn from(values: [u64; MAX_ARGS]) -> Self {
        ArgSet::new(values)
    }
}

impl From<ArgSet> for [u64; MAX_ARGS] {
    fn from(args: ArgSet) -> Self {
        args.0
    }
}

impl fmt::Debug for ArgSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArgSet[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:#x}")?;
        }
        write!(f, "]")
    }
}

/// The Draco Argument Bitmask: one bit per argument byte, 48 bits total.
///
/// Bit `i * 8 + b` selects byte `b` of argument `i`. A system call that
/// takes two one-byte arguments has bits 0 and 8 set (the paper's own
/// example, §V-B). Bytes not selected — unused arguments, pointer
/// arguments, or high-order bytes beyond an argument's width — take no part
/// in hashing or comparison.
///
/// # Example
///
/// ```
/// use draco_syscalls::{ArgBitmask, ArgSet};
///
/// // Two one-byte arguments → bits 0 and 8.
/// let mask = ArgBitmask::from_widths([1, 1, 0, 0, 0, 0]);
/// assert_eq!(mask.raw(), 0b1_0000_0001);
/// let masked = mask.masked(&ArgSet::new([0x11ff, 0x22ee, 99, 0, 0, 0]));
/// assert_eq!(masked.get(0), 0xff); // only the low byte survives
/// assert_eq!(masked.get(1), 0xee);
/// assert_eq!(masked.get(2), 0); // unselected argument
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ArgBitmask(u64);

impl ArgBitmask {
    /// A bitmask selecting no bytes (zero-argument system calls).
    pub const EMPTY: ArgBitmask = ArgBitmask(0);

    /// Creates a bitmask from a raw 48-bit value.
    ///
    /// # Panics
    ///
    /// Panics if bits above bit 47 are set.
    pub const fn from_raw(raw: u64) -> Self {
        assert!(raw <= MASK_ALL, "argument bitmask is 48 bits wide");
        ArgBitmask(raw)
    }

    /// Creates a bitmask from per-argument byte widths.
    ///
    /// `widths[i]` is how many low-order bytes of argument `i` are
    /// significant (0 = argument unused or pointer, up to 8).
    ///
    /// # Panics
    ///
    /// Panics if any width exceeds 8.
    pub const fn from_widths(widths: [u8; MAX_ARGS]) -> Self {
        let mut raw = 0u64;
        let mut i = 0;
        while i < MAX_ARGS {
            let w = widths[i];
            assert!(w as usize <= ARG_BYTES, "argument width is at most 8 bytes");
            if w > 0 {
                let bytes = if w as usize == ARG_BYTES {
                    u64::MAX
                } else {
                    (1u64 << (w * 8)) - 1
                };
                // Per-byte bits: width w selects bytes 0..w of argument i.
                let per_byte = if w as usize == ARG_BYTES {
                    0xff
                } else {
                    (1u64 << w) - 1
                };
                let _ = bytes;
                raw |= per_byte << (i * ARG_BYTES);
            }
            i += 1;
        }
        ArgBitmask(raw)
    }

    /// Returns the raw 48-bit mask.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// True if no bytes are selected.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of selected bytes.
    pub const fn selected_bytes(self) -> u32 {
        self.0.count_ones()
    }

    /// Number of arguments with at least one selected byte.
    ///
    /// The hardware SPT derives the SLB subtable selector (`#Args`) from
    /// the bitmask this way (paper Fig. 7).
    pub const fn arg_count(self) -> usize {
        let mut n = 0;
        let mut i = 0;
        while i < MAX_ARGS {
            if (self.0 >> (i * ARG_BYTES)) & 0xff != 0 {
                n += 1;
            }
            i += 1;
        }
        n
    }

    /// True if byte `byte` of argument `arg` is selected.
    ///
    /// # Panics
    ///
    /// Panics if `arg >= 6` or `byte >= 8`.
    pub const fn selects(self, arg: usize, byte: usize) -> bool {
        assert!(arg < MAX_ARGS && byte < ARG_BYTES);
        (self.0 >> (arg * ARG_BYTES + byte)) & 1 == 1
    }

    /// Applies the mask to an argument set, zeroing every unselected byte.
    ///
    /// The result is the canonical value Draco hashes and compares: two
    /// invocations are "the same argument set" iff their masked sets are
    /// bytewise equal.
    pub fn masked(self, args: &ArgSet) -> ArgSet {
        let mut out = [0u64; MAX_ARGS];
        for (i, slot) in out.iter_mut().enumerate() {
            let byte_bits = (self.0 >> (i * ARG_BYTES)) & 0xff;
            if byte_bits == 0 {
                continue;
            }
            let mut m = 0u64;
            for b in 0..ARG_BYTES {
                if (byte_bits >> b) & 1 == 1 {
                    m |= 0xffu64 << (b * 8);
                }
            }
            *slot = args.get(i) & m;
        }
        ArgSet::new(out)
    }

    /// Extracts the selected bytes in ascending bit order, producing the
    /// byte string fed to the VAT hash functions (paper Fig. 5 "Selector").
    pub fn select_bytes(self, args: &ArgSet) -> MaskedBytes {
        let mut bytes = [0u8; MASK_BITS];
        let mut len = 0usize;
        for arg in 0..MAX_ARGS {
            let byte_bits = (self.0 >> (arg * ARG_BYTES)) & 0xff;
            if byte_bits == 0 {
                continue;
            }
            let value = args.get(arg).to_le_bytes();
            if byte_bits == 0xff {
                // Whole-argument masks (the common case for value
                // arguments) copy in one shot.
                bytes[len..len + ARG_BYTES].copy_from_slice(&value);
                len += ARG_BYTES;
                continue;
            }
            // Sparse masks walk only the *set* bits, still in ascending
            // bit order (paper Fig. 5's selector ordering).
            let mut bits = byte_bits;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bytes[len] = value[b];
                len += 1;
                bits &= bits - 1;
            }
        }
        MaskedBytes { bytes, len }
    }

    /// Union of two bitmasks.
    #[must_use]
    pub const fn union(self, other: ArgBitmask) -> ArgBitmask {
        ArgBitmask(self.0 | other.0)
    }

    /// Expands the bitmask into one byte-granular mask word per
    /// argument: `args.get(i) & expand()[i]` keeps exactly the bytes
    /// [`ArgBitmask::masked`] keeps. Callers that test many argument
    /// sets against one mask (e.g. batch key deduplication) precompute
    /// this once and reduce the per-set work to six ANDs.
    #[must_use]
    pub const fn expand(self) -> [u64; MAX_ARGS] {
        let mut out = [0u64; MAX_ARGS];
        let mut i = 0;
        while i < MAX_ARGS {
            let byte_bits = (self.0 >> (i * ARG_BYTES)) & 0xff;
            let mut m = 0u64;
            let mut b = 0;
            while b < ARG_BYTES {
                if (byte_bits >> b) & 1 == 1 {
                    m |= 0xffu64 << (b * 8);
                }
                b += 1;
            }
            out[i] = m;
            i += 1;
        }
        out
    }
}

impl fmt::Debug for ArgBitmask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArgBitmask({:#014x})", self.0)
    }
}

impl fmt::Binary for ArgBitmask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for ArgBitmask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// The selected argument bytes of one invocation, in mask bit order.
///
/// This is what the CRC hash functions consume. At most 48 bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct MaskedBytes {
    bytes: [u8; MASK_BITS],
    len: usize,
}

impl MaskedBytes {
    /// The selected bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..self.len]
    }

    /// Number of selected bytes.
    pub const fn len(&self) -> usize {
        self.len
    }

    /// True for zero-argument (or all-pointer) calls.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl AsRef<[u8]> for MaskedBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for MaskedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MaskedBytes({:02x?})", self.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argset_accessors() {
        let a = ArgSet::from_slice(&[7, 8]);
        assert_eq!(a.get(0), 7);
        assert_eq!(a.get(1), 8);
        assert_eq!(a.get(5), 0);
        let b = a.with(5, 42);
        assert_eq!(b.get(5), 42);
        assert_eq!(a.get(5), 0, "with() is by-value");
        assert_eq!(b.as_array()[5], 42);
    }

    #[test]
    #[should_panic(expected = "at most 6")]
    fn argset_from_slice_rejects_overlong() {
        let _ = ArgSet::from_slice(&[0; 7]);
    }

    #[test]
    fn paper_example_two_one_byte_args() {
        // Paper §V-B: "for a system call that uses two arguments of one byte
        // each, the Argument Bitmask has bits 0 and 8 set".
        let mask = ArgBitmask::from_widths([1, 1, 0, 0, 0, 0]);
        assert!(mask.selects(0, 0));
        assert!(mask.selects(1, 0));
        assert!(!mask.selects(0, 1));
        assert_eq!(mask.raw(), (1 << 0) | (1 << 8));
        assert_eq!(mask.selected_bytes(), 2);
        assert_eq!(mask.arg_count(), 2);
    }

    #[test]
    fn full_width_masks() {
        let mask = ArgBitmask::from_widths([8, 8, 8, 8, 8, 8]);
        assert_eq!(mask.raw(), (1u64 << 48) - 1);
        assert_eq!(mask.arg_count(), 6);
        assert_eq!(mask.selected_bytes(), 48);
    }

    #[test]
    fn masked_zeroes_unselected_bytes() {
        let mask = ArgBitmask::from_widths([4, 0, 8, 0, 0, 0]);
        let args = ArgSet::new([0xaabb_ccdd_eeff_0011, 5, u64::MAX, 9, 9, 9]);
        let m = mask.masked(&args);
        assert_eq!(m.get(0), 0xeeff_0011);
        assert_eq!(m.get(1), 0);
        assert_eq!(m.get(2), u64::MAX);
        assert_eq!(m.get(3), 0);
    }

    #[test]
    fn expand_agrees_with_masked() {
        // Sparse, full, and empty per-argument byte masks, including a
        // non-contiguous bit pattern (raw bit 2 of arg 3's byte mask).
        let masks = [
            ArgBitmask::from_widths([1, 1, 0, 0, 0, 0]),
            ArgBitmask::from_widths([8, 8, 8, 8, 8, 8]),
            ArgBitmask::from_widths([4, 0, 8, 0, 2, 0]),
            ArgBitmask::EMPTY,
            ArgBitmask::from_raw(0b101 << 24),
        ];
        let args = ArgSet::new([
            0xaabb_ccdd_eeff_0011,
            u64::MAX,
            0x0102_0304_0506_0708,
            0xffee_ddcc_bbaa_9988,
            7,
            0,
        ]);
        for mask in masks {
            let words = mask.expand();
            let masked = mask.masked(&args);
            for (i, &w) in words.iter().enumerate() {
                assert_eq!(args.get(i) & w, masked.get(i), "mask {mask:?} arg {i}");
            }
        }
    }

    #[test]
    fn select_bytes_orders_by_bit_index() {
        let mask = ArgBitmask::from_widths([2, 1, 0, 0, 0, 0]);
        let args = ArgSet::new([0x1122, 0x33, 0, 0, 0, 0]);
        let bytes = mask.select_bytes(&args);
        assert_eq!(bytes.as_slice(), &[0x22, 0x11, 0x33]);
        assert_eq!(bytes.len(), 3);
        assert!(!bytes.is_empty());
    }

    #[test]
    fn select_bytes_empty_mask() {
        let bytes = ArgBitmask::EMPTY.select_bytes(&ArgSet::new([1; 6]));
        assert!(bytes.is_empty());
        assert_eq!(bytes.as_slice(), &[] as &[u8]);
    }

    #[test]
    fn masked_equality_defines_same_argument_set() {
        // Same selected bytes, different pointer-ish garbage elsewhere.
        let mask = ArgBitmask::from_widths([4, 0, 4, 0, 0, 0]);
        let a = ArgSet::new([0x1111, 0xdead_beef, 0x2222, 0, 0, 0]);
        let b = ArgSet::new([0x1111, 0xfeed_face, 0x2222, 7, 7, 7]);
        assert_eq!(mask.masked(&a), mask.masked(&b));
        assert_eq!(
            mask.select_bytes(&a).as_slice(),
            mask.select_bytes(&b).as_slice()
        );
    }

    #[test]
    fn union_combines_selections() {
        let a = ArgBitmask::from_widths([1, 0, 0, 0, 0, 0]);
        let b = ArgBitmask::from_widths([0, 1, 0, 0, 0, 0]);
        assert_eq!(a.union(b), ArgBitmask::from_widths([1, 1, 0, 0, 0, 0]));
    }

    #[test]
    #[should_panic(expected = "48 bits")]
    fn from_raw_rejects_high_bits() {
        let _ = ArgBitmask::from_raw(1 << 48);
    }

    #[test]
    fn arg_count_skips_gaps() {
        // Args 0 and 2 selected, 1 skipped (e.g. pointer in the middle).
        let mask = ArgBitmask::from_widths([4, 0, 4, 0, 0, 0]);
        assert_eq!(mask.arg_count(), 2);
    }

    #[test]
    fn debug_formats_are_nonempty() {
        assert!(!format!("{:?}", ArgSet::empty()).is_empty());
        assert!(!format!("{:?}", ArgBitmask::EMPTY).is_empty());
        assert!(format!("{:?}", ArgBitmask::from_widths([1; 6])).contains("0x"));
    }
}
