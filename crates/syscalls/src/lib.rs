//! x86-64 system call model for the Draco reproduction.
//!
//! This crate is the lowest substrate of the workspace: it defines what a
//! system call *is* for every other crate — its identifier ([`SyscallId`]),
//! its up-to-six 64-bit arguments ([`ArgSet`]), the per-byte argument
//! selection mask used by Draco's hashing path ([`ArgBitmask`]), the x86-64
//! register ABI ([`RegisterFile`], [`ArgRegisterMap`]), and a complete
//! descriptor table of the Linux x86-64 system call interface
//! ([`table::SyscallTable`]).
//!
//! The Draco paper (MICRO 2020) checks system calls by `(ID, argument set)`.
//! Two properties of this crate mirror the paper directly:
//!
//! * the **Argument Bitmask** has one bit per argument byte (6 args × 8
//!   bytes = 48 bits); a bit is set iff the system call uses that byte as an
//!   argument (paper §V-B), and only the selected bytes participate in VAT
//!   hashing and SLB comparison;
//! * **pointer arguments are never checked** (paper §II-B, TOCTOU), so the
//!   descriptor table marks each argument as a value of a given width or a
//!   pointer, and pointers contribute no bitmask bits.
//!
//! # Example
//!
//! ```
//! use draco_syscalls::{ArgSet, SyscallId, table::SyscallTable};
//!
//! let table = SyscallTable::linux_x86_64();
//! let read = table.by_name("read").expect("read exists");
//! assert_eq!(read.id(), SyscallId::new(0));
//! // `read(fd, buf, count)`: fd and count are checkable values, buf is a
//! // pointer and is excluded from the bitmask.
//! let mask = read.bitmask();
//! let args = ArgSet::new([3, 0xdead_beef, 4096, 0, 0, 0]);
//! let masked = mask.masked(&args);
//! assert_eq!(masked.get(0), 3); // fd survives
//! assert_eq!(masked.get(1), 0); // pointer zeroed
//! assert_eq!(masked.get(2), 4096); // count survives
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod args;
pub mod category;
mod error;
mod id;
mod regs;
pub mod table;

pub use args::{ArgBitmask, ArgSet, MaskedBytes, ARG_BYTES, MAX_ARGS};
pub use category::{categorize, categorize_name, Category};
pub use error::SyscallError;
pub use id::SyscallId;
pub use regs::{ArgRegisterMap, Register, RegisterFile, SyscallRequest};
pub use table::{ArgKind, SyscallDesc, SyscallTable, SYSCALL_COUNT};
