//! The Linux x86-64 system call descriptor table.
//!
//! Every other crate resolves system calls against this table: argument
//! counts drive SLB subtable selection, argument kinds drive the Argument
//! Bitmask (pointers are never checked — paper §II-B), and the total count
//! (403, matching the paper's Fig. 15a) anchors the security statistics.
//!
//! Entries 0–334 and 424–435 are the real Linux 5.3-era x86-64 interface.
//! The paper counts 403 system calls for "linux" in Fig. 15a, which
//! includes compat entries beyond the x86-64 native table; we model that
//! remainder as explicit [`Origin::Compat`] placeholders (numbers 335–390)
//! so the security-statistics figures keep the paper's shape. Substitution
//! documented in `DESIGN.md` §2.

use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use crate::{ArgBitmask, SyscallError, SyscallId, MAX_ARGS};

/// Total number of system calls in the modeled Linux interface
/// (paper Fig. 15a: "linux shows the total number of system calls in
/// Linux, which is 403").
pub const SYSCALL_COUNT: usize = 403;

/// Highest system call number plus one (table capacity).
pub const TABLE_CAPACITY: usize = 436;

/// How one argument of a system call is classified for checking.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArgKind {
    /// Slot not used by this system call.
    None,
    /// A checkable value of the given width in bytes (1, 2, 4, or 8).
    Value(u8),
    /// A userspace pointer: excluded from checking (TOCTOU, paper §II-B).
    Pointer,
}

impl ArgKind {
    /// Bytes this argument contributes to the Argument Bitmask.
    pub const fn checked_width(self) -> u8 {
        match self {
            ArgKind::Value(w) => w,
            ArgKind::None | ArgKind::Pointer => 0,
        }
    }

    /// True if the slot is used at all (value or pointer).
    pub const fn is_used(self) -> bool {
        !matches!(self, ArgKind::None)
    }
}

/// Where a table entry comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Origin {
    /// Native x86-64 system call.
    Native,
    /// Compat-surface placeholder (see module docs).
    Compat,
}

/// A system call descriptor: identity, signature, and derived masks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyscallDesc {
    id: SyscallId,
    name: &'static str,
    args: [ArgKind; MAX_ARGS],
    origin: Origin,
    bitmask: ArgBitmask,
}

impl SyscallDesc {
    fn new(nr: u16, name: &'static str, kinds: &[ArgKind], origin: Origin) -> Self {
        assert!(kinds.len() <= MAX_ARGS, "{name}: at most 6 arguments");
        let mut args = [ArgKind::None; MAX_ARGS];
        args[..kinds.len()].copy_from_slice(kinds);
        let mut widths = [0u8; MAX_ARGS];
        for (w, a) in widths.iter_mut().zip(args.iter()) {
            *w = a.checked_width();
        }
        SyscallDesc {
            id: SyscallId::new(nr),
            name,
            args,
            origin,
            bitmask: ArgBitmask::from_widths(widths),
        }
    }

    /// The system call number.
    pub const fn id(&self) -> SyscallId {
        self.id
    }

    /// The kernel name (e.g. `"openat"`).
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Argument kinds in register order.
    pub const fn args(&self) -> &[ArgKind; MAX_ARGS] {
        &self.args
    }

    /// Number of declared arguments (used slots, pointers included).
    pub fn arg_count(&self) -> usize {
        self.args.iter().filter(|a| a.is_used()).count()
    }

    /// Number of *checkable* arguments (paper Fig. 14 counts these; like
    /// Seccomp, Draco does not check pointers).
    pub fn checked_arg_count(&self) -> usize {
        self.bitmask.arg_count()
    }

    /// The Argument Bitmask stored in the SPT entry for this call.
    pub const fn bitmask(&self) -> ArgBitmask {
        self.bitmask
    }

    /// Whether this is a native x86-64 entry or a compat placeholder.
    pub const fn origin(&self) -> Origin {
        self.origin
    }
}

impl fmt::Display for SyscallDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.id.as_u16())
    }
}

/// The complete system call table of a kernel interface.
///
/// # Example
///
/// ```
/// use draco_syscalls::{SyscallId, SyscallTable};
///
/// let table = SyscallTable::linux_x86_64();
/// assert_eq!(table.len(), draco_syscalls::SYSCALL_COUNT);
/// let futex = table.get(SyscallId::new(202)).expect("futex");
/// assert_eq!(futex.name(), "futex");
/// assert_eq!(futex.checked_arg_count(), 3); // op, val, val3 (pointers skipped)
/// ```
#[derive(Clone)]
pub struct SyscallTable {
    by_id: Vec<Option<SyscallDesc>>,
    by_name: HashMap<&'static str, SyscallId>,
}

impl SyscallTable {
    /// Builds a table from raw entries (the general constructor the
    /// paper's §VIII generality rests on: "different OS kernels will
    /// have different SPT contents due to different system calls and
    /// different arguments").
    ///
    /// # Panics
    ///
    /// Panics on duplicate numbers or numbers beyond `capacity`.
    pub fn from_entries(entries: &[(u16, &'static str, &[ArgKind])], capacity: usize) -> Self {
        let mut by_id: Vec<Option<SyscallDesc>> = vec![None; capacity];
        let mut by_name = HashMap::with_capacity(entries.len());
        for &(nr, name, kinds) in entries {
            assert!((nr as usize) < capacity, "{name}: number {nr} beyond capacity");
            assert!(by_id[nr as usize].is_none(), "duplicate number {nr}");
            let desc = SyscallDesc::new(nr, name, kinds, Origin::Native);
            by_name.insert(name, desc.id());
            by_id[nr as usize] = Some(desc);
        }
        SyscallTable { by_id, by_name }
    }

    /// Builds the Linux x86-64 table (403 entries; see module docs).
    pub fn linux_x86_64() -> Self {
        let mut table = SyscallTable::from_entries(NATIVE_ENTRIES, TABLE_CAPACITY);
        for nr in COMPAT_RANGE {
            let name = compat_name(nr);
            let desc = SyscallDesc::new(nr, name, &[], Origin::Compat);
            table.by_name.insert(name, desc.id());
            table.by_id[nr as usize] = Some(desc);
        }
        debug_assert_eq!(table.len(), SYSCALL_COUNT);
        table
    }

    /// The KVM hypercall interface: the transitions a guest OS makes into
    /// the hypervisor (`vmcall`). The paper's §VIII observes that the
    /// Draco structures "can support security checks in virtualized
    /// environments, such as when the guest OS invokes the hypervisor
    /// through hypercalls" — same SPT/VAT/SLB machinery, different table.
    pub fn kvm_hypercalls() -> Self {
        use ArgKind::Value;
        const V4: ArgKind = Value(4);
        const V8: ArgKind = Value(8);
        const ENTRIES: &[(u16, &str, &[ArgKind])] = &[
            (1, "kvm_hc_vapic_poll_irq", &[]),
            (5, "kvm_hc_kick_cpu", &[V4, V4]),
            (9, "kvm_hc_clock_pairing", &[V8, V4]),
            (10, "kvm_hc_send_ipi", &[V8, V8, V4, V4]),
            (11, "kvm_hc_sched_yield", &[V4]),
            (12, "kvm_hc_map_gpa_range", &[V8, V8, V8]),
        ];
        SyscallTable::from_entries(ENTRIES, 16)
    }

    /// A process-wide shared instance (the table is immutable).
    pub fn shared() -> &'static SyscallTable {
        static SHARED: OnceLock<SyscallTable> = OnceLock::new();
        SHARED.get_or_init(SyscallTable::linux_x86_64)
    }

    /// Looks up a descriptor by number.
    pub fn get(&self, id: SyscallId) -> Option<&SyscallDesc> {
        self.by_id.get(id.index()).and_then(Option::as_ref)
    }

    /// Looks up a descriptor by number, with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`SyscallError::UnknownId`] if the number is unassigned.
    pub fn resolve(&self, id: SyscallId) -> Result<&SyscallDesc, SyscallError> {
        self.get(id).ok_or(SyscallError::UnknownId(id))
    }

    /// Looks up a descriptor by kernel name.
    pub fn by_name(&self, name: &str) -> Option<&SyscallDesc> {
        self.by_name.get(name).and_then(|id| self.get(*id))
    }

    /// Looks up a descriptor by kernel name, with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`SyscallError::UnknownName`] if no entry has this name.
    pub fn resolve_name(&self, name: &str) -> Result<&SyscallDesc, SyscallError> {
        self.by_name(name)
            .ok_or_else(|| SyscallError::UnknownName(name.to_owned()))
    }

    /// Number of defined system calls.
    pub fn len(&self) -> usize {
        self.by_id.iter().filter(|e| e.is_some()).count()
    }

    /// True if the table has no entries (never the case for built tables).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Table capacity: one more than the highest assigned number. SPT-style
    /// direct-mapped structures size themselves from this.
    pub fn capacity(&self) -> usize {
        self.by_id.len()
    }

    /// Iterates over all defined descriptors in numeric order.
    pub fn iter(&self) -> impl Iterator<Item = &SyscallDesc> {
        self.by_id.iter().filter_map(Option::as_ref)
    }

    /// Distribution of *checked* argument counts over the whole interface
    /// (the "linux" entry of paper Fig. 14): `dist[n]` = number of system
    /// calls with `n` checkable arguments.
    pub fn arg_count_distribution(&self) -> [usize; MAX_ARGS + 1] {
        let mut dist = [0usize; MAX_ARGS + 1];
        for desc in self.iter() {
            dist[desc.checked_arg_count()] += 1;
        }
        dist
    }
}

impl fmt::Debug for SyscallTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SyscallTable")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

impl Default for SyscallTable {
    fn default() -> Self {
        SyscallTable::linux_x86_64()
    }
}

/// Placeholder numbers 335–390 (see module docs).
const COMPAT_RANGE: std::ops::RangeInclusive<u16> = 335..=390;

fn compat_name(nr: u16) -> &'static str {
    // Names must be &'static; generate once and leak — the table is a
    // process-lifetime singleton in practice and this runs per table build.
    static NAMES: OnceLock<Vec<String>> = OnceLock::new();
    let names = NAMES.get_or_init(|| {
        COMPAT_RANGE
            .map(|n| format!("compat_{n}"))
            .collect::<Vec<_>>()
    });
    &names[(nr - *COMPAT_RANGE.start()) as usize]
}

use ArgKind::Pointer as P;
/// Two-byte value argument.
const V2: ArgKind = ArgKind::Value(2);
/// Four-byte value argument (ints, fds, flags).
const V4: ArgKind = ArgKind::Value(4);
/// Eight-byte value argument (sizes, offsets, unsigned long).
const V8: ArgKind = ArgKind::Value(8);

/// The native x86-64 entries: `(number, name, argument kinds)`.
///
/// Signatures follow the Linux 5.3 x86-64 syscall table; widths are the
/// natural C type widths (fd/int → 4, size_t/loff_t/unsigned long → 8,
/// mode_t → 2 where it is the only small value, pointers marked `P`).
#[rustfmt::skip]
static NATIVE_ENTRIES: &[(u16, &str, &[ArgKind])] = &[
    (0, "read", &[V4, P, V8]),
    (1, "write", &[V4, P, V8]),
    (2, "open", &[P, V4, V4]),
    (3, "close", &[V4]),
    (4, "stat", &[P, P]),
    (5, "fstat", &[V4, P]),
    (6, "lstat", &[P, P]),
    (7, "poll", &[P, V4, V4]),
    (8, "lseek", &[V4, V8, V4]),
    (9, "mmap", &[P, V8, V4, V4, V4, V8]),
    (10, "mprotect", &[P, V8, V4]),
    (11, "munmap", &[P, V8]),
    (12, "brk", &[P]),
    (13, "rt_sigaction", &[V4, P, P, V8]),
    (14, "rt_sigprocmask", &[V4, P, P, V8]),
    (15, "rt_sigreturn", &[]),
    (16, "ioctl", &[V4, V8, V8]),
    (17, "pread64", &[V4, P, V8, V8]),
    (18, "pwrite64", &[V4, P, V8, V8]),
    (19, "readv", &[V4, P, V8]),
    (20, "writev", &[V4, P, V8]),
    (21, "access", &[P, V4]),
    (22, "pipe", &[P]),
    (23, "select", &[V4, P, P, P, P]),
    (24, "sched_yield", &[]),
    (25, "mremap", &[P, V8, V8, V4, P]),
    (26, "msync", &[P, V8, V4]),
    (27, "mincore", &[P, V8, P]),
    (28, "madvise", &[P, V8, V4]),
    (29, "shmget", &[V4, V8, V4]),
    (30, "shmat", &[V4, P, V4]),
    (31, "shmctl", &[V4, V4, P]),
    (32, "dup", &[V4]),
    (33, "dup2", &[V4, V4]),
    (34, "pause", &[]),
    (35, "nanosleep", &[P, P]),
    (36, "getitimer", &[V4, P]),
    (37, "alarm", &[V4]),
    (38, "setitimer", &[V4, P, P]),
    (39, "getpid", &[]),
    (40, "sendfile", &[V4, V4, P, V8]),
    (41, "socket", &[V4, V4, V4]),
    (42, "connect", &[V4, P, V4]),
    (43, "accept", &[V4, P, P]),
    (44, "sendto", &[V4, P, V8, V4, P, V4]),
    (45, "recvfrom", &[V4, P, V8, V4, P, P]),
    (46, "sendmsg", &[V4, P, V4]),
    (47, "recvmsg", &[V4, P, V4]),
    (48, "shutdown", &[V4, V4]),
    (49, "bind", &[V4, P, V4]),
    (50, "listen", &[V4, V4]),
    (51, "getsockname", &[V4, P, P]),
    (52, "getpeername", &[V4, P, P]),
    (53, "socketpair", &[V4, V4, V4, P]),
    (54, "setsockopt", &[V4, V4, V4, P, V4]),
    (55, "getsockopt", &[V4, V4, V4, P, P]),
    (56, "clone", &[V8, P, P, P, V8]),
    (57, "fork", &[]),
    (58, "vfork", &[]),
    (59, "execve", &[P, P, P]),
    (60, "exit", &[V4]),
    (61, "wait4", &[V4, P, V4, P]),
    (62, "kill", &[V4, V4]),
    (63, "uname", &[P]),
    (64, "semget", &[V4, V4, V4]),
    (65, "semop", &[V4, P, V8]),
    (66, "semctl", &[V4, V4, V4, V8]),
    (67, "shmdt", &[P]),
    (68, "msgget", &[V4, V4]),
    (69, "msgsnd", &[V4, P, V8, V4]),
    (70, "msgrcv", &[V4, P, V8, V8, V4]),
    (71, "msgctl", &[V4, V4, P]),
    (72, "fcntl", &[V4, V4, V8]),
    (73, "flock", &[V4, V4]),
    (74, "fsync", &[V4]),
    (75, "fdatasync", &[V4]),
    (76, "truncate", &[P, V8]),
    (77, "ftruncate", &[V4, V8]),
    (78, "getdents", &[V4, P, V4]),
    (79, "getcwd", &[P, V8]),
    (80, "chdir", &[P]),
    (81, "fchdir", &[V4]),
    (82, "rename", &[P, P]),
    (83, "mkdir", &[P, V2]),
    (84, "rmdir", &[P]),
    (85, "creat", &[P, V2]),
    (86, "link", &[P, P]),
    (87, "unlink", &[P]),
    (88, "symlink", &[P, P]),
    (89, "readlink", &[P, P, V8]),
    (90, "chmod", &[P, V2]),
    (91, "fchmod", &[V4, V2]),
    (92, "chown", &[P, V4, V4]),
    (93, "fchown", &[V4, V4, V4]),
    (94, "lchown", &[P, V4, V4]),
    (95, "umask", &[V4]),
    (96, "gettimeofday", &[P, P]),
    (97, "getrlimit", &[V4, P]),
    (98, "getrusage", &[V4, P]),
    (99, "sysinfo", &[P]),
    (100, "times", &[P]),
    (101, "ptrace", &[V8, V4, P, P]),
    (102, "getuid", &[]),
    (103, "syslog", &[V4, P, V4]),
    (104, "getgid", &[]),
    (105, "setuid", &[V4]),
    (106, "setgid", &[V4]),
    (107, "geteuid", &[]),
    (108, "getegid", &[]),
    (109, "setpgid", &[V4, V4]),
    (110, "getppid", &[]),
    (111, "getpgrp", &[]),
    (112, "setsid", &[]),
    (113, "setreuid", &[V4, V4]),
    (114, "setregid", &[V4, V4]),
    (115, "getgroups", &[V4, P]),
    (116, "setgroups", &[V4, P]),
    (117, "setresuid", &[V4, V4, V4]),
    (118, "getresuid", &[P, P, P]),
    (119, "setresgid", &[V4, V4, V4]),
    (120, "getresgid", &[P, P, P]),
    (121, "getpgid", &[V4]),
    (122, "setfsuid", &[V4]),
    (123, "setfsgid", &[V4]),
    (124, "getsid", &[V4]),
    (125, "capget", &[P, P]),
    (126, "capset", &[P, P]),
    (127, "rt_sigpending", &[P, V8]),
    (128, "rt_sigtimedwait", &[P, P, P, V8]),
    (129, "rt_sigqueueinfo", &[V4, V4, P]),
    (130, "rt_sigsuspend", &[P, V8]),
    (131, "sigaltstack", &[P, P]),
    (132, "utime", &[P, P]),
    (133, "mknod", &[P, V2, V8]),
    (134, "uselib", &[P]),
    (135, "personality", &[V4]),
    (136, "ustat", &[V8, P]),
    (137, "statfs", &[P, P]),
    (138, "fstatfs", &[V4, P]),
    (139, "sysfs", &[V4, V8, V8]),
    (140, "getpriority", &[V4, V4]),
    (141, "setpriority", &[V4, V4, V4]),
    (142, "sched_setparam", &[V4, P]),
    (143, "sched_getparam", &[V4, P]),
    (144, "sched_setscheduler", &[V4, V4, P]),
    (145, "sched_getscheduler", &[V4]),
    (146, "sched_get_priority_max", &[V4]),
    (147, "sched_get_priority_min", &[V4]),
    (148, "sched_rr_get_interval", &[V4, P]),
    (149, "mlock", &[P, V8]),
    (150, "munlock", &[P, V8]),
    (151, "mlockall", &[V4]),
    (152, "munlockall", &[]),
    (153, "vhangup", &[]),
    (154, "modify_ldt", &[V4, P, V8]),
    (155, "pivot_root", &[P, P]),
    (156, "_sysctl", &[P]),
    (157, "prctl", &[V4, V8, V8, V8, V8]),
    (158, "arch_prctl", &[V4, V8]),
    (159, "adjtimex", &[P]),
    (160, "setrlimit", &[V4, P]),
    (161, "chroot", &[P]),
    (162, "sync", &[]),
    (163, "acct", &[P]),
    (164, "settimeofday", &[P, P]),
    (165, "mount", &[P, P, P, V8, P]),
    (166, "umount2", &[P, V4]),
    (167, "swapon", &[P, V4]),
    (168, "swapoff", &[P]),
    (169, "reboot", &[V4, V4, V4, P]),
    (170, "sethostname", &[P, V8]),
    (171, "setdomainname", &[P, V8]),
    (172, "iopl", &[V4]),
    (173, "ioperm", &[V8, V8, V4]),
    (174, "create_module", &[P, V8]),
    (175, "init_module", &[P, V8, P]),
    (176, "delete_module", &[P, V4]),
    (177, "get_kernel_syms", &[P]),
    (178, "query_module", &[P, V4, P, V8, P]),
    (179, "quotactl", &[V4, P, V4, P]),
    (180, "nfsservctl", &[V4, P, P]),
    (181, "getpmsg", &[]),
    (182, "putpmsg", &[]),
    (183, "afs_syscall", &[]),
    (184, "tuxcall", &[]),
    (185, "security", &[]),
    (186, "gettid", &[]),
    (187, "readahead", &[V4, V8, V8]),
    (188, "setxattr", &[P, P, P, V8, V4]),
    (189, "lsetxattr", &[P, P, P, V8, V4]),
    (190, "fsetxattr", &[V4, P, P, V8, V4]),
    (191, "getxattr", &[P, P, P, V8]),
    (192, "lgetxattr", &[P, P, P, V8]),
    (193, "fgetxattr", &[V4, P, P, V8]),
    (194, "listxattr", &[P, P, V8]),
    (195, "llistxattr", &[P, P, V8]),
    (196, "flistxattr", &[V4, P, V8]),
    (197, "removexattr", &[P, P]),
    (198, "lremovexattr", &[P, P]),
    (199, "fremovexattr", &[V4, P]),
    (200, "tkill", &[V4, V4]),
    (201, "time", &[P]),
    (202, "futex", &[P, V4, V4, P, P, V4]),
    (203, "sched_setaffinity", &[V4, V8, P]),
    (204, "sched_getaffinity", &[V4, V8, P]),
    (205, "set_thread_area", &[P]),
    (206, "io_setup", &[V4, P]),
    (207, "io_destroy", &[V8]),
    (208, "io_getevents", &[V8, V8, V8, P, P]),
    (209, "io_submit", &[V8, V8, P]),
    (210, "io_cancel", &[V8, P, P]),
    (211, "get_thread_area", &[P]),
    (212, "lookup_dcookie", &[V8, P, V8]),
    (213, "epoll_create", &[V4]),
    (214, "epoll_ctl_old", &[]),
    (215, "epoll_wait_old", &[]),
    (216, "remap_file_pages", &[P, V8, V8, V8, V4]),
    (217, "getdents64", &[V4, P, V4]),
    (218, "set_tid_address", &[P]),
    (219, "restart_syscall", &[]),
    (220, "semtimedop", &[V4, P, V8, P]),
    (221, "fadvise64", &[V4, V8, V8, V4]),
    (222, "timer_create", &[V4, P, P]),
    (223, "timer_settime", &[V8, V4, P, P]),
    (224, "timer_gettime", &[V8, P]),
    (225, "timer_getoverrun", &[V8]),
    (226, "timer_delete", &[V8]),
    (227, "clock_settime", &[V4, P]),
    (228, "clock_gettime", &[V4, P]),
    (229, "clock_getres", &[V4, P]),
    (230, "clock_nanosleep", &[V4, V4, P, P]),
    (231, "exit_group", &[V4]),
    (232, "epoll_wait", &[V4, P, V4, V4]),
    (233, "epoll_ctl", &[V4, V4, V4, P]),
    (234, "tgkill", &[V4, V4, V4]),
    (235, "utimes", &[P, P]),
    (236, "vserver", &[]),
    (237, "mbind", &[P, V8, V4, P, V8, V4]),
    (238, "set_mempolicy", &[V4, P, V8]),
    (239, "get_mempolicy", &[P, P, V8, V8, V8]),
    (240, "mq_open", &[P, V4, V2, P]),
    (241, "mq_unlink", &[P]),
    (242, "mq_timedsend", &[V4, P, V8, V4, P]),
    (243, "mq_timedreceive", &[V4, P, V8, P, P]),
    (244, "mq_notify", &[V4, P]),
    (245, "mq_getsetattr", &[V4, P, P]),
    (246, "kexec_load", &[V8, V8, P, V8]),
    (247, "waitid", &[V4, V4, P, V4, P]),
    (248, "add_key", &[P, P, P, V8, V4]),
    (249, "request_key", &[P, P, P, V4]),
    (250, "keyctl", &[V4, V8, V8, V8, V8]),
    (251, "ioprio_set", &[V4, V4, V4]),
    (252, "ioprio_get", &[V4, V4]),
    (253, "inotify_init", &[]),
    (254, "inotify_add_watch", &[V4, P, V4]),
    (255, "inotify_rm_watch", &[V4, V4]),
    (256, "migrate_pages", &[V4, V8, P, P]),
    (257, "openat", &[V4, P, V4, V2]),
    (258, "mkdirat", &[V4, P, V2]),
    (259, "mknodat", &[V4, P, V2, V8]),
    (260, "fchownat", &[V4, P, V4, V4, V4]),
    (261, "futimesat", &[V4, P, P]),
    (262, "newfstatat", &[V4, P, P, V4]),
    (263, "unlinkat", &[V4, P, V4]),
    (264, "renameat", &[V4, P, V4, P]),
    (265, "linkat", &[V4, P, V4, P, V4]),
    (266, "symlinkat", &[P, V4, P]),
    (267, "readlinkat", &[V4, P, P, V8]),
    (268, "fchmodat", &[V4, P, V2]),
    (269, "faccessat", &[V4, P, V4]),
    (270, "pselect6", &[V4, P, P, P, P, P]),
    (271, "ppoll", &[P, V4, P, P, V8]),
    (272, "unshare", &[V4]),
    (273, "set_robust_list", &[P, V8]),
    (274, "get_robust_list", &[V4, P, P]),
    (275, "splice", &[V4, P, V4, P, V8, V4]),
    (276, "tee", &[V4, V4, V8, V4]),
    (277, "sync_file_range", &[V4, V8, V8, V4]),
    (278, "vmsplice", &[V4, P, V8, V4]),
    (279, "move_pages", &[V4, V8, P, P, P, V4]),
    (280, "utimensat", &[V4, P, P, V4]),
    (281, "epoll_pwait", &[V4, P, V4, V4, P, V8]),
    (282, "signalfd", &[V4, P, V8]),
    (283, "timerfd_create", &[V4, V4]),
    (284, "eventfd", &[V4]),
    (285, "fallocate", &[V4, V4, V8, V8]),
    (286, "timerfd_settime", &[V4, V4, P, P]),
    (287, "timerfd_gettime", &[V4, P]),
    (288, "accept4", &[V4, P, P, V4]),
    (289, "signalfd4", &[V4, P, V8, V4]),
    (290, "eventfd2", &[V4, V4]),
    (291, "epoll_create1", &[V4]),
    (292, "dup3", &[V4, V4, V4]),
    (293, "pipe2", &[P, V4]),
    (294, "inotify_init1", &[V4]),
    (295, "preadv", &[V4, P, V8, V8, V8]),
    (296, "pwritev", &[V4, P, V8, V8, V8]),
    (297, "rt_tgsigqueueinfo", &[V4, V4, V4, P]),
    (298, "perf_event_open", &[P, V4, V4, V4, V8]),
    (299, "recvmmsg", &[V4, P, V4, V4, P]),
    (300, "fanotify_init", &[V4, V4]),
    (301, "fanotify_mark", &[V4, V4, V8, V4, P]),
    (302, "prlimit64", &[V4, V4, P, P]),
    (303, "name_to_handle_at", &[V4, P, P, P, V4]),
    (304, "open_by_handle_at", &[V4, P, V4]),
    (305, "clock_adjtime", &[V4, P]),
    (306, "syncfs", &[V4]),
    (307, "sendmmsg", &[V4, P, V4, V4]),
    (308, "setns", &[V4, V4]),
    (309, "getcpu", &[P, P, P]),
    (310, "process_vm_readv", &[V4, P, V8, P, V8, V8]),
    (311, "process_vm_writev", &[V4, P, V8, P, V8, V8]),
    (312, "kcmp", &[V4, V4, V4, V8, V8]),
    (313, "finit_module", &[V4, P, V4]),
    (314, "sched_setattr", &[V4, P, V4]),
    (315, "sched_getattr", &[V4, P, V4, V4]),
    (316, "renameat2", &[V4, P, V4, P, V4]),
    (317, "seccomp", &[V4, V4, P]),
    (318, "getrandom", &[P, V8, V4]),
    (319, "memfd_create", &[P, V4]),
    (320, "kexec_file_load", &[V4, V4, V8, P, V8]),
    (321, "bpf", &[V4, P, V4]),
    (322, "execveat", &[V4, P, P, P, V4]),
    (323, "userfaultfd", &[V4]),
    (324, "membarrier", &[V4, V4]),
    (325, "mlock2", &[P, V8, V4]),
    (326, "copy_file_range", &[V4, P, V4, P, V8, V4]),
    (327, "preadv2", &[V4, P, V8, V8, V8, V4]),
    (328, "pwritev2", &[V4, P, V8, V8, V8, V4]),
    (329, "pkey_mprotect", &[P, V8, V4, V4]),
    (330, "pkey_alloc", &[V4, V4]),
    (331, "pkey_free", &[V4]),
    (332, "statx", &[V4, P, V4, V4, P]),
    (333, "io_pgetevents", &[V8, V8, V8, P, P, P]),
    (334, "rseq", &[P, V4, V4, V4]),
    (424, "pidfd_send_signal", &[V4, V4, P, V4]),
    (425, "io_uring_setup", &[V4, P]),
    (426, "io_uring_enter", &[V4, V4, V4, V4, P, V8]),
    (427, "io_uring_register", &[V4, V4, P, V4]),
    (428, "open_tree", &[V4, P, V4]),
    (429, "move_mount", &[V4, P, V4, P, V4]),
    (430, "fsopen", &[P, V4]),
    (431, "fsconfig", &[V4, V4, P, P, V4]),
    (432, "fsmount", &[V4, V4, V4]),
    (433, "fspick", &[V4, P, V4]),
    (434, "pidfd_open", &[V4, V4]),
    (435, "clone3", &[P, V8]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_paper_count() {
        let t = SyscallTable::linux_x86_64();
        assert_eq!(t.len(), SYSCALL_COUNT);
        assert_eq!(t.len(), 403);
        assert!(!t.is_empty());
        assert_eq!(t.capacity(), TABLE_CAPACITY);
    }

    #[test]
    fn native_numbers_are_unique_and_in_range() {
        let mut seen = std::collections::HashSet::new();
        for &(nr, name, _) in NATIVE_ENTRIES {
            assert!(seen.insert(nr), "duplicate syscall number {nr} ({name})");
            assert!((nr as usize) < TABLE_CAPACITY);
        }
        assert_eq!(seen.len() + COMPAT_RANGE.count(), SYSCALL_COUNT);
    }

    #[test]
    fn well_known_entries_resolve() {
        let t = SyscallTable::shared();
        for (name, nr, nargs) in [
            ("read", 0, 3),
            ("write", 1, 3),
            ("close", 3, 1),
            ("mmap", 9, 6),
            ("clone", 56, 5),
            ("personality", 135, 1),
            ("futex", 202, 6),
            ("exit_group", 231, 1),
            ("openat", 257, 4),
            ("accept4", 288, 4),
            ("clone3", 435, 2),
        ] {
            let d = t.by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(d.id(), SyscallId::new(nr), "{name}");
            assert_eq!(d.arg_count(), nargs, "{name} arg count");
            assert_eq!(t.get(SyscallId::new(nr)).unwrap().name(), name);
        }
    }

    #[test]
    fn pointer_args_excluded_from_bitmask() {
        let t = SyscallTable::shared();
        let read = t.by_name("read").unwrap();
        // read(fd, buf, count): 3 declared args, 2 checkable.
        assert_eq!(read.arg_count(), 3);
        assert_eq!(read.checked_arg_count(), 2);
        assert!(read.bitmask().selects(0, 0));
        assert!(!read.bitmask().selects(1, 0), "buf pointer unchecked");
        assert!(read.bitmask().selects(2, 0));
    }

    #[test]
    fn zero_arg_syscalls_have_empty_bitmask() {
        let t = SyscallTable::shared();
        for name in ["getpid", "sched_yield", "fork", "gettid"] {
            let d = t.by_name(name).unwrap();
            assert!(d.bitmask().is_empty(), "{name}");
            assert_eq!(d.checked_arg_count(), 0, "{name}");
        }
    }

    #[test]
    fn unknown_lookups_fail_typed() {
        let t = SyscallTable::shared();
        assert!(t.get(SyscallId::new(400)).is_none());
        assert_eq!(
            t.resolve(SyscallId::new(9999)),
            Err(SyscallError::UnknownId(SyscallId::new(9999)))
        );
        assert!(matches!(
            t.resolve_name("not_a_syscall"),
            Err(SyscallError::UnknownName(_))
        ));
    }

    #[test]
    fn compat_entries_are_marked() {
        let t = SyscallTable::shared();
        let c = t.get(SyscallId::new(340)).expect("compat_340");
        assert_eq!(c.origin(), Origin::Compat);
        assert_eq!(c.name(), "compat_340");
        assert_eq!(c.arg_count(), 0);
        let native = t.by_name("openat").unwrap();
        assert_eq!(native.origin(), Origin::Native);
    }

    #[test]
    fn arg_count_distribution_sums_to_table_len() {
        let t = SyscallTable::shared();
        let dist = t.arg_count_distribution();
        assert_eq!(dist.iter().sum::<usize>(), t.len());
        // Most Linux syscalls check at least one argument.
        assert!(dist[0] < t.len() / 2);
        // 6-checkable-arg calls exist (e.g. sendto after pointer removal is
        // 4; process_vm_readv has 5... mbind checks 4) but are rare.
        assert!(dist[6] <= dist[1] + dist[2] + dist[3]);
    }

    #[test]
    fn display_and_debug() {
        let t = SyscallTable::shared();
        let d = t.by_name("read").unwrap();
        assert_eq!(d.to_string(), "read(0)");
        assert!(format!("{t:?}").contains("403"));
    }

    #[test]
    fn shared_is_singleton() {
        let a = SyscallTable::shared() as *const _;
        let b = SyscallTable::shared() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn iter_is_numeric_order() {
        let t = SyscallTable::shared();
        let ids: Vec<u16> = t.iter().map(|d| d.id().as_u16()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
        assert_eq!(ids.len(), SYSCALL_COUNT);
    }

    #[test]
    fn default_equals_linux() {
        assert_eq!(SyscallTable::default().len(), SYSCALL_COUNT);
    }

    #[test]
    fn hypercall_table_is_a_separate_interface() {
        let t = SyscallTable::kvm_hypercalls();
        assert_eq!(t.len(), 6);
        assert_eq!(t.capacity(), 16);
        let ipi = t.by_name("kvm_hc_send_ipi").unwrap();
        assert_eq!(ipi.id(), SyscallId::new(10));
        assert_eq!(ipi.checked_arg_count(), 4);
        assert!(t.get(SyscallId::new(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate number")]
    fn from_entries_rejects_duplicates() {
        let _ = SyscallTable::from_entries(&[(1, "a", &[]), (1, "b", &[])], 4);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn from_entries_rejects_overflow() {
        let _ = SyscallTable::from_entries(&[(9, "a", &[])], 4);
    }
}
