//! System call identifiers.

use core::fmt;

/// A Linux x86-64 system call number (the value a process places in `rax`
/// before executing `syscall`).
///
/// `SyscallId` is a thin newtype over `u16`; the paper calls this the *SID*.
/// It is deliberately small and `Copy` because every table in Draco (SPT,
/// SLB, STB, VAT) is indexed or tagged by it.
///
/// # Example
///
/// ```
/// use draco_syscalls::SyscallId;
///
/// let read = SyscallId::new(0);
/// assert_eq!(read.as_u16(), 0);
/// assert_eq!(format!("{read}"), "sid:0");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SyscallId(u16);

impl SyscallId {
    /// Creates an identifier from a raw system call number.
    ///
    /// No range validation is performed here; validation against a concrete
    /// kernel interface happens in [`crate::table::SyscallTable::get`].
    pub const fn new(raw: u16) -> Self {
        SyscallId(raw)
    }

    /// Returns the raw system call number.
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// Returns the raw number widened to `usize`, convenient for indexing
    /// SPT-style direct-mapped tables.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for SyscallId {
    fn from(raw: u16) -> Self {
        SyscallId::new(raw)
    }
}

impl From<SyscallId> for u16 {
    fn from(id: SyscallId) -> Self {
        id.as_u16()
    }
}

impl From<SyscallId> for u64 {
    fn from(id: SyscallId) -> Self {
        u64::from(id.as_u16())
    }
}

impl fmt::Display for SyscallId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sid:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_raw_value() {
        let id = SyscallId::new(231);
        assert_eq!(id.as_u16(), 231);
        assert_eq!(id.index(), 231);
        assert_eq!(u16::from(id), 231);
        assert_eq!(u64::from(id), 231);
        assert_eq!(SyscallId::from(231u16), id);
    }

    #[test]
    fn orders_by_number() {
        assert!(SyscallId::new(1) < SyscallId::new(2));
        assert_eq!(SyscallId::default(), SyscallId::new(0));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(SyscallId::new(57).to_string(), "sid:57");
    }
}
