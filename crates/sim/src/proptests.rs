//! Cross-structure property tests for the hardware model.

#![cfg(test)]

use proptest::prelude::*;

use draco_syscalls::{ArgSet, SyscallId};

use crate::cache::{Cache, CacheConfig};
use crate::slb::{Slb, SlbEntry};
use crate::stb::{Stb, StbEntry};
use crate::tempbuf::TemporaryBuffer;
use crate::tlb::Tlb;

fn arb_entry() -> impl Strategy<Value = SlbEntry> {
    (0u16..64, any::<u64>(), 0u64..16).prop_map(|(nr, hash, a0)| SlbEntry {
        sid: SyscallId::new(nr),
        hash,
        way: if hash & 1 == 0 {
            draco_cuckoo::Way::H1
        } else {
            draco_cuckoo::Way::H2
        },
        args: ArgSet::from_slice(&[a0]),
    })
}

proptest! {
    /// An SLB access hit always returns exactly the most recent entry
    /// inserted for that `(sid, args)` pair.
    #[test]
    fn slb_returns_latest_insert(entries in proptest::collection::vec(arb_entry(), 1..64)) {
        let mut slb = Slb::new(crate::SimConfig::table_ii().slb);
        let mut latest = std::collections::HashMap::new();
        for e in &entries {
            slb.insert(1, *e);
            latest.insert((e.sid, e.args), *e);
        }
        for ((sid, args), want) in &latest {
            if let Some(hit) = slb.access(1, *sid, args) {
                prop_assert_eq!(hit, *want);
            }
        }
    }

    /// Whatever the probe sequence, SLB occupancy never exceeds the sum
    /// of subtable capacities, and invalidation always zeroes it.
    #[test]
    fn slb_occupancy_bounded(entries in proptest::collection::vec(arb_entry(), 0..256)) {
        let config = crate::SimConfig::table_ii();
        let cap: usize = (1..=6).map(|n| config.slb_for(n).entries).sum();
        let mut slb = Slb::new(config.slb);
        for (i, e) in entries.iter().enumerate() {
            slb.insert(i % 6 + 1, *e);
            prop_assert!(slb.occupancy() <= cap);
        }
        slb.invalidate_all();
        prop_assert_eq!(slb.occupancy(), 0);
    }

    /// The STB never aliases: a hit's entry always carries the probed PC.
    #[test]
    fn stb_hits_match_pc(pcs in proptest::collection::vec(0u64..4096, 1..128)) {
        let mut stb = Stb::new(64, 2);
        for &pc in &pcs {
            stb.update(StbEntry {
                pc,
                sid: SyscallId::new((pc % 400) as u16),
                hash: pc.wrapping_mul(31),
                way: draco_cuckoo::Way::H1,
            });
            if let Some(hit) = stb.lookup(pc) {
                prop_assert_eq!(hit.pc, pc);
                prop_assert_eq!(hit.hash, pc.wrapping_mul(31));
            }
        }
    }

    /// Cache: an address accessed twice in a row always hits the second
    /// time, at L1 latency.
    #[test]
    fn cache_immediate_rereference_hits(addrs in proptest::collection::vec(any::<u32>(), 1..64)) {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 4096,
            ways: 4,
            line_bytes: 64,
            latency_cycles: 2,
        });
        for &a in &addrs {
            cache.access(u64::from(a));
            prop_assert!(cache.access(u64::from(a)));
        }
    }

    /// TLB: hit/miss counters always sum to the number of accesses.
    #[test]
    fn tlb_counters_conserve(addrs in proptest::collection::vec(any::<u32>(), 0..128)) {
        let mut tlb = Tlb::new(8);
        for &a in &addrs {
            tlb.access(u64::from(a));
        }
        let (h, m) = tlb.stats();
        prop_assert_eq!(h + m, addrs.len() as u64);
    }

    /// Temporary buffer: a staged entry is either retrievable exactly
    /// once or has been displaced by capacity — never duplicated.
    #[test]
    fn tempbuf_no_duplication(entries in proptest::collection::vec(arb_entry(), 1..32)) {
        let mut tb = TemporaryBuffer::new(8);
        for e in &entries {
            tb.stage(1, *e);
        }
        for e in &entries {
            let first = tb.take_matching(1, e.sid, &e.args);
            if first.is_some() {
                // Taking again must not find the same staged entry
                // unless it was staged multiple times.
                let duplicates = entries
                    .iter()
                    .filter(|x| x.sid == e.sid && x.args == e.args)
                    .count();
                if duplicates == 1 {
                    prop_assert!(tb.take_matching(1, e.sid, &e.args).is_none());
                }
            }
        }
        tb.squash();
        prop_assert!(tb.is_empty());
    }
}
