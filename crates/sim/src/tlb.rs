//! A small fully-associative TLB for VAT address translation.
//!
//! The paper notes that VAT accesses enjoy good TLB locality because a
//! process's VAT is only a few kilobytes (§VII-A); this model lets the
//! simulator charge page-walk latency honestly instead of assuming it.

use core::fmt;

const PAGE_SHIFT: u32 = 12; // 4 KB pages

/// A fully-associative, LRU TLB.
#[derive(Clone)]
pub struct Tlb {
    entries: usize,
    /// LRU-ordered page numbers (front = MRU).
    pages: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "TLB needs at least one entry");
        Tlb {
            entries,
            pages: Vec::with_capacity(entries),
            hits: 0,
            misses: 0,
        }
    }

    /// Translates `vaddr`; returns true on a TLB hit.
    pub fn access(&mut self, vaddr: u64) -> bool {
        let page = vaddr >> PAGE_SHIFT;
        if let Some(pos) = self.pages.iter().position(|&p| p == page) {
            let p = self.pages.remove(pos);
            self.pages.insert(0, p);
            self.hits += 1;
            true
        } else {
            self.pages.insert(0, page);
            if self.pages.len() > self.entries {
                self.pages.pop();
            }
            self.misses += 1;
            false
        }
    }

    /// Invalidates all translations (context switch).
    pub fn flush(&mut self) {
        self.pages.clear();
    }

    /// `(hits, misses)` counters.
    pub const fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

impl fmt::Debug for Tlb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tlb({} entries, {} hits, {} misses)",
            self.entries, self.hits, self.misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(4);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1fff), "same 4K page");
        assert!(!t.access(0x2000), "next page");
        assert_eq!(t.stats(), (1, 2));
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.access(0x1000);
        t.access(0x2000);
        t.access(0x1000); // MRU
        t.access(0x3000); // evicts 0x2000
        assert!(t.access(0x1000));
        assert!(!t.access(0x2000));
    }

    #[test]
    fn flush_clears() {
        let mut t = Tlb::new(4);
        t.access(0x1000);
        t.flush();
        assert!(!t.access(0x1000));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = Tlb::new(0);
    }
}
