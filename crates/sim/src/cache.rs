//! Set-associative cache models and the three-level hierarchy.
//!
//! Only the Draco-relevant traffic flows through this model: VAT line
//! fetches and the kernel's table updates. Application memory behaviour
//! is already folded into the trace's compute time, which is how the
//! paper's own normalized figures treat it.

use core::fmt;

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Hit latency in cycles.
    pub latency_cycles: u64,
}

/// Where an access was served from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Hit in L1.
    L1,
    /// Hit in L2.
    L2,
    /// Hit in L3.
    L3,
    /// Missed everywhere; served by DRAM.
    Memory,
}

/// One set-associative, write-back, LRU cache level.
#[derive(Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: usize,
    /// `tags[set]` is an LRU-ordered list (front = MRU) of line tags.
    tags: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache level.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent.
    pub fn new(config: CacheConfig) -> Self {
        let lines = config.size_bytes / config.line_bytes;
        assert!(lines >= config.ways, "cache smaller than one set");
        assert!(
            lines.is_multiple_of(config.ways),
            "lines must divide evenly into ways"
        );
        let sets = lines / config.ways;
        Cache {
            config,
            sets,
            tags: vec![Vec::with_capacity(config.ways); sets],
            hits: 0,
            misses: 0,
        }
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes as u64;
        ((line % self.sets as u64) as usize, line / self.sets as u64)
    }

    /// Looks up (and on miss, fills) the line containing `addr`.
    /// Returns true on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let ways = &mut self.tags[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            let t = ways.remove(pos);
            ways.insert(0, t);
            self.hits += 1;
            true
        } else {
            ways.insert(0, tag);
            if ways.len() > self.config.ways {
                ways.pop();
            }
            self.misses += 1;
            false
        }
    }

    /// Invalidates every line.
    pub fn flush(&mut self) {
        for set in &mut self.tags {
            set.clear();
        }
    }

    /// `(hits, misses)` counters.
    pub const fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// The configured hit latency.
    pub const fn latency(&self) -> u64 {
        self.config.latency_cycles
    }
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cache({}B/{}w, {} hits, {} misses)",
            self.config.size_bytes, self.config.ways, self.hits, self.misses
        )
    }
}

/// The L1/L2/L3 + DRAM hierarchy a VAT access walks.
#[derive(Clone, Debug)]
pub struct CacheHierarchy {
    l1: Cache,
    l2: Cache,
    l3: Cache,
    dram_cycles: u64,
}

impl CacheHierarchy {
    /// Builds the hierarchy from per-level configs.
    pub fn new(l1: CacheConfig, l2: CacheConfig, l3: CacheConfig, dram_cycles: u64) -> Self {
        CacheHierarchy {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            l3: Cache::new(l3),
            dram_cycles,
        }
    }

    /// Accesses `addr`, filling lines inclusively on the way back.
    /// Returns the serving level and total latency in cycles.
    pub fn access(&mut self, addr: u64) -> (AccessOutcome, u64) {
        if self.l1.access(addr) {
            return (AccessOutcome::L1, self.l1.latency());
        }
        if self.l2.access(addr) {
            return (AccessOutcome::L2, self.l1.latency() + self.l2.latency());
        }
        if self.l3.access(addr) {
            return (
                AccessOutcome::L3,
                self.l1.latency() + self.l2.latency() + self.l3.latency(),
            );
        }
        (
            AccessOutcome::Memory,
            self.l1.latency() + self.l2.latency() + self.l3.latency() + self.dram_cycles,
        )
    }

    /// Invalidates all levels (used by failure-injection tests).
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.l3.flush();
    }

    /// Per-level `(hits, misses)`.
    pub fn stats(&self) -> [(u64, u64); 3] {
        [self.l1.stats(), self.l2.stats(), self.l3.stats()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
            latency_cycles: 2,
        }
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = Cache::new(small());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1038), "same 64B line");
        assert_eq!(c.stats(), (2, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = Cache::new(small()); // 8 sets, 2 ways
        // Three lines mapping to the same set (stride = sets*line = 512B).
        let a = 0x0;
        let b = 0x200;
        let d = 0x400;
        c.access(a);
        c.access(b);
        c.access(a); // a is MRU
        c.access(d); // evicts b
        assert!(c.access(a));
        assert!(!c.access(b), "b was evicted");
    }

    #[test]
    fn flush_empties() {
        let mut c = Cache::new(small());
        c.access(0x40);
        c.flush();
        assert!(!c.access(0x40));
    }

    #[test]
    #[should_panic(expected = "smaller than one set")]
    fn degenerate_geometry_rejected() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 64,
            ways: 2,
            line_bytes: 64,
            latency_cycles: 1,
        });
    }

    #[test]
    fn hierarchy_latencies_accumulate() {
        let cfg = crate::SimConfig::table_ii();
        let mut h = CacheHierarchy::new(cfg.l1, cfg.l2, cfg.l3, cfg.dram_cycles);
        let (lvl, lat) = h.access(0x9000);
        assert_eq!(lvl, AccessOutcome::Memory);
        assert_eq!(lat, 2 + 8 + 32 + 120);
        let (lvl, lat) = h.access(0x9000);
        assert_eq!(lvl, AccessOutcome::L1);
        assert_eq!(lat, 2);
    }

    #[test]
    fn hierarchy_fills_inclusively() {
        let cfg = crate::SimConfig::table_ii();
        let mut h = CacheHierarchy::new(cfg.l1, cfg.l2, cfg.l3, cfg.dram_cycles);
        h.access(0xa000);
        // Evict from L1 by touching many conflicting lines; L2 still has it.
        for i in 0..1024u64 {
            h.access(0x10_0000 + i * 64 * 64); // same L1 set stride-ish
        }
        let (lvl, _) = h.access(0xa000);
        assert_ne!(lvl, AccessOutcome::Memory, "L2/L3 retain the line");
    }

    #[test]
    fn debug_output() {
        let c = Cache::new(small());
        assert!(format!("{c:?}").contains("1024B"));
    }
}
