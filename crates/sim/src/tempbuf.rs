//! The speculation-safe temporary buffer (paper §IX).
//!
//! Preloaded VAT entries must leave no architectural trace until the
//! `syscall` instruction is guaranteed to commit: "if an SLB preload
//! request misses, the requested VAT entry is not immediately loaded into
//! the SLB; instead, it is stored in a Temporary Buffer. When the
//! non-speculative SLB access is performed, the entry is moved into the
//! SLB. If, instead, the system call instruction is squashed, the
//! temporary buffer is cleared."

use core::fmt;

use draco_syscalls::{ArgSet, SyscallId};

use crate::slb::SlbEntry;

/// The temporary buffer: a small FIFO of preloaded-but-uncommitted SLB
/// entries.
#[derive(Clone)]
pub struct TemporaryBuffer {
    capacity: usize,
    entries: Vec<(usize, SlbEntry)>, // (arg_count, entry)
    staged: u64,
    commits: u64,
    squashes: u64,
}

impl TemporaryBuffer {
    /// Creates a buffer with `capacity` slots (8 in the paper's design).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        TemporaryBuffer {
            capacity,
            entries: Vec::with_capacity(capacity),
            staged: 0,
            commits: 0,
            squashes: 0,
        }
    }

    /// Stages a preloaded entry. If full, the oldest staged entry is
    /// dropped (it was speculative anyway).
    pub fn stage(&mut self, arg_count: usize, entry: SlbEntry) {
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((arg_count, entry));
        self.staged = self.staged.saturating_add(1);
    }

    /// At commit: removes and returns the staged entry matching the
    /// syscall, if any. Matching is by SID and argument set (the
    /// non-speculative access knows the real arguments).
    pub fn take_matching(
        &mut self,
        arg_count: usize,
        sid: SyscallId,
        args: &ArgSet,
    ) -> Option<SlbEntry> {
        let pos = self
            .entries
            .iter()
            .position(|(ac, e)| *ac == arg_count && e.sid == sid && e.args == *args)?;
        self.commits = self.commits.saturating_add(1);
        Some(self.entries.remove(pos).1)
    }

    /// Removes and returns any staged entry for the SID (commit path for
    /// mispredicted argument sets: the stale preload is discarded).
    pub fn take_any_for(&mut self, sid: SyscallId) -> Option<(usize, SlbEntry)> {
        let pos = self.entries.iter().position(|(_, e)| e.sid == sid)?;
        Some(self.entries.remove(pos))
    }

    /// Squash: clears every staged entry.
    pub fn squash(&mut self) {
        self.entries.clear();
        self.squashes = self.squashes.saturating_add(1);
    }

    /// `(staged, commits, squashes)` lifetime counters: entries ever
    /// staged, staged entries promoted into the SLB at commit, and
    /// squash events.
    pub const fn counters(&self) -> (u64, u64, u64) {
        (self.staged, self.commits, self.squashes)
    }

    /// Staged entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Capacity.
    pub const fn capacity(&self) -> usize {
        self.capacity
    }
}

impl fmt::Debug for TemporaryBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TemporaryBuffer({}/{})", self.entries.len(), self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use draco_cuckoo::Way;

    fn entry(nr: u16, a0: u64) -> SlbEntry {
        SlbEntry {
            sid: SyscallId::new(nr),
            hash: u64::from(nr) ^ a0,
            way: Way::H1,
            args: ArgSet::from_slice(&[a0]),
        }
    }

    #[test]
    fn stage_and_take() {
        let mut tb = TemporaryBuffer::new(8);
        tb.stage(1, entry(0, 7));
        assert_eq!(tb.len(), 1);
        let taken = tb
            .take_matching(1, SyscallId::new(0), &ArgSet::from_slice(&[7]))
            .expect("staged");
        assert_eq!(taken.args, ArgSet::from_slice(&[7]));
        assert!(tb.is_empty());
    }

    #[test]
    fn take_requires_full_match() {
        let mut tb = TemporaryBuffer::new(8);
        tb.stage(1, entry(0, 7));
        assert!(tb
            .take_matching(1, SyscallId::new(0), &ArgSet::from_slice(&[8]))
            .is_none());
        assert!(tb
            .take_matching(2, SyscallId::new(0), &ArgSet::from_slice(&[7]))
            .is_none());
        assert_eq!(tb.len(), 1);
        // But take_any_for the SID succeeds (stale-preload discard).
        assert!(tb.take_any_for(SyscallId::new(0)).is_some());
        assert!(tb.is_empty());
    }

    #[test]
    fn squash_clears_everything() {
        let mut tb = TemporaryBuffer::new(8);
        tb.stage(1, entry(0, 1));
        tb.stage(2, entry(1, 2));
        tb.squash();
        assert!(tb.is_empty());
    }

    #[test]
    fn capacity_drops_oldest() {
        let mut tb = TemporaryBuffer::new(2);
        tb.stage(1, entry(0, 1));
        tb.stage(1, entry(1, 2));
        tb.stage(1, entry(2, 3));
        assert_eq!(tb.len(), 2);
        assert!(tb
            .take_matching(1, SyscallId::new(0), &ArgSet::from_slice(&[1]))
            .is_none());
        assert!(tb
            .take_matching(1, SyscallId::new(2), &ArgSet::from_slice(&[3]))
            .is_some());
        assert_eq!(tb.capacity(), 2);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = TemporaryBuffer::new(0);
    }

    #[test]
    fn counters_track_lifetime_traffic() {
        let mut tb = TemporaryBuffer::new(4);
        tb.stage(1, entry(0, 1));
        tb.stage(1, entry(1, 2));
        tb.take_matching(1, SyscallId::new(0), &ArgSet::from_slice(&[1]));
        tb.squash();
        tb.stage(1, entry(2, 3));
        tb.squash();
        assert_eq!(tb.counters(), (3, 1, 2));
    }
}
