//! Area, timing, and energy of the Draco hardware (paper Table III).
//!
//! The paper synthesizes the structures with CACTI 7 and the Synopsys
//! Design Compiler at 22 nm. Physical synthesis is outside a software
//! reproduction's reach, so this module carries the published constants
//! (substitution documented in `DESIGN.md` §2) and derives per-run energy
//! estimates from the simulator's access counts.

use core::fmt;

use crate::core_engine::HwAccesses;

/// One hardware unit's physical characteristics (Table III, 22 nm).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UnitCosts {
    /// Unit name.
    pub name: &'static str,
    /// Area in mm².
    pub area_mm2: f64,
    /// Access time in picoseconds.
    pub access_ps: f64,
    /// Dynamic read energy in picojoules.
    pub dyn_read_pj: f64,
    /// Leakage power in milliwatts.
    pub leak_mw: f64,
}

/// The SPT row of Table III.
pub const SPT: UnitCosts = UnitCosts {
    name: "SPT",
    area_mm2: 0.0036,
    access_ps: 105.41,
    dyn_read_pj: 1.32,
    leak_mw: 1.39,
};

/// The STB row of Table III.
pub const STB: UnitCosts = UnitCosts {
    name: "STB",
    area_mm2: 0.0063,
    access_ps: 131.61,
    dyn_read_pj: 1.78,
    leak_mw: 2.63,
};

/// The SLB row of Table III (all subtables plus the temporary buffer).
pub const SLB: UnitCosts = UnitCosts {
    name: "SLB",
    area_mm2: 0.01549,
    access_ps: 112.75,
    dyn_read_pj: 2.69,
    leak_mw: 3.96,
};

/// The CRC hash generator row of Table III (LFSR design).
pub const CRC_HASH: UnitCosts = UnitCosts {
    name: "CRC Hash",
    area_mm2: 0.0019,
    access_ps: 964.0,
    dyn_read_pj: 0.98,
    leak_mw: 0.106,
};

/// All four rows in paper order.
pub const ALL_UNITS: [UnitCosts; 4] = [SPT, STB, SLB, CRC_HASH];

/// Total per-core Draco area.
pub fn total_area_mm2() -> f64 {
    ALL_UNITS.iter().map(|u| u.area_mm2).sum()
}

/// Total per-core Draco leakage.
pub fn total_leakage_mw() -> f64 {
    ALL_UNITS.iter().map(|u| u.leak_mw).sum()
}

/// An energy estimate for one simulated run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyEstimate {
    /// Dynamic energy in microjoules.
    pub dynamic_uj: f64,
    /// Leakage energy in microjoules over the run's wall time.
    pub leakage_uj: f64,
}

impl EnergyEstimate {
    /// Total energy.
    pub fn total_uj(&self) -> f64 {
        self.dynamic_uj + self.leakage_uj
    }
}

impl fmt::Display for EnergyEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} uJ dynamic + {:.3} uJ leakage",
            self.dynamic_uj, self.leakage_uj
        )
    }
}

/// Estimates the Draco energy of a run from its structure access counts
/// and duration.
pub fn estimate(accesses: &HwAccesses, run_seconds: f64) -> EnergyEstimate {
    let dynamic_pj = accesses.spt as f64 * SPT.dyn_read_pj
        + accesses.stb as f64 * STB.dyn_read_pj
        + accesses.slb as f64 * SLB.dyn_read_pj
        + accesses.crc as f64 * CRC_HASH.dyn_read_pj;
    let leakage_mj = total_leakage_mw() * run_seconds; // mW × s = mJ
    EnergyEstimate {
        dynamic_uj: dynamic_pj / 1e6,
        leakage_uj: leakage_mj * 1e3,
    }
}

/// Cycles needed to access a unit at a given frequency — the paper
/// conservatively uses 2 cycles for the SRAM structures (all < 150 ps)
/// and 3 cycles for the 964 ps CRC at 2 GHz.
pub fn cycles_at(unit: &UnitCosts, freq_ghz: f64) -> u64 {
    let cycle_ps = 1000.0 / freq_ghz;
    (unit.access_ps / cycle_ps).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_values() {
        assert_eq!(SPT.area_mm2, 0.0036);
        assert_eq!(STB.access_ps, 131.61);
        assert_eq!(SLB.dyn_read_pj, 2.69);
        assert_eq!(CRC_HASH.leak_mw, 0.106);
    }

    #[test]
    fn totals_accumulate() {
        assert!((total_area_mm2() - 0.02729).abs() < 1e-9);
        assert!((total_leakage_mw() - 8.086).abs() < 1e-9);
    }

    #[test]
    fn paper_cycle_counts_hold_at_2ghz() {
        // "Since all the structures are accessed in less than 150 ps, we
        // conservatively use a 2-cycle access time … 964 ps … 3 cycles."
        assert!(cycles_at(&SPT, 2.0) <= 2);
        assert!(cycles_at(&STB, 2.0) <= 2);
        assert!(cycles_at(&SLB, 2.0) <= 2);
        assert_eq!(cycles_at(&CRC_HASH, 2.0), 2); // raw ceil
        // The paper pads CRC to 3 cycles; our SimConfig does the same.
        assert_eq!(crate::SimConfig::table_ii().crc_cycles, 3);
    }

    #[test]
    fn energy_estimate_scales_with_accesses() {
        let few = estimate(
            &HwAccesses {
                stb: 10,
                spt: 10,
                slb: 10,
                crc: 1,
            },
            0.001,
        );
        let many = estimate(
            &HwAccesses {
                stb: 1000,
                spt: 1000,
                slb: 1000,
                crc: 100,
            },
            0.001,
        );
        assert!(many.dynamic_uj > few.dynamic_uj * 50.0);
        assert_eq!(many.leakage_uj, few.leakage_uj, "same duration");
        assert!(many.total_uj() > many.dynamic_uj);
        assert!(few.to_string().contains("uJ"));
    }
}
