//! The System Call Lookaside Buffer (paper §VI-A, Fig. 6).

use core::fmt;

use draco_cuckoo::Way;
use draco_syscalls::{ArgSet, SyscallId};

use crate::config::SlbConfig;

/// One SLB entry: `SID | Valid | Hash | Arg1..ArgN` (paper Fig. 6), plus
/// the way the hash came from so STB refills stay exact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlbEntry {
    /// System call ID.
    pub sid: SyscallId,
    /// The VAT hash value that fetched this argument set.
    pub hash: u64,
    /// Which hash function produced [`SlbEntry::hash`].
    pub way: Way,
    /// The validated (masked) argument set.
    pub args: ArgSet,
}

/// One set-associative subtable (all system calls with the same argument
/// count share one — paper: "the SLB has a set-associative sub-structure
/// for each group of system calls that take the same number of
/// arguments").
#[derive(Clone)]
struct Subtable {
    sets: usize,
    ways: usize,
    /// `entries[set]` is LRU-ordered, front = MRU.
    entries: Vec<Vec<SlbEntry>>,
}

impl Subtable {
    fn new(config: SlbConfig) -> Self {
        let sets = (config.entries / config.ways).max(1);
        Subtable {
            sets,
            ways: config.ways,
            entries: vec![Vec::new(); sets],
        }
    }

    fn set_for(&self, sid: SyscallId) -> usize {
        sid.index() % self.sets
    }

    fn access(&mut self, sid: SyscallId, args: &ArgSet) -> Option<SlbEntry> {
        let set = self.set_for(sid);
        let ways = &mut self.entries[set];
        if let Some(pos) = ways
            .iter()
            .position(|e| e.sid == sid && e.args == *args)
        {
            let e = ways.remove(pos);
            ways.insert(0, e);
            Some(ways[0])
        } else {
            None
        }
    }

    fn preload_probe(&self, sid: SyscallId, hash: u64) -> bool {
        let set = self.set_for(sid);
        self.entries[set]
            .iter()
            .any(|e| e.sid == sid && e.hash == hash)
    }

    fn insert(&mut self, entry: SlbEntry) {
        let set = self.set_for(entry.sid);
        let ways = &mut self.entries[set];
        if let Some(pos) = ways
            .iter()
            .position(|e| e.sid == entry.sid && e.args == entry.args)
        {
            ways.remove(pos);
        }
        ways.insert(0, entry);
        if ways.len() > self.ways {
            ways.pop();
        }
    }

    fn clear(&mut self) {
        for set in &mut self.entries {
            set.clear();
        }
    }

    fn occupancy(&self) -> usize {
        self.entries.iter().map(Vec::len).sum()
    }
}

/// The full SLB: six subtables, selected by argument count.
///
/// Accesses come in two flavours, mirroring the hardware:
///
/// * [`Slb::access`] — the non-speculative ROB-head check: SID and
///   argument values must match ("SLB Access" in Fig. 13); updates LRU.
/// * [`Slb::preload_probe`] — the speculative early check: SID and
///   *hash* match only ("SLB Preload"); does **not** touch LRU state,
///   per the §IX side-channel hardening.
#[derive(Clone)]
pub struct Slb {
    subtables: [Subtable; 6],
    access_hits: u64,
    access_misses: u64,
    preload_hits: u64,
    preload_misses: u64,
}

impl Slb {
    /// Builds the SLB from the six per-argument-count geometries.
    pub fn new(configs: [SlbConfig; 6]) -> Self {
        Slb {
            subtables: configs.map(Subtable::new),
            access_hits: 0,
            access_misses: 0,
            preload_hits: 0,
            preload_misses: 0,
        }
    }

    fn subtable(&mut self, arg_count: usize) -> &mut Subtable {
        debug_assert!((1..=6).contains(&arg_count));
        &mut self.subtables[arg_count - 1]
    }

    /// The ROB-head access: hit iff an entry matches SID and argument
    /// set.
    pub fn access(&mut self, arg_count: usize, sid: SyscallId, args: &ArgSet) -> Option<SlbEntry> {
        let hit = self.subtable(arg_count).access(sid, args);
        match hit {
            Some(_) => self.access_hits += 1,
            None => self.access_misses += 1,
        }
        hit
    }

    /// The speculative preload probe: hit iff an entry matches SID and
    /// hash. Leaves LRU state untouched (§IX).
    pub fn preload_probe(&mut self, arg_count: usize, sid: SyscallId, hash: u64) -> bool {
        debug_assert!((1..=6).contains(&arg_count));
        let hit = self.subtables[arg_count - 1].preload_probe(sid, hash);
        if hit {
            self.preload_hits += 1;
        } else {
            self.preload_misses += 1;
        }
        hit
    }

    /// Fills an entry (VAT fetch completion or temporary-buffer commit).
    pub fn insert(&mut self, arg_count: usize, entry: SlbEntry) {
        self.subtable(arg_count).insert(entry);
    }

    /// Invalidates everything (context switch).
    pub fn invalidate_all(&mut self) {
        for t in &mut self.subtables {
            t.clear();
        }
    }

    /// Access hit rate over the run (Fig. 13 "SLB Access").
    pub fn access_hit_rate(&self) -> f64 {
        rate(self.access_hits, self.access_misses)
    }

    /// Preload hit rate over the run (Fig. 13 "SLB Preload").
    pub fn preload_hit_rate(&self) -> f64 {
        rate(self.preload_hits, self.preload_misses)
    }

    /// Raw counters: `(access_hits, access_misses, preload_hits,
    /// preload_misses)`.
    pub const fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.access_hits,
            self.access_misses,
            self.preload_hits,
            self.preload_misses,
        )
    }

    /// Zeroes the hit/miss counters (steady-state measurement start).
    pub fn reset_counters(&mut self) {
        self.access_hits = 0;
        self.access_misses = 0;
        self.preload_hits = 0;
        self.preload_misses = 0;
    }

    /// Total resident entries.
    pub fn occupancy(&self) -> usize {
        self.subtables.iter().map(Subtable::occupancy).sum()
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

impl fmt::Debug for Slb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Slb({} resident, access {:.1}%, preload {:.1}%)",
            self.occupancy(),
            self.access_hit_rate() * 100.0,
            self.preload_hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slb() -> Slb {
        Slb::new(crate::SimConfig::table_ii().slb)
    }

    fn entry(nr: u16, hash: u64, a0: u64) -> SlbEntry {
        SlbEntry {
            sid: SyscallId::new(nr),
            hash,
            way: Way::H1,
            args: ArgSet::from_slice(&[a0]),
        }
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut s = slb();
        let args = ArgSet::from_slice(&[7]);
        assert!(s.access(1, SyscallId::new(3), &args).is_none());
        s.insert(1, entry(3, 0xabc, 7));
        let hit = s.access(1, SyscallId::new(3), &args).expect("hit");
        assert_eq!(hit.hash, 0xabc);
        assert_eq!(s.counters().0, 1);
    }

    #[test]
    fn access_requires_matching_args() {
        let mut s = slb();
        s.insert(1, entry(3, 0xabc, 7));
        assert!(s.access(1, SyscallId::new(3), &ArgSet::from_slice(&[8])).is_none());
    }

    #[test]
    fn preload_matches_hash_not_args() {
        let mut s = slb();
        s.insert(2, entry(0, 0x1111, 3));
        assert!(s.preload_probe(2, SyscallId::new(0), 0x1111));
        assert!(!s.preload_probe(2, SyscallId::new(0), 0x2222));
        assert!(!s.preload_probe(2, SyscallId::new(1), 0x1111));
        assert_eq!(s.counters(), (0, 0, 1, 2));
    }

    #[test]
    fn preload_does_not_touch_lru() {
        // Fill a set to capacity, probe the LRU entry, then insert: the
        // probed entry must still be evicted (probe left it LRU).
        let cfg = [SlbConfig { entries: 4, ways: 4 }; 6];
        let mut s = Slb::new(cfg);
        // All SIDs map to set 0 (one set).
        for i in 0..4u16 {
            s.insert(1, entry(i, 0x100 + u64::from(i), u64::from(i)));
        }
        // Entry sid=0 is LRU now. A (speculative) preload probe on it...
        assert!(s.preload_probe(1, SyscallId::new(0), 0x100));
        // ...must not refresh it: the next insert still evicts sid=0.
        s.insert(1, entry(9, 0x999, 9));
        assert!(
            s.access(1, SyscallId::new(0), &ArgSet::from_slice(&[0])).is_none(),
            "probe must not protect the entry (side-channel hardening)"
        );
    }

    #[test]
    fn access_updates_lru() {
        let cfg = [SlbConfig { entries: 4, ways: 4 }; 6];
        let mut s = Slb::new(cfg);
        for i in 0..4u16 {
            s.insert(1, entry(i, u64::from(i), u64::from(i)));
        }
        // Touch sid=0 non-speculatively → sid=1 becomes LRU.
        assert!(s.access(1, SyscallId::new(0), &ArgSet::from_slice(&[0])).is_some());
        s.insert(1, entry(9, 9, 9));
        assert!(s.access(1, SyscallId::new(0), &ArgSet::from_slice(&[0])).is_some());
        assert!(s.access(1, SyscallId::new(1), &ArgSet::from_slice(&[1])).is_none());
    }

    #[test]
    fn same_sid_multiple_argsets_coexist() {
        let mut s = slb();
        s.insert(2, entry(0, 1, 10));
        s.insert(2, entry(0, 2, 20));
        assert!(s.access(2, SyscallId::new(0), &ArgSet::from_slice(&[10])).is_some());
        assert!(s.access(2, SyscallId::new(0), &ArgSet::from_slice(&[20])).is_some());
    }

    #[test]
    fn invalidate_all_clears() {
        let mut s = slb();
        s.insert(1, entry(3, 1, 1));
        s.invalidate_all();
        assert_eq!(s.occupancy(), 0);
        assert!(s.access(1, SyscallId::new(3), &ArgSet::from_slice(&[1])).is_none());
    }

    #[test]
    fn hit_rates() {
        let mut s = slb();
        s.insert(1, entry(3, 1, 1));
        let args = ArgSet::from_slice(&[1]);
        s.access(1, SyscallId::new(3), &args);
        s.access(1, SyscallId::new(4), &args);
        assert!((s.access_hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(s.preload_hit_rate(), 0.0);
        assert!(format!("{s:?}").contains("access"));
    }
}
