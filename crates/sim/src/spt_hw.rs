//! The per-core hardware System Call Permissions Table (384 entries,
//! direct-mapped — paper Table II).

use core::fmt;

use draco_syscalls::{ArgBitmask, SyscallId};

/// One hardware SPT entry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HwSptEntry {
    /// Occupied and validated.
    pub valid: bool,
    /// Full SID tag (the table is smaller than the syscall space).
    pub sid: SyscallId,
    /// VAT structure index (the Base field; `None` = no argument checks).
    pub vat_index: Option<u32>,
    /// VAT base virtual address (what the hardware adds hash offsets to).
    pub base_vaddr: u64,
    /// Argument Bitmask.
    pub bitmask: ArgBitmask,
    /// Accessed bit for context-switch save/restore (§VII-B).
    pub accessed: bool,
}

/// The hardware SPT: direct-mapped by `sid % entries`, tagged with the
/// full SID.
#[derive(Clone)]
pub struct HwSpt {
    entries: Vec<HwSptEntry>,
    hits: u64,
    misses: u64,
}

impl HwSpt {
    /// Creates an SPT with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0);
        HwSpt {
            entries: vec![HwSptEntry::default(); entries],
            hits: 0,
            misses: 0,
        }
    }

    fn index(&self, sid: SyscallId) -> usize {
        sid.index() % self.entries.len()
    }

    /// Looks up a SID; marks the entry accessed on a hit.
    pub fn lookup(&mut self, sid: SyscallId) -> Option<HwSptEntry> {
        let idx = self.index(sid);
        let entry = &mut self.entries[idx];
        if entry.valid && entry.sid == sid {
            entry.accessed = true;
            self.hits += 1;
            Some(*entry)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Installs an entry (the OS does this after a successful software
    /// check). Direct-mapped: a conflicting SID overwrites.
    pub fn install(&mut self, entry: HwSptEntry) {
        let idx = self.index(entry.sid);
        self.entries[idx] = HwSptEntry {
            valid: true,
            accessed: true,
            ..entry
        };
    }

    /// Invalidates everything (context switch to another process).
    pub fn invalidate_all(&mut self) {
        for e in &mut self.entries {
            *e = HwSptEntry::default();
        }
    }

    /// Clears all Accessed bits (periodic clearing, §VII-B).
    pub fn clear_accessed(&mut self) {
        for e in &mut self.entries {
            e.accessed = false;
        }
    }

    /// Valid entries with the Accessed bit set (what the OS saves on a
    /// context switch).
    pub fn accessed_entries(&self) -> Vec<HwSptEntry> {
        self.entries
            .iter()
            .filter(|e| e.valid && e.accessed)
            .copied()
            .collect()
    }

    /// Restores saved entries.
    pub fn restore(&mut self, saved: &[HwSptEntry]) {
        for e in saved {
            self.install(*e);
        }
    }

    /// `(hits, misses)` counters.
    pub const fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of valid entries.
    pub fn valid_count(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }
}

impl fmt::Debug for HwSpt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HwSpt({} entries, {} valid)",
            self.entries.len(),
            self.valid_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(nr: u16) -> HwSptEntry {
        HwSptEntry {
            valid: true,
            sid: SyscallId::new(nr),
            vat_index: Some(3),
            base_vaddr: 0x5000_0000,
            bitmask: ArgBitmask::EMPTY,
            accessed: false,
        }
    }

    #[test]
    fn install_then_lookup() {
        let mut spt = HwSpt::new(384);
        assert!(spt.lookup(SyscallId::new(0)).is_none());
        spt.install(entry(0));
        let e = spt.lookup(SyscallId::new(0)).expect("hit");
        assert_eq!(e.vat_index, Some(3));
        assert!(e.accessed);
        assert_eq!(spt.stats(), (1, 1));
    }

    #[test]
    fn direct_mapped_conflicts_overwrite() {
        let mut spt = HwSpt::new(384);
        spt.install(entry(0));
        spt.install(entry(384)); // same index, different tag
        assert!(spt.lookup(SyscallId::new(0)).is_none(), "evicted by 384");
        assert!(spt.lookup(SyscallId::new(384)).is_some());
    }

    #[test]
    fn tag_prevents_aliased_hits() {
        let mut spt = HwSpt::new(384);
        spt.install(entry(10));
        assert!(spt.lookup(SyscallId::new(10 + 384)).is_none());
    }

    #[test]
    fn accessed_save_restore_roundtrip() {
        let mut spt = HwSpt::new(64);
        spt.install(entry(1));
        spt.install(entry(2));
        spt.clear_accessed();
        let _ = spt.lookup(SyscallId::new(2));
        let saved = spt.accessed_entries();
        assert_eq!(saved.len(), 1);
        assert_eq!(saved[0].sid, SyscallId::new(2));
        let mut fresh = HwSpt::new(64);
        fresh.restore(&saved);
        assert!(fresh.lookup(SyscallId::new(2)).is_some());
        assert!(fresh.lookup(SyscallId::new(1)).is_none());
    }

    #[test]
    fn invalidate_all_clears() {
        let mut spt = HwSpt::new(16);
        spt.install(entry(5));
        spt.invalidate_all();
        assert!(spt.lookup(SyscallId::new(5)).is_none());
        assert_eq!(spt.valid_count(), 0);
    }
}
