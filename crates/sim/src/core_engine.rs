//! The per-core hardware Draco engine: paper Table I's execution flows.

use core::fmt;

use draco_core::Vat;
use draco_obs::{FlowClass, MetricsRegistry, SimMetrics, SpanTracer, Stage, TraceScope};
use draco_profiles::{compile_stacked, ArgPolicy, CompiledStack, FilterLayout, ProfileSpec};
use draco_syscalls::{ArgBitmask, ArgSet, SyscallId};
use draco_workloads::SyscallTrace;

use crate::cache::CacheHierarchy;
use crate::config::SimConfig;
use crate::slb::{Slb, SlbEntry};
use crate::spt_hw::{HwSpt, HwSptEntry};
use crate::stb::Stb;
use crate::tempbuf::TemporaryBuffer;
use crate::tlb::Tlb;

/// Which path a system call took through the hardware (paper Table I).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Flow {
    /// SPT Valid bit sufficed (no argument checking for this syscall).
    SptOnly,
    /// STB hit, SLB preload hit, SLB access hit — fast.
    F1,
    /// STB hit, SLB preload hit, SLB access miss — slow.
    F2,
    /// STB hit, SLB preload miss, SLB access hit — fast.
    F3,
    /// STB hit, SLB preload miss, SLB access miss — slow.
    F4,
    /// STB miss, SLB access hit — fast.
    F5,
    /// STB miss, SLB access miss — slow.
    F6,
    /// The VAT had no entry: the OS ran the Seccomp filter.
    Fallback,
}

impl Flow {
    /// Table I's fast/slow classification.
    pub const fn is_fast(self) -> bool {
        matches!(self, Flow::SptOnly | Flow::F1 | Flow::F3 | Flow::F5)
    }

    /// Dense index for per-flow accounting arrays.
    pub const fn index(self) -> usize {
        match self {
            Flow::SptOnly => 0,
            Flow::F1 => 1,
            Flow::F2 => 2,
            Flow::F3 => 3,
            Flow::F4 => 4,
            Flow::F5 => 5,
            Flow::F6 => 6,
            Flow::Fallback => 7,
        }
    }

    /// All flows in Table I order.
    pub const ALL: [Flow; 8] = [
        Flow::SptOnly,
        Flow::F1,
        Flow::F2,
        Flow::F3,
        Flow::F4,
        Flow::F5,
        Flow::F6,
        Flow::Fallback,
    ];
}

/// Per-flow occurrence counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct FlowCounts {
    pub spt_only: u64,
    pub f1: u64,
    pub f2: u64,
    pub f3: u64,
    pub f4: u64,
    pub f5: u64,
    pub f6: u64,
    pub fallback: u64,
}

impl FlowCounts {
    /// Occurrences of one flow.
    pub const fn count(&self, flow: Flow) -> u64 {
        match flow {
            Flow::SptOnly => self.spt_only,
            Flow::F1 => self.f1,
            Flow::F2 => self.f2,
            Flow::F3 => self.f3,
            Flow::F4 => self.f4,
            Flow::F5 => self.f5,
            Flow::F6 => self.f6,
            Flow::Fallback => self.fallback,
        }
    }

    fn bump(&mut self, flow: Flow) {
        match flow {
            Flow::SptOnly => self.spt_only += 1,
            Flow::F1 => self.f1 += 1,
            Flow::F2 => self.f2 += 1,
            Flow::F3 => self.f3 += 1,
            Flow::F4 => self.f4 += 1,
            Flow::F5 => self.f5 += 1,
            Flow::F6 => self.f6 += 1,
            Flow::Fallback => self.fallback += 1,
        }
    }

    /// Total syscalls classified.
    pub const fn total(&self) -> u64 {
        self.spt_only
            + self.f1
            + self.f2
            + self.f3
            + self.f4
            + self.f5
            + self.f6
            + self.fallback
    }

    /// Syscalls on fast flows.
    pub const fn fast(&self) -> u64 {
        self.spt_only + self.f1 + self.f3 + self.f5
    }

    /// Syscalls on slow flows (including fallbacks).
    pub const fn slow(&self) -> u64 {
        self.f2 + self.f4 + self.f6 + self.fallback
    }
}

/// Hardware-structure access counters (for the energy model).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct HwAccesses {
    pub stb: u64,
    pub spt: u64,
    pub slb: u64,
    pub crc: u64,
}

/// The result of running one trace through a hardware-Draco core.
#[derive(Clone, Debug, PartialEq)]
pub struct HwRunReport {
    /// Workload label.
    pub workload: String,
    /// Total cycles including checking.
    pub total_cycles: u64,
    /// Cycles the same trace takes with checking disabled.
    pub baseline_cycles: u64,
    /// The checking component alone.
    pub check_cycles: u64,
    /// Flow classification counts.
    pub flows: FlowCounts,
    /// STB hit rate (paper Fig. 13).
    pub stb_hit_rate: f64,
    /// SLB access hit rate (Fig. 13), over argument-checked syscalls.
    pub slb_access_hit_rate: f64,
    /// SLB preload hit rate (Fig. 13).
    pub slb_preload_hit_rate: f64,
    /// Software fallback runs (cold validations).
    pub filter_runs: u64,
    /// cBPF instructions executed by fallbacks.
    pub filter_insns: u64,
    /// Denied syscalls.
    pub denials: u64,
    /// Context switches taken.
    pub ctx_switches: u64,
    /// Hardware structure accesses (energy model input).
    pub accesses: HwAccesses,
    /// VAT resident-set footprint at the end of the run.
    pub vat_footprint_bytes: usize,
    /// Check cycles attributed to each flow (indexed by [`Flow::index`]).
    pub flow_cycles: [u64; 8],
    /// VAT-traffic cache statistics: `(hits, misses)` per level (L1, L2,
    /// L3) since the last counter reset.
    pub cache_levels: [(u64, u64); 3],
}

impl HwRunReport {
    /// Execution time normalized to the unchecked baseline (the paper's
    /// Fig. 12 axis; hardware Draco lands within ~1%).
    pub fn normalized_overhead(&self) -> f64 {
        self.total_cycles as f64 / self.baseline_cycles as f64
    }

    /// Mean check cycles of one flow over the run (`NaN` if it never
    /// occurred) — the measured version of Table I's fast/slow column.
    pub fn mean_cycles_for(&self, flow: Flow) -> f64 {
        let n = self.flows.count(flow);
        if n == 0 {
            f64::NAN
        } else {
            self.flow_cycles[flow.index()] as f64 / n as f64
        }
    }
}

/// A single core with Draco hardware, running one process's profile.
pub struct DracoHwCore {
    config: SimConfig,
    spt: HwSpt,
    slb: Slb,
    stb: Stb,
    temp: TemporaryBuffer,
    caches: CacheHierarchy,
    tlb: Tlb,
    vat: Vat,
    profile: ProfileSpec,
    filter: CompiledStack,
    cycles_in_quantum: u64,
    saved_spt: Vec<HwSptEntry>,
    flows: FlowCounts,
    flow_cycles: [u64; 8],
    last_flow: Flow,
    accesses: HwAccesses,
    filter_runs: u64,
    filter_insns: u64,
    denials: u64,
    ctx_switches: u64,
    /// Optional sampled stage-span tracer over the *simulator's own*
    /// execution of the hardware flow stages (STB predict, SLB
    /// preload/access, temp-buffer ops, CRC + VAT probes). Boxed and
    /// off by default, like the software checker's.
    span_trace: Option<Box<SpanTracer>>,
    /// Monotonic syscall counter (sequences sampled spans).
    check_seq: u64,
}

impl DracoHwCore {
    /// Builds a core enforcing `profile`.
    ///
    /// # Errors
    ///
    /// Returns [`draco_core::DracoError::FilterCompile`] if the fallback
    /// filter cannot be compiled.
    pub fn new(config: SimConfig, profile: &ProfileSpec) -> Result<Self, draco_core::DracoError> {
        config.validate();
        let stack = compile_stacked(profile, FilterLayout::Linear)
            .map_err(draco_core::DracoError::FilterCompile)?;
        let slb_cfgs = [1, 2, 3, 4, 5, 6].map(|n| config.slb_for(n));
        Ok(DracoHwCore {
            spt: HwSpt::new(config.spt_entries / config.smt_contexts.max(1)),
            slb: Slb::new(slb_cfgs),
            stb: Stb::new(
                (config.stb_entries / config.smt_contexts).max(config.stb_ways),
                config.stb_ways,
            ),
            temp: TemporaryBuffer::new(config.temp_buffer_entries),
            caches: CacheHierarchy::new(config.l1, config.l2, config.l3, config.dram_cycles),
            tlb: Tlb::new(config.tlb_entries),
            vat: Vat::new(),
            profile: profile.clone(),
            filter: stack.compiled(),
            cycles_in_quantum: 0,
            saved_spt: Vec::new(),
            flows: FlowCounts::default(),
            flow_cycles: [0; 8],
            last_flow: Flow::SptOnly,
            accesses: HwAccesses::default(),
            filter_runs: 0,
            filter_insns: 0,
            denials: 0,
            ctx_switches: 0,
            span_trace: None,
            check_seq: 0,
            config,
        })
    }

    /// Installs a sampled span tracer over the hardware flow stages.
    pub fn install_span_tracer(&mut self, tracer: SpanTracer) {
        self.span_trace = Some(Box::new(tracer));
    }

    /// Enables span tracing with a fresh tracer (see [`SpanTracer::new`]).
    pub fn enable_span_trace(&mut self, capacity: usize, sample_interval: u64) {
        self.install_span_tracer(SpanTracer::new(capacity, sample_interval));
    }

    /// Removes and returns the span tracer (e.g. to export its spans).
    pub fn take_span_tracer(&mut self) -> Option<SpanTracer> {
        self.span_trace.take().map(|boxed| *boxed)
    }

    /// The span tracer, if installed.
    pub fn span_tracer(&self) -> Option<&SpanTracer> {
        self.span_trace.as_deref()
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the first `warmup_ops` operations without measuring (the
    /// paper warms the architectural state for 250M instructions before
    /// measuring, §X-C), then runs the rest and reports on it.
    pub fn run_measured(&mut self, trace: &SyscallTrace, warmup_ops: usize) -> HwRunReport {
        let _ = self.run(&trace.take(warmup_ops));
        self.reset_stats();
        self.run(&trace.skip(warmup_ops))
    }

    /// Zeroes every statistics counter while keeping the tables warm.
    pub fn reset_stats(&mut self) {
        self.flows = FlowCounts::default();
        self.flow_cycles = [0; 8];
        self.accesses = HwAccesses::default();
        self.filter_runs = 0;
        self.filter_insns = 0;
        self.denials = 0;
        self.ctx_switches = 0;
        self.slb.reset_counters();
        self.stb.reset_counters();
    }

    /// Runs a trace to completion and reports.
    pub fn run(&mut self, trace: &SyscallTrace) -> HwRunReport {
        let mut total: u64 = 0;
        let mut baseline: u64 = 0;
        let mut check_total: u64 = 0;
        // As in the software checker, the tracer steps aside while a
        // check borrows both it and `self`.
        let mut tracer = self.span_trace.take();
        for op in trace.ops() {
            let work = self.config.ns_to_cycles(op.compute_ns) + self.config.syscall_base_cycles;
            self.advance_quantum(work);
            self.check_seq = self.check_seq.saturating_add(1);
            let mut scope = TraceScope::begin(tracer.as_deref_mut(), self.check_seq, op.nr);
            let denials_before = self.denials;
            let check = self.process_syscall(
                op.pc,
                SyscallId::new(op.nr),
                ArgSet::new(op.args),
                &mut scope,
            );
            // Every path through process_syscall classifies the flow.
            scope.finish(match self.last_flow {
                Flow::SptOnly => FlowClass::SptHit,
                Flow::Fallback if self.denials > denials_before => FlowClass::FilterDeny,
                Flow::Fallback => FlowClass::FilterAllow,
                _ => FlowClass::VatHit,
            });
            self.flow_cycles[self.last_flow.index()] += check;
            self.advance_quantum(check);
            total += work + check;
            baseline += work;
            check_total += check;
        }
        self.span_trace = tracer;
        HwRunReport {
            workload: trace.workload().to_owned(),
            total_cycles: total,
            baseline_cycles: baseline,
            check_cycles: check_total,
            flows: self.flows,
            stb_hit_rate: self.stb.hit_rate(),
            slb_access_hit_rate: {
                let (h, m, _, _) = self.slb.counters();
                if h + m == 0 { 0.0 } else { h as f64 / (h + m) as f64 }
            },
            slb_preload_hit_rate: self.slb.preload_hit_rate(),
            filter_runs: self.filter_runs,
            filter_insns: self.filter_insns,
            denials: self.denials,
            ctx_switches: self.ctx_switches,
            accesses: self.accesses,
            vat_footprint_bytes: self.vat.footprint_bytes(),
            flow_cycles: self.flow_cycles,
            cache_levels: self.caches.stats(),
        }
    }

    /// Models a pipeline squash between syscalls (failure injection):
    /// speculatively staged entries vanish without touching the SLB.
    pub fn inject_squash(&mut self) {
        self.temp.squash();
    }

    /// Forces an immediate context switch (failure injection).
    pub fn inject_context_switch(&mut self) {
        self.context_switch();
    }

    /// Read access to the temporary buffer (tests).
    pub fn temp_buffer(&self) -> &TemporaryBuffer {
        &self.temp
    }

    /// This core's observability snapshot: the `sim` section from the
    /// STB/SLB/temporary-buffer counters and the Table-I flow mix, plus
    /// the `cuckoo`/`vat` sections aggregated from the core's VAT.
    /// (`checker`/`replay` stay zeroed — other layers own them; the
    /// core's own fallback-filter stats are in [`HwRunReport`].)
    pub fn metrics(&self) -> MetricsRegistry {
        let (access_hits, access_misses, preload_hits, preload_misses) = self.slb.counters();
        let (stb_hits, stb_misses) = self.stb.stats();
        let (staged, commits, squashes) = self.temp.counters();
        let mut flow_mix = [0u64; 8];
        for flow in Flow::ALL {
            flow_mix[flow.index()] = self.flows.count(flow);
        }
        MetricsRegistry {
            sim: SimMetrics {
                stb_hits,
                stb_misses,
                slb_access_hits: access_hits,
                slb_access_misses: access_misses,
                slb_preload_hits: preload_hits,
                slb_preload_misses: preload_misses,
                tempbuf_staged: staged,
                tempbuf_commits: commits,
                tempbuf_squashes: squashes,
                flow_mix,
            },
            cuckoo: self.vat.cuckoo_metrics(),
            vat: self.vat.metrics(),
            ..MetricsRegistry::default()
        }
    }

    fn note_flow(&mut self, flow: Flow) {
        self.flows.bump(flow);
        self.last_flow = flow;
    }

    fn advance_quantum(&mut self, cycles: u64) {
        if self.config.ctx_quantum_cycles == 0 {
            return;
        }
        self.cycles_in_quantum += cycles;
        while self.cycles_in_quantum >= self.config.ctx_quantum_cycles {
            self.cycles_in_quantum -= self.config.ctx_quantum_cycles;
            self.context_switch();
        }
    }

    /// A context switch to a different process and back (§VII-B): all
    /// Draco structures invalidate; with save/restore enabled the OS
    /// preserves the Accessed SPT entries.
    fn context_switch(&mut self) {
        self.ctx_switches += 1;
        if self.config.spt_save_restore {
            self.saved_spt = self.spt.accessed_entries();
        } else {
            self.saved_spt.clear();
        }
        self.spt.invalidate_all();
        self.slb.invalidate_all();
        self.stb.invalidate_all();
        self.temp.squash();
        self.tlb.flush();
        if self.config.spt_save_restore {
            let saved = std::mem::take(&mut self.saved_spt);
            self.spt.restore(&saved);
            self.spt.clear_accessed();
        }
    }

    /// VAT entry virtual address for cache/TLB modeling.
    fn vat_addr(&self, vat_index: u32, hash: u64, way: draco_cuckoo::Way) -> u64 {
        let folded = hash.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32;
        0x5000_0000
            + u64::from(vat_index) * 0x8000
            + way.index() as u64 * 0x4000
            + (folded % 64) * 64
    }

    /// Charges a VAT memory access: TLB + cache walk.
    fn vat_memory_access(&mut self, addr: u64) -> u64 {
        let mut cycles = 0;
        if !self.tlb.access(addr) {
            cycles += self.config.page_walk_cycles;
        }
        let (_, lat) = self.caches.access(addr);
        cycles + lat
    }

    /// The full Table-I machinery for one syscall; returns check cycles.
    fn process_syscall(
        &mut self,
        pc: u64,
        sid: SyscallId,
        args: ArgSet,
        scope: &mut TraceScope<'_>,
    ) -> u64 {
        // ---- ROB-insertion stage: STB lookup and SLB preload (§VI-B).
        // This work happens while older instructions drain, so it is off
        // the critical path; only its cache side effects matter.
        let mut stb_hit = false;
        let mut preload_hit = false;
        if self.config.preload_enabled && self.config.slb_enabled {
            self.accesses.stb += 1;
            let t = scope.stage_begin();
            let predicted = self.stb.lookup(pc);
            scope.stage_end(Stage::StbPredict, t);
            if let Some(se) = predicted {
                stb_hit = true;
                self.accesses.spt += 1;
                if let Some(spte) = self.spt.lookup(sid) {
                    if let Some(vat_idx) = spte.vat_index {
                        let argc = spte.bitmask.arg_count();
                        if argc >= 1 {
                            self.accesses.slb += 1;
                            let t = scope.stage_begin();
                            preload_hit = self.slb.preload_probe(argc, sid, se.hash);
                            if !preload_hit {
                                // Fetch the predicted VAT entry early.
                                let addr = self.vat_addr(vat_idx, se.hash, se.way);
                                let _hidden = self.vat_memory_access(addr);
                                if let Some(fetched) =
                                    self.vat.fetch_by_hash(vat_idx, se.hash, se.way)
                                {
                                    self.temp.stage(
                                        argc,
                                        SlbEntry {
                                            sid,
                                            hash: se.hash,
                                            way: se.way,
                                            args: fetched,
                                        },
                                    );
                                }
                            }
                            scope.stage_end(Stage::SlbPreload, t);
                        }
                    }
                }
            }
        }

        // ---- ROB-head stage: the serializing check (§VI-A).
        self.accesses.spt += 1;
        let t = scope.stage_begin();
        let head_spte = self.spt.lookup(sid);
        scope.stage_end(Stage::SptLookup, t);
        let Some(spte) = head_spte else {
            // SPT miss: the OS must check in software.
            return self.config.draco_struct_cycles + self.os_fallback(sid, args, stb_hit, scope);
        };
        let Some(vat_idx) = spte.vat_index else {
            // No argument checking for this syscall: the Valid bit
            // suffices. The STB still learns the PC → SID mapping so the
            // SPT lookup itself can be primed early.
            self.note_flow(Flow::SptOnly);
            self.stb.update(crate::stb::StbEntry {
                pc,
                sid,
                hash: 0,
                way: draco_cuckoo::Way::H1,
            });
            return self.config.draco_struct_cycles;
        };
        let argc = spte.bitmask.arg_count();
        if argc == 0 {
            self.note_flow(Flow::SptOnly);
            self.stb.update(crate::stb::StbEntry {
                pc,
                sid,
                hash: 0,
                way: draco_cuckoo::Way::H1,
            });
            return self.config.draco_struct_cycles;
        }
        let masked = spte.bitmask.masked(&args);

        if !self.config.slb_enabled {
            // The initial hardware design (§V-D): no SLB — hash and probe
            // the in-memory VAT at the ROB head on every checked call.
            return self.vat_probe_at_head(sid, args, pc, spte, vat_idx, scope);
        }

        // Commit any staged preload for this syscall into the SLB.
        let t = scope.stage_begin();
        if let Some(staged) = self.temp.take_matching(argc, sid, &masked) {
            self.slb.insert(argc, staged);
        } else if let Some((_, stale)) = self.temp.take_any_for(sid) {
            // A stale (wrong-argument-set) preload is discarded, but its
            // fetch already warmed the caches.
            let _ = stale;
        }
        scope.stage_end(Stage::TempBufOp, t);

        self.accesses.slb += 1;
        let t = scope.stage_begin();
        let slb_hit = self.slb.access(argc, sid, &masked);
        scope.stage_end(Stage::SlbAccess, t);
        if let Some(hit) = slb_hit {
            // Fast flows: the check costs one SLB access.
            let flow = match (stb_hit, preload_hit) {
                (true, true) => Flow::F1,
                (true, false) => Flow::F3,
                (false, _) => Flow::F5,
            };
            self.note_flow(flow);
            self.stb.update(crate::stb::StbEntry {
                pc,
                sid,
                hash: hit.hash,
                way: hit.way,
            });
            return self.config.draco_struct_cycles;
        }

        // SLB access miss: hash and probe the VAT from the ROB head.
        self.accesses.crc += 1;
        let mut cycles = self.config.draco_struct_cycles + self.config.crc_cycles;
        let pair = self
            .vat
            .hash_pair(vat_idx, spte.bitmask, &args)
            .expect("SPT points at a live VAT table");
        let a1 = self.vat_addr(vat_idx, pair.h1, draco_cuckoo::Way::H1);
        let a2 = self.vat_addr(vat_idx, pair.h2, draco_cuckoo::Way::H2);
        // The two probes proceed in parallel; latency is the slower one.
        let l1 = self.vat_memory_access(a1);
        let l2 = self.vat_memory_access(a2);
        cycles += l1.max(l2);

        let found = if scope.is_active() {
            self.vat.lookup_traced(vat_idx, spte.bitmask, &args, scope)
        } else {
            self.vat.lookup(vat_idx, spte.bitmask, &args)
        };
        if let Some(found) = found {
            // Slow flows 2/4/6: fill SLB and STB with the correct entry.
            let flow = match (stb_hit, preload_hit) {
                (true, true) => Flow::F2,
                (true, false) => Flow::F4,
                (false, _) => Flow::F6,
            };
            self.note_flow(flow);
            self.slb.insert(
                argc,
                SlbEntry {
                    sid,
                    hash: found.hash,
                    way: found.way,
                    args: masked,
                },
            );
            self.stb.update(crate::stb::StbEntry {
                pc,
                sid,
                hash: found.hash,
                way: found.way,
            });
            cycles + self.config.draco_struct_cycles
        } else {
            // Not in the VAT: software check (sets SWCheckNeeded,
            // §VII-B).
            cycles + self.os_fallback_with_stb(sid, args, pc, spte.bitmask, vat_idx, scope)
        }
    }

    /// The §V-D initial-design check: CRC hash plus two parallel VAT
    /// memory probes at the ROB head, every time.
    fn vat_probe_at_head(
        &mut self,
        sid: SyscallId,
        args: ArgSet,
        pc: u64,
        spte: crate::spt_hw::HwSptEntry,
        vat_idx: u32,
        scope: &mut TraceScope<'_>,
    ) -> u64 {
        self.accesses.crc += 1;
        let mut cycles = self.config.draco_struct_cycles + self.config.crc_cycles;
        let pair = self
            .vat
            .hash_pair(vat_idx, spte.bitmask, &args)
            .expect("SPT points at a live VAT table");
        let a1 = self.vat_addr(vat_idx, pair.h1, draco_cuckoo::Way::H1);
        let a2 = self.vat_addr(vat_idx, pair.h2, draco_cuckoo::Way::H2);
        let l1 = self.vat_memory_access(a1);
        let l2 = self.vat_memory_access(a2);
        cycles += l1.max(l2);
        let found = if scope.is_active() {
            self.vat.lookup_traced(vat_idx, spte.bitmask, &args, scope)
        } else {
            self.vat.lookup(vat_idx, spte.bitmask, &args)
        };
        if found.is_some() {
            self.note_flow(Flow::F6);
            cycles
        } else {
            cycles + self.os_fallback_with_stb(sid, args, pc, spte.bitmask, vat_idx, scope)
        }
    }

    /// OS fallback when the SPT itself missed: run the filter; on success
    /// install SPT (and VAT/SLB/STB for argument-checked syscalls).
    fn os_fallback(
        &mut self,
        sid: SyscallId,
        args: ArgSet,
        _stb_hit: bool,
        scope: &mut TraceScope<'_>,
    ) -> u64 {
        let req = draco_syscalls::SyscallRequest::new(0, sid, args);
        let data = draco_bpf::SeccompData::from_request(&req);
        let t = scope.stage_begin();
        let outcome = self.filter.run(&data).expect("generated filters are clean");
        scope.stage_end(Stage::FilterExec, t);
        self.filter_runs += 1;
        self.filter_insns += outcome.insns_executed;
        self.note_flow(Flow::Fallback);
        let cycles = self.config.os_fallback_cycles
            + (outcome.insns_executed as f64 * self.config.bpf_insn_cycles) as u64;
        if !outcome.action.permits() {
            self.denials += 1;
            return cycles;
        }
        // Install the OS-side state.
        let t = scope.stage_begin();
        match self.profile.rule(sid).map(|r| &r.args) {
            Some(ArgPolicy::Whitelist { mask, sets }) => {
                let idx = self.vat.ensure_table(sid, sets.len());
                self.vat.insert(idx, *mask, &args);
                self.spt.install(HwSptEntry {
                    valid: true,
                    sid,
                    vat_index: Some(idx),
                    base_vaddr: 0x5000_0000 + u64::from(idx) * 0x8000,
                    bitmask: *mask,
                    accessed: true,
                });
            }
            _ => {
                self.spt.install(HwSptEntry {
                    valid: true,
                    sid,
                    vat_index: None,
                    base_vaddr: 0,
                    bitmask: ArgBitmask::EMPTY,
                    accessed: true,
                });
            }
        }
        scope.stage_end(Stage::VatInsert, t);
        cycles
    }

    /// OS fallback after a VAT miss on a known-argument-checked syscall:
    /// run the filter; on success insert the argument set and refill the
    /// hardware.
    fn os_fallback_with_stb(
        &mut self,
        sid: SyscallId,
        args: ArgSet,
        pc: u64,
        mask: ArgBitmask,
        vat_idx: u32,
        scope: &mut TraceScope<'_>,
    ) -> u64 {
        let req = draco_syscalls::SyscallRequest::new(pc, sid, args);
        let data = draco_bpf::SeccompData::from_request(&req);
        let t = scope.stage_begin();
        let outcome = self.filter.run(&data).expect("generated filters are clean");
        scope.stage_end(Stage::FilterExec, t);
        self.filter_runs += 1;
        self.filter_insns += outcome.insns_executed;
        self.note_flow(Flow::Fallback);
        let cycles = self.config.os_fallback_cycles
            + (outcome.insns_executed as f64 * self.config.bpf_insn_cycles) as u64;
        if !outcome.action.permits() {
            self.denials += 1;
            return cycles;
        }
        let t = scope.stage_begin();
        self.vat.insert(vat_idx, mask, &args);
        scope.stage_end(Stage::VatInsert, t);
        if let Some(found) = self.vat.lookup(vat_idx, mask, &args) {
            let masked = mask.masked(&args);
            let argc = mask.arg_count();
            self.slb.insert(
                argc,
                SlbEntry {
                    sid,
                    hash: found.hash,
                    way: found.way,
                    args: masked,
                },
            );
            self.stb.update(crate::stb::StbEntry {
                pc,
                sid,
                hash: found.hash,
                way: found.way,
            });
        }
        cycles
    }
}

impl fmt::Debug for DracoHwCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DracoHwCore")
            .field("profile", &self.profile.name())
            .field("flows", &self.flows)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use draco_bpf::SeccompAction;
    use draco_profiles::ProfileKind;
    use draco_workloads::{catalog, timing, TraceGenerator};

    fn run_workload(name: &str, ops: usize, kind: ProfileKind) -> HwRunReport {
        let spec = catalog::by_name(name).unwrap();
        let trace = TraceGenerator::new(&spec, 5).generate(ops);
        let profile = timing::profile_for_trace(&trace, kind);
        let mut core = DracoHwCore::new(SimConfig::table_ii(), &profile).unwrap();
        core.run(&trace)
    }

    #[test]
    fn hardware_overhead_within_one_percent() {
        // Paper Fig. 12: ~1% of insecure across profiles.
        for kind in [
            ProfileKind::SyscallNoargs,
            ProfileKind::SyscallComplete,
            ProfileKind::SyscallComplete2x,
        ] {
            let r = run_workload("nginx", 20_000, kind);
            assert!(
                r.normalized_overhead() < 1.01,
                "{kind:?}: {}",
                r.normalized_overhead()
            );
        }
    }

    #[test]
    fn micro_benchmarks_also_within_one_percent() {
        for name in ["unixbench-syscall", "pipe", "mq"] {
            let r = run_workload(name, 20_000, ProfileKind::SyscallComplete);
            assert!(r.normalized_overhead() < 1.01, "{name}");
        }
    }

    #[test]
    fn steady_state_is_dominated_by_fast_flows() {
        // Paper Fig. 13 puts HTTPD's SLB access hit rate in the 75-93%
        // band; fast flows (SPT-only + F1/F3/F5) dominate accordingly.
        let r = run_workload("httpd", 30_000, ProfileKind::SyscallComplete);
        let fast = r.flows.fast() as f64 / r.flows.total() as f64;
        assert!(fast > 0.80, "fast fraction {fast}");
        assert!(r.flows.f1 > 0, "flow 1 must occur");
    }

    #[test]
    fn hit_rates_match_figure_13_shape() {
        let r = run_workload("nginx", 30_000, ProfileKind::SyscallComplete);
        assert!(r.stb_hit_rate > 0.93, "STB {}", r.stb_hit_rate);
        assert!(r.slb_access_hit_rate > 0.75, "SLB access {}", r.slb_access_hit_rate);
        // Elasticsearch (wide call-site and argument diversity) is worse.
        let e = run_workload("elasticsearch", 30_000, ProfileKind::SyscallComplete);
        assert!(
            e.slb_access_hit_rate < r.slb_access_hit_rate,
            "elasticsearch {} vs nginx {}",
            e.slb_access_hit_rate,
            r.slb_access_hit_rate
        );
    }

    #[test]
    fn noargs_profile_uses_spt_only_path() {
        let r = run_workload("pipe", 5_000, ProfileKind::SyscallNoargs);
        assert!(r.flows.spt_only > 0);
        assert_eq!(r.flows.f1 + r.flows.f2 + r.flows.f3 + r.flows.f4, 0);
    }

    #[test]
    fn all_six_flows_reachable() {
        // Across a diverse workload the full Table I should appear.
        let r = run_workload("elasticsearch", 40_000, ProfileKind::SyscallComplete);
        assert!(r.flows.f1 > 0, "F1");
        assert!(r.flows.f3 + r.flows.f2 > 0, "F2/F3");
        assert!(r.flows.f5 > 0, "F5");
        assert!(r.flows.f6 > 0, "F6");
        assert!(r.flows.fallback > 0, "fallback");
    }

    #[test]
    fn preload_disabled_removes_flows_1_to_4() {
        let spec = catalog::httpd();
        let trace = TraceGenerator::new(&spec, 5).generate(10_000);
        let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
        let mut config = SimConfig::table_ii();
        config.preload_enabled = false;
        let mut core = DracoHwCore::new(config, &profile).unwrap();
        let r = core.run(&trace);
        assert_eq!(r.flows.f1 + r.flows.f2 + r.flows.f3 + r.flows.f4, 0);
        assert!(r.flows.f5 > 0);
    }

    #[test]
    fn context_switches_cause_cold_misses() {
        let spec = catalog::ipc_pipe();
        let trace = TraceGenerator::new(&spec, 5).generate(10_000);
        let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
        let mut frequent = SimConfig::table_ii();
        frequent.ctx_quantum_cycles = 200_000;
        let mut rare = SimConfig::table_ii();
        rare.ctx_quantum_cycles = 0;
        let mut c1 = DracoHwCore::new(frequent, &profile).unwrap();
        let mut c2 = DracoHwCore::new(rare, &profile).unwrap();
        let r1 = c1.run(&trace);
        let r2 = c2.run(&trace);
        assert!(r1.ctx_switches > 0);
        assert_eq!(r2.ctx_switches, 0);
        assert!(r1.check_cycles > r2.check_cycles, "switching costs cycles");
    }

    #[test]
    fn spt_save_restore_reduces_fallbacks() {
        let spec = catalog::httpd();
        let trace = TraceGenerator::new(&spec, 5).generate(20_000);
        let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallNoargs);
        let mut with = SimConfig::table_ii();
        with.ctx_quantum_cycles = 500_000;
        with.spt_save_restore = true;
        let mut without = with.clone();
        without.spt_save_restore = false;
        let ra = DracoHwCore::new(with, &profile).unwrap().run(&trace);
        let rb = DracoHwCore::new(without, &profile).unwrap().run(&trace);
        assert!(
            ra.filter_runs < rb.filter_runs,
            "save/restore {} vs cold {}",
            ra.filter_runs,
            rb.filter_runs
        );
    }

    #[test]
    fn denied_syscalls_always_fall_back() {
        // A profile that knows nothing: every call is a fallback denial.
        let profile = ProfileSpec::new("deny-all", SeccompAction::KillProcess);
        let mut core = DracoHwCore::new(SimConfig::table_ii(), &profile).unwrap();
        let trace = TraceGenerator::new(&catalog::ipc_pipe(), 1).generate(100);
        let r = core.run(&trace);
        assert_eq!(r.denials, 100);
        assert_eq!(r.flows.fallback, 100);
        assert_eq!(r.flows.fast(), 0);
    }

    #[test]
    fn squash_clears_staged_preloads() {
        let spec = catalog::ipc_pipe();
        let trace = TraceGenerator::new(&spec, 5).generate(1_000);
        let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
        let mut core = DracoHwCore::new(SimConfig::table_ii(), &profile).unwrap();
        core.run(&trace.take(500));
        core.inject_squash();
        assert!(core.temp_buffer().is_empty());
        // The run continues correctly after the squash.
        let r = core.run(&trace);
        assert_eq!(r.denials, 0);
    }

    #[test]
    fn smt_partitioning_shrinks_structures_and_hit_rates() {
        let spec = catalog::elasticsearch();
        let trace = TraceGenerator::new(&spec, 5).generate(20_000);
        let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
        let mut smt = SimConfig::table_ii();
        smt.smt_contexts = 4;
        let r1 = DracoHwCore::new(SimConfig::table_ii(), &profile)
            .unwrap()
            .run(&trace);
        let r4 = DracoHwCore::new(smt, &profile).unwrap().run(&trace);
        assert!(
            r4.slb_access_hit_rate <= r1.slb_access_hit_rate + 1e-9,
            "partitioned SLB cannot hit more"
        );
    }

    #[test]
    fn report_accounting_is_consistent() {
        let r = run_workload("mysql", 10_000, ProfileKind::SyscallComplete);
        assert_eq!(r.flows.total(), 10_000);
        assert_eq!(r.total_cycles, r.baseline_cycles + r.check_cycles);
        assert!(r.vat_footprint_bytes > 0);
        assert!(r.accesses.spt > 0);
        assert!(r.accesses.slb > 0);
    }

    #[test]
    fn metrics_agree_with_the_run_report() {
        let spec = catalog::httpd();
        let trace = TraceGenerator::new(&spec, 5).generate(10_000);
        let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
        let mut core = DracoHwCore::new(SimConfig::table_ii(), &profile).unwrap();
        let r = core.run(&trace);
        let m = core.metrics();
        // Flow mix matches FlowCounts in Table-I order.
        for flow in Flow::ALL {
            assert_eq!(m.sim.flow_mix[flow.index()], r.flows.count(flow));
        }
        assert_eq!(m.sim.flow_total(), r.flows.total());
        // Hit rates derived from the registry match the report's.
        assert!((m.sim.stb_hit_rate() - r.stb_hit_rate).abs() < 1e-12);
        assert!((m.sim.slb_access_hit_rate() - r.slb_access_hit_rate).abs() < 1e-12);
        assert!((m.sim.slb_preload_hit_rate() - r.slb_preload_hit_rate).abs() < 1e-12);
        // The temporary buffer saw traffic on this workload.
        assert!(m.sim.tempbuf_staged > 0);
        assert!(m.sim.tempbuf_commits <= m.sim.tempbuf_staged);
        // VAT sections are aggregated from the core's tables.
        assert!(m.vat.tables > 0);
        assert_eq!(m.vat.footprint_bytes as usize, r.vat_footprint_bytes);
        assert!(m.cuckoo.hits > 0, "slow flows probed the VAT");
        // Sections owned by other layers stay zeroed.
        assert_eq!(m.checker, draco_obs::CheckerMetrics::default());
        assert_eq!(m.replay.checks, 0);
    }

    #[test]
    fn span_trace_records_hardware_flow_stages() {
        let spec = catalog::elasticsearch();
        let trace = TraceGenerator::new(&spec, 5).generate(20_000);
        let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
        let mut core = DracoHwCore::new(SimConfig::table_ii(), &profile).unwrap();
        core.enable_span_trace(1 << 16, 1); // sample every check
        let report = core.run(&trace);
        let tracer = core.take_span_tracer().expect("tracer installed");
        assert_eq!(tracer.sampled_checks(), report.flows.total());
        let spans = tracer.spans();
        let has = |s: Stage| spans.iter().any(|sp| sp.stage == s);
        // Hardware-specific stages.
        assert!(has(Stage::StbPredict), "STB predictions traced");
        assert!(has(Stage::SlbAccess), "SLB accesses traced");
        assert!(has(Stage::SlbPreload), "SLB preloads traced");
        assert!(has(Stage::TempBufOp), "temp-buffer commits traced");
        assert!(has(Stage::SptLookup), "ROB-head SPT lookups traced");
        // Slow flows reach the software layers: CRC + per-way probes,
        // and fallbacks run the filter and insert into the VAT.
        assert!(has(Stage::CrcHash), "VAT hashing traced on slow flows");
        assert!(has(Stage::VatProbeWay1), "way-1 probes traced");
        assert!(has(Stage::FilterExec), "fallback filter runs traced");
        assert!(has(Stage::VatInsert), "VAT inserts traced");
        // Every span carries a flow class consistent with the run.
        assert!(spans
            .iter()
            .any(|sp| sp.class == draco_obs::FlowClass::VatHit));
        assert!(spans
            .iter()
            .any(|sp| sp.class == draco_obs::FlowClass::SptHit));
    }

    #[test]
    fn traced_and_untraced_sim_runs_agree() {
        let spec = catalog::httpd();
        let trace = TraceGenerator::new(&spec, 5).generate(10_000);
        let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
        let mut plain = DracoHwCore::new(SimConfig::table_ii(), &profile).unwrap();
        let mut traced = DracoHwCore::new(SimConfig::table_ii(), &profile).unwrap();
        traced.enable_span_trace(1 << 14, 1);
        let rp = plain.run(&trace);
        let rt = traced.run(&trace);
        assert_eq!(rp, rt, "tracing must not perturb the simulation");
        assert_eq!(plain.metrics(), traced.metrics());
    }

    #[test]
    fn vat_probes_mostly_hit_the_cache_hierarchy() {
        // The VAT is a few KB (§VII-A: "good TLB translation locality, as
        // well as natural caching"): most slow-flow probes land in L1.
        let r = run_workload("httpd", 20_000, ProfileKind::SyscallComplete);
        let (l1_hits, l1_misses) = r.cache_levels[0];
        assert!(l1_hits + l1_misses > 0, "slow flows touched memory");
        let rate = l1_hits as f64 / (l1_hits + l1_misses) as f64;
        assert!(rate > 0.8, "L1 hit rate for VAT traffic: {rate}");
    }
}
