//! Hardware Draco: a timing model of the paper's microarchitecture
//! (§V-D, §VI, §VII).
//!
//! The paper evaluates hardware Draco with cycle-level full-system
//! simulation (Simics + SST + DRAMSim2). This crate reproduces the
//! *syscall path* of that model — the only part the figures depend on,
//! since `syscall` is a serializing instruction whose checking latency
//! adds directly to execution time:
//!
//! * [`CacheHierarchy`] / [`Tlb`] — L1/L2/L3/DRAM with the paper's
//!   Table II parameters, used by VAT fetches;
//! * [`HwSpt`] — the per-core 384-entry System Call Permissions Table;
//! * [`Slb`] — the System Call Lookaside Buffer with per-argument-count
//!   set-associative subtables (Table II sizes);
//! * [`Stb`] — the 256-entry System Call Target Buffer, predicting the
//!   SID and VAT hash from the `syscall` instruction's PC;
//! * [`TemporaryBuffer`] — the 8-entry speculation shield (§IX):
//!   preloaded VAT entries wait here and move into the SLB only when the
//!   syscall commits; squashes clear it;
//! * [`DracoHwCore`] — the engine combining them according to the six
//!   execution flows of Table I, with context-switch invalidation and
//!   the Accessed-bit SPT save/restore of §VII-B;
//! * [`energy`] — the Table III area/time/energy constants and per-run
//!   energy estimates.
//!
//! # Example
//!
//! ```
//! use draco_sim::{DracoHwCore, SimConfig};
//! use draco_workloads::{catalog, TraceGenerator};
//! use draco_profiles::ProfileKind;
//!
//! let spec = catalog::ipc_pipe();
//! let trace = TraceGenerator::new(&spec, 1).generate(5_000);
//! let profile = draco_workloads::timing::profile_for_trace(
//!     &trace, ProfileKind::SyscallComplete);
//! let mut core = DracoHwCore::new(SimConfig::table_ii(), &profile)?;
//! let report = core.run(&trace);
//! // Hardware Draco is within ~1% of insecure (paper Fig. 12).
//! assert!(report.normalized_overhead() < 1.01);
//! # Ok::<(), draco_core::DracoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod cache;
mod config;
mod core_engine;
mod machine;
#[cfg(test)]
mod proptests;
pub mod energy;
mod slb;
mod spt_hw;
mod stb;
mod tempbuf;
mod tlb;

pub use cache::{AccessOutcome, Cache, CacheConfig, CacheHierarchy};
pub use config::{SimConfig, SlbConfig};
pub use core_engine::{DracoHwCore, Flow, FlowCounts, HwRunReport};
pub use machine::{Job, Machine, MachineReport};
pub use slb::{Slb, SlbEntry};
pub use spt_hw::{HwSpt, HwSptEntry};
pub use stb::{Stb, StbEntry};
pub use tempbuf::TemporaryBuffer;
pub use tlb::Tlb;
