//! The System Call Target Buffer (paper §VI-B, Fig. 8).

use core::fmt;

use draco_cuckoo::Way;
use draco_syscalls::SyscallId;

/// One STB entry: `PC | Valid | SID | Hash` (paper Fig. 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StbEntry {
    /// Address of the `syscall` instruction.
    pub pc: u64,
    /// The system call issued at this PC (unique per PC — paper: "there
    /// is only one single type of system call in a given PC").
    pub sid: SyscallId,
    /// The predicted VAT hash (of the last validated argument set seen
    /// at this PC).
    pub hash: u64,
    /// Which hash function produced it.
    pub way: Way,
}

/// The STB: PC-indexed, set-associative, LRU.
#[derive(Clone)]
pub struct Stb {
    sets: usize,
    ways: usize,
    entries: Vec<Vec<StbEntry>>,
    hits: u64,
    misses: u64,
}

impl Stb {
    /// Creates an STB (`entries` total slots, `ways`-associative).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(entries >= ways && entries.is_multiple_of(ways));
        Stb {
            sets: entries / ways,
            ways,
            entries: vec![Vec::new(); entries / ways],
            hits: 0,
            misses: 0,
        }
    }

    fn set_for(&self, pc: u64) -> usize {
        // Code addresses are strided and aligned; fold the whole PC so
        // sets fill evenly (hardware would XOR tag bits similarly).
        let folded = pc.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32;
        (folded % self.sets as u64) as usize
    }

    /// Looks up a PC (at ROB insertion).
    pub fn lookup(&mut self, pc: u64) -> Option<StbEntry> {
        let set = self.set_for(pc);
        let ways = &mut self.entries[set];
        if let Some(pos) = ways.iter().position(|e| e.pc == pc) {
            let e = ways.remove(pos);
            ways.insert(0, e);
            self.hits += 1;
            Some(ways[0])
        } else {
            self.misses += 1;
            None
        }
    }

    /// Installs or updates the entry for a PC.
    pub fn update(&mut self, entry: StbEntry) {
        let set = self.set_for(entry.pc);
        let ways = &mut self.entries[set];
        if let Some(pos) = ways.iter().position(|e| e.pc == entry.pc) {
            ways.remove(pos);
        }
        ways.insert(0, entry);
        if ways.len() > self.ways {
            ways.pop();
        }
    }

    /// Invalidates everything (context switch).
    pub fn invalidate_all(&mut self) {
        for set in &mut self.entries {
            set.clear();
        }
    }

    /// Hit rate over the run (Fig. 13 "STB").
    pub fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            0.0
        } else {
            self.hits as f64 / (self.hits + self.misses) as f64
        }
    }

    /// `(hits, misses)` counters.
    pub const fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Zeroes the hit/miss counters (steady-state measurement start).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

impl fmt::Debug for Stb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Stb({} sets x {} ways, {:.1}% hit)",
            self.sets,
            self.ways,
            self.hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pc: u64, nr: u16, hash: u64) -> StbEntry {
        StbEntry {
            pc,
            sid: SyscallId::new(nr),
            hash,
            way: Way::H1,
        }
    }

    #[test]
    fn update_then_lookup() {
        let mut stb = Stb::new(256, 2);
        assert!(stb.lookup(0x400).is_none());
        stb.update(entry(0x400, 0, 0xaa));
        let e = stb.lookup(0x400).expect("hit");
        assert_eq!(e.sid, SyscallId::new(0));
        assert_eq!(e.hash, 0xaa);
        assert_eq!(stb.stats(), (1, 1));
    }

    #[test]
    fn update_replaces_hash() {
        let mut stb = Stb::new(256, 2);
        stb.update(entry(0x400, 0, 0xaa));
        stb.update(entry(0x400, 0, 0xbb));
        assert_eq!(stb.lookup(0x400).unwrap().hash, 0xbb);
    }

    #[test]
    fn set_conflicts_evict_lru() {
        let mut stb = Stb::new(2, 2); // a single set: every PC conflicts
        let a = 0x100;
        let b = 0x104;
        let c = 0x108;
        stb.update(entry(a, 1, 1));
        stb.update(entry(b, 2, 2));
        stb.lookup(a); // a MRU
        stb.update(entry(c, 3, 3)); // evicts b
        assert!(stb.lookup(a).is_some());
        assert!(stb.lookup(b).is_none());
        assert!(stb.lookup(c).is_some());
    }

    #[test]
    fn invalidate_all_clears() {
        let mut stb = Stb::new(8, 2);
        stb.update(entry(0x100, 1, 1));
        stb.invalidate_all();
        assert!(stb.lookup(0x100).is_none());
    }

    #[test]
    fn hit_rate_reporting() {
        let mut stb = Stb::new(8, 2);
        stb.update(entry(0x10, 1, 1));
        stb.lookup(0x10);
        stb.lookup(0x20);
        assert!((stb.hit_rate() - 0.5).abs() < 1e-9);
        assert!(format!("{stb:?}").contains("hit"));
    }

    #[test]
    #[should_panic]
    fn bad_geometry_rejected() {
        let _ = Stb::new(5, 2);
    }
}
