//! Simulation parameters (paper Table II).

use crate::cache::CacheConfig;

/// SLB subtable geometry for one argument count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlbConfig {
    /// Total entries in the subtable.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

/// The full architectural configuration.
///
/// Defaults ([`SimConfig::table_ii`]) reproduce the paper's Table II:
/// 2 GHz OOO cores with a 128-entry ROB, 32 KB/8-way L1 (2 cycles),
/// 256 KB/8-way L2 (8 cycles), 8 MB/16-way shared L3 (32 cycles), and the
/// per-core Draco structures (256-entry 2-way STB, per-argument-count
/// SLB subtables, 8-entry temporary buffer, 384-entry SPT, all 2-cycle;
/// 3-cycle CRC hash per §XI-C).
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Core frequency in GHz (cycle ↔ ns conversion).
    pub freq_ghz: f64,
    /// Reorder buffer capacity (informational; syscalls serialize).
    pub rob_entries: usize,
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Shared L3.
    pub l3: CacheConfig,
    /// Main-memory latency in cycles (on an L3 miss).
    pub dram_cycles: u64,
    /// Data TLB entries.
    pub tlb_entries: usize,
    /// Page-walk penalty in cycles on a TLB miss.
    pub page_walk_cycles: u64,
    /// STB entries.
    pub stb_entries: usize,
    /// STB associativity.
    pub stb_ways: usize,
    /// SLB subtables indexed by argument count 1–6.
    pub slb: [SlbConfig; 6],
    /// Temporary buffer entries (speculation shield, §IX).
    pub temp_buffer_entries: usize,
    /// Hardware SPT entries (direct-mapped).
    pub spt_entries: usize,
    /// Access time of the Draco SRAM structures, cycles.
    pub draco_struct_cycles: u64,
    /// CRC hash latency, cycles (964 ps at 2 GHz → 3 cycles, §XI-C).
    pub crc_cycles: u64,
    /// Kernel entry/exit + software checking dispatch on a Draco miss
    /// that falls back to Seccomp, cycles.
    pub os_fallback_cycles: u64,
    /// Cycles per cBPF instruction in the fallback filter.
    pub bpf_insn_cycles: f64,
    /// Base (unchecked) kernel syscall cost, cycles.
    pub syscall_base_cycles: u64,
    /// Context-switch quantum in cycles (0 disables context switches).
    pub ctx_quantum_cycles: u64,
    /// Whether the OS saves/restores Accessed SPT entries across context
    /// switches (§VII-B) instead of starting cold.
    pub spt_save_restore: bool,
    /// Whether STB-driven SLB preloading is enabled (disabling it leaves
    /// only flows 5/6 — an ablation).
    pub preload_enabled: bool,
    /// Whether the SLB exists at all. `false` models the paper's
    /// *initial* hardware design (§V-D): a hardware SPT whose
    /// argument checks always hash and probe the in-memory VAT at the
    /// ROB head — the design §VI improves on.
    pub slb_enabled: bool,
    /// SMT contexts sharing a core: structures are partitioned per
    /// context (§VII-B), shrinking each context's share.
    pub smt_contexts: usize,
}

impl SimConfig {
    /// The paper's Table II configuration.
    pub fn table_ii() -> Self {
        SimConfig {
            freq_ghz: 2.0,
            rob_entries: 128,
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                latency_cycles: 2,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                ways: 8,
                line_bytes: 64,
                latency_cycles: 8,
            },
            l3: CacheConfig {
                size_bytes: 8 * 1024 * 1024,
                ways: 16,
                line_bytes: 64,
                latency_cycles: 32,
            },
            dram_cycles: 120,
            tlb_entries: 64,
            page_walk_cycles: 40,
            stb_entries: 256,
            stb_ways: 2,
            slb: [
                SlbConfig { entries: 32, ways: 4 }, // 1 arg
                SlbConfig { entries: 64, ways: 4 }, // 2 args
                SlbConfig { entries: 64, ways: 4 }, // 3 args
                SlbConfig { entries: 32, ways: 4 }, // 4 args
                SlbConfig { entries: 32, ways: 4 }, // 5 args
                SlbConfig { entries: 16, ways: 4 }, // 6 args
            ],
            temp_buffer_entries: 8,
            spt_entries: 384,
            draco_struct_cycles: 2,
            crc_cycles: 3,
            os_fallback_cycles: 500,
            bpf_insn_cycles: 2.5,
            syscall_base_cycles: 320,
            ctx_quantum_cycles: 8_000_000, // 4 ms at 2 GHz
            spt_save_restore: true,
            preload_enabled: true,
            slb_enabled: true,
            smt_contexts: 1,
        }
    }

    /// A small-core (embedded / edge) variant: half-size caches and
    /// Draco structures at 1 GHz — for sizing studies beyond the paper's
    /// server configuration.
    pub fn small_core() -> Self {
        let mut c = SimConfig::table_ii();
        c.freq_ghz = 1.0;
        c.l1.size_bytes /= 2;
        c.l2.size_bytes /= 2;
        c.l3.size_bytes /= 4;
        c.stb_entries /= 2;
        for s in &mut c.slb {
            s.entries = (s.entries / 2).max(s.ways);
        }
        c.spt_entries /= 2;
        c
    }

    /// Converts nanoseconds of modeled application time to cycles.
    pub fn ns_to_cycles(&self, ns: u64) -> u64 {
        (ns as f64 * self.freq_ghz).round() as u64
    }

    /// Converts cycles back to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_ghz
    }

    /// The SLB geometry for a given argument count (1–6), scaled down by
    /// the SMT partition count.
    ///
    /// # Panics
    ///
    /// Panics if `args` is 0 or greater than 6.
    pub fn slb_for(&self, args: usize) -> SlbConfig {
        assert!((1..=6).contains(&args), "SLB subtables cover 1-6 args");
        let base = self.slb[args - 1];
        SlbConfig {
            entries: (base.entries / self.smt_contexts).max(base.ways),
            ways: base.ways,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent parameters.
    pub fn validate(&self) {
        assert!(self.freq_ghz > 0.0);
        assert!(self.smt_contexts >= 1);
        assert!(self.temp_buffer_entries >= 1);
        assert!(self.spt_entries >= 1);
        for (i, s) in self.slb.iter().enumerate() {
            assert!(
                s.entries % s.ways == 0,
                "SLB[{}]: entries must be a multiple of ways",
                i + 1
            );
        }
        assert!(self.stb_entries.is_multiple_of(self.stb_ways));
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::table_ii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_matches_paper() {
        let c = SimConfig::table_ii();
        c.validate();
        assert_eq!(c.freq_ghz, 2.0);
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l1.latency_cycles, 2);
        assert_eq!(c.l2.latency_cycles, 8);
        assert_eq!(c.l3.latency_cycles, 32);
        assert_eq!(c.stb_entries, 256);
        assert_eq!(c.slb[1].entries, 64); // 2-arg subtable
        assert_eq!(c.slb[5].entries, 16); // 6-arg subtable
        assert_eq!(c.temp_buffer_entries, 8);
        assert_eq!(c.spt_entries, 384);
        assert_eq!(c.crc_cycles, 3);
    }

    #[test]
    fn ns_cycle_conversions() {
        let c = SimConfig::table_ii();
        assert_eq!(c.ns_to_cycles(100), 200);
        assert_eq!(c.cycles_to_ns(200), 100.0);
    }

    #[test]
    fn smt_partitions_shrink_slb() {
        let mut c = SimConfig::table_ii();
        c.smt_contexts = 2;
        assert_eq!(c.slb_for(2).entries, 32);
        // Never below one full set.
        c.smt_contexts = 64;
        assert_eq!(c.slb_for(6).entries, 4);
    }

    #[test]
    fn small_core_is_valid_and_smaller() {
        let small = SimConfig::small_core();
        small.validate();
        let big = SimConfig::table_ii();
        assert!(small.l1.size_bytes < big.l1.size_bytes);
        assert!(small.slb_for(2).entries < big.slb_for(2).entries);
        assert_eq!(small.freq_ghz, 1.0);
    }

    #[test]
    #[should_panic(expected = "1-6 args")]
    fn slb_for_zero_args_panics() {
        let _ = SimConfig::table_ii().slb_for(0);
    }
}
