//! The multicore machine (paper Fig. 10): per-core Draco structures, a
//! shared workload set, and the two deployment shapes that matter for
//! the design:
//!
//! * **dedicated** — one process per core, the paper's measurement setup.
//!   Draco structures are per-core and never invalidate, so no coherence
//!   support is needed (§VII-B "Data Coherence").
//! * **time-shared** — processes rotate over cores on a quantum; every
//!   swap invalidates the outgoing process's SLB/STB/SPT (restoring the
//!   Accessed SPT entries when enabled), exercising the §VII-B
//!   context-switch machinery under real contention.

use core::fmt;

use draco_profiles::ProfileSpec;
use draco_workloads::SyscallTrace;

use crate::config::SimConfig;
use crate::core_engine::{DracoHwCore, HwRunReport};

/// One schedulable job: a process's profile plus its syscall trace.
#[derive(Clone, Debug)]
pub struct Job {
    /// Job label (usually the workload name).
    pub name: String,
    /// The installed profile.
    pub profile: ProfileSpec,
    /// The system call trace to execute.
    pub trace: SyscallTrace,
}

/// Aggregate of a machine run.
#[derive(Clone, Debug)]
pub struct MachineReport {
    /// Per-job reports, in job order.
    pub jobs: Vec<(String, HwRunReport)>,
}

impl MachineReport {
    /// Geometric mean of per-job normalized overheads.
    pub fn mean_overhead(&self) -> f64 {
        let logs: f64 = self
            .jobs
            .iter()
            .map(|(_, r)| r.normalized_overhead().ln())
            .sum();
        (logs / self.jobs.len() as f64).exp()
    }

    /// Total context switches across all cores.
    pub fn total_ctx_switches(&self) -> u64 {
        self.jobs.iter().map(|(_, r)| r.ctx_switches).sum()
    }

    /// Total software-check fallbacks.
    pub fn total_filter_runs(&self) -> u64 {
        self.jobs.iter().map(|(_, r)| r.filter_runs).sum()
    }
}

impl fmt::Display for MachineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} jobs, mean overhead {:.4}x, {} ctx switches, {} fallbacks",
            self.jobs.len(),
            self.mean_overhead(),
            self.total_ctx_switches(),
            self.total_filter_runs()
        )
    }
}

/// A multicore machine running Draco-checked jobs.
#[derive(Debug)]
pub struct Machine {
    config: SimConfig,
    jobs: Vec<Job>,
}

impl Machine {
    /// Builds a machine for a set of jobs.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is empty.
    pub fn new(config: SimConfig, jobs: Vec<Job>) -> Self {
        assert!(!jobs.is_empty(), "a machine needs at least one job");
        config.validate();
        Machine { config, jobs }
    }

    /// Dedicated cores: each job runs alone on its own core (the paper's
    /// setup). Self-induced quantum context switches still apply per the
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns a checker-construction error if a profile fails to
    /// compile.
    pub fn run_dedicated(
        &self,
        warmup_ops: usize,
    ) -> Result<MachineReport, draco_core::DracoError> {
        let mut reports = Vec::with_capacity(self.jobs.len());
        for job in &self.jobs {
            let mut core = DracoHwCore::new(self.config.clone(), &job.profile)?;
            let report = core.run_measured(&job.trace, warmup_ops);
            reports.push((job.name.clone(), report));
        }
        Ok(MachineReport { jobs: reports })
    }

    /// Time-shared cores: jobs advance round-robin in `quantum_ops`
    /// slices; each descheduling invalidates the job's hardware Draco
    /// state (its core is given to another process in between).
    ///
    /// # Errors
    ///
    /// Returns a checker-construction error if a profile fails to
    /// compile.
    ///
    /// # Panics
    ///
    /// Panics if `quantum_ops` is zero.
    pub fn run_timeshared(
        &self,
        quantum_ops: usize,
    ) -> Result<MachineReport, draco_core::DracoError> {
        assert!(quantum_ops > 0, "quantum must be at least one op");
        let mut cores = Vec::with_capacity(self.jobs.len());
        for job in &self.jobs {
            cores.push(DracoHwCore::new(self.config.clone(), &job.profile)?);
        }
        let mut cursors = vec![0usize; self.jobs.len()];
        let mut partials: Vec<Vec<HwRunReport>> = vec![Vec::new(); self.jobs.len()];
        loop {
            let mut progressed = false;
            for (i, job) in self.jobs.iter().enumerate() {
                if cursors[i] >= job.trace.len() {
                    continue;
                }
                progressed = true;
                let slice = job.trace.skip(cursors[i]).take(quantum_ops);
                cursors[i] += slice.len();
                let report = cores[i].run(&slice);
                partials[i].push(report);
                // Descheduled: another process takes the core.
                cores[i].inject_context_switch();
            }
            if !progressed {
                break;
            }
        }
        let reports = self
            .jobs
            .iter()
            .zip(partials)
            .map(|(job, parts)| (job.name.clone(), merge_reports(&job.name, parts)))
            .collect();
        Ok(MachineReport { jobs: reports })
    }
}

impl Machine {
    /// SMT co-run: jobs share cores as hardware contexts with
    /// *partitioned* Draco structures (§VII-B / §IX: "in the presence of
    /// SMT, the SLB, STB, and SPT structures are partitioned on a
    /// per-context basis"). Each context keeps its (smaller) share warm
    /// across interleavings — no invalidation, unlike time-sharing.
    ///
    /// # Errors
    ///
    /// Returns a checker-construction error if a profile fails to
    /// compile.
    ///
    /// # Panics
    ///
    /// Panics if `quantum_ops` is zero.
    pub fn run_smt(&self, quantum_ops: usize) -> Result<MachineReport, draco_core::DracoError> {
        assert!(quantum_ops > 0, "quantum must be at least one op");
        let mut config = self.config.clone();
        config.smt_contexts = self.jobs.len().max(1);
        let mut cores = Vec::with_capacity(self.jobs.len());
        for job in &self.jobs {
            cores.push(DracoHwCore::new(config.clone(), &job.profile)?);
        }
        let mut cursors = vec![0usize; self.jobs.len()];
        let mut partials: Vec<Vec<HwRunReport>> = vec![Vec::new(); self.jobs.len()];
        loop {
            let mut progressed = false;
            for (i, job) in self.jobs.iter().enumerate() {
                if cursors[i] >= job.trace.len() {
                    continue;
                }
                progressed = true;
                let slice = job.trace.skip(cursors[i]).take(quantum_ops);
                cursors[i] += slice.len();
                partials[i].push(cores[i].run(&slice));
                // No invalidation: the partition persists across the
                // other context's slices.
            }
            if !progressed {
                break;
            }
        }
        let reports = self
            .jobs
            .iter()
            .zip(partials)
            .map(|(job, parts)| (job.name.clone(), merge_reports(&job.name, parts)))
            .collect();
        Ok(MachineReport { jobs: reports })
    }
}

/// Sums a job's per-quantum reports into one (rates re-derived from the
/// final slice's cumulative counters, which the core carries across
/// `run` calls).
fn merge_reports(name: &str, parts: Vec<HwRunReport>) -> HwRunReport {
    let last = parts.last().expect("at least one quantum").clone();
    let mut total = HwRunReport {
        workload: name.to_owned(),
        total_cycles: 0,
        baseline_cycles: 0,
        check_cycles: 0,
        // Flow counts, accesses and rates accumulate inside the core, so
        // the last slice's view is already cumulative.
        flows: last.flows,
        stb_hit_rate: last.stb_hit_rate,
        slb_access_hit_rate: last.slb_access_hit_rate,
        slb_preload_hit_rate: last.slb_preload_hit_rate,
        filter_runs: last.filter_runs,
        filter_insns: last.filter_insns,
        denials: last.denials,
        ctx_switches: last.ctx_switches,
        accesses: last.accesses,
        vat_footprint_bytes: last.vat_footprint_bytes,
        flow_cycles: last.flow_cycles,
        cache_levels: last.cache_levels,
    };
    for p in &parts {
        total.total_cycles += p.total_cycles;
        total.baseline_cycles += p.baseline_cycles;
        total.check_cycles += p.check_cycles;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use draco_profiles::ProfileKind;
    use draco_workloads::{catalog, timing, TraceGenerator};

    fn jobs(n: usize, ops: usize) -> Vec<Job> {
        catalog::all()
            .into_iter()
            .take(n)
            .map(|spec| {
                let trace = TraceGenerator::new(&spec, 3).generate(ops);
                let profile =
                    timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
                Job {
                    name: spec.name.to_owned(),
                    profile,
                    trace,
                }
            })
            .collect()
    }

    fn quiet_config() -> SimConfig {
        let mut c = SimConfig::table_ii();
        c.ctx_quantum_cycles = 0; // only explicit scheduling switches
        c
    }

    #[test]
    fn dedicated_run_matches_paper_overhead() {
        let machine = Machine::new(quiet_config(), jobs(4, 8_000));
        let report = machine.run_dedicated(2_000).expect("runs");
        assert_eq!(report.jobs.len(), 4);
        assert!(report.mean_overhead() < 1.01, "{}", report.mean_overhead());
        assert_eq!(report.total_ctx_switches(), 0);
    }

    #[test]
    fn timesharing_costs_more_than_dedicated() {
        let machine = Machine::new(quiet_config(), jobs(3, 6_000));
        let dedicated = machine.run_dedicated(0).expect("runs");
        let shared = machine.run_timeshared(200).expect("runs");
        assert!(shared.total_ctx_switches() > 0);
        assert!(
            shared.jobs.iter().map(|(_, r)| r.check_cycles).sum::<u64>()
                > dedicated.jobs.iter().map(|(_, r)| r.check_cycles).sum::<u64>(),
            "swaps cost refills"
        );
        // Decisions are identical either way.
        assert_eq!(
            shared.jobs.iter().map(|(_, r)| r.denials).sum::<u64>(),
            dedicated.jobs.iter().map(|(_, r)| r.denials).sum::<u64>()
        );
    }

    #[test]
    fn coarser_quanta_amortize_invalidation() {
        let machine = Machine::new(quiet_config(), jobs(2, 6_000));
        let fine = machine.run_timeshared(50).expect("runs");
        let coarse = machine.run_timeshared(2_000).expect("runs");
        assert!(fine.total_ctx_switches() > coarse.total_ctx_switches());
        let check = |r: &MachineReport| -> u64 {
            r.jobs.iter().map(|(_, x)| x.check_cycles).sum()
        };
        assert!(check(&fine) > check(&coarse));
    }

    #[test]
    fn timeshared_processes_complete_fully() {
        let machine = Machine::new(quiet_config(), jobs(3, 1_000));
        let report = machine.run_timeshared(333).expect("runs");
        for (name, r) in &report.jobs {
            assert_eq!(r.flows.total(), 1_000, "{name}");
        }
        assert!(report.to_string().contains("3 jobs"));
    }

    fn jobs_named(names: &[&str], ops: usize) -> Vec<Job> {
        names
            .iter()
            .map(|name| {
                let spec = catalog::by_name(name).expect("in catalog");
                let trace = TraceGenerator::new(&spec, 3).generate(ops);
                let profile =
                    timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
                Job {
                    name: (*name).to_owned(),
                    profile,
                    trace,
                }
            })
            .collect()
    }

    #[test]
    fn smt_partitioning_beats_fine_timesharing_for_small_working_sets() {
        // For jobs whose hot sets fit a half-size partition (the IPC
        // benchmarks), keeping the partition warm beats invalidating
        // full-size structures at every swap. (For tail-heavy jobs the
        // trade can go the other way — partition conflicts are a real
        // cost of SMT, which is why the paper partitions rather than
        // shares.)
        let machine = Machine::new(quiet_config(), jobs_named(&["pipe", "fifo"], 6_000));
        let smt = machine.run_smt(50).expect("runs");
        let shared = machine.run_timeshared(50).expect("runs");
        let check = |r: &MachineReport| -> u64 {
            r.jobs.iter().map(|(_, x)| x.check_cycles).sum()
        };
        assert!(
            check(&smt) < check(&shared),
            "smt {} vs timeshared {}",
            check(&smt),
            check(&shared)
        );
        assert_eq!(smt.total_ctx_switches(), 0, "partitions do not invalidate");
        // And decisions are identical.
        assert_eq!(
            smt.jobs.iter().map(|(_, r)| r.denials).sum::<u64>(),
            shared.jobs.iter().map(|(_, r)| r.denials).sum::<u64>()
        );
    }

    #[test]
    fn smt_partition_hit_rates_trail_dedicated() {
        let machine = Machine::new(quiet_config(), jobs(2, 8_000));
        let dedicated = machine.run_dedicated(0).expect("runs");
        let smt = machine.run_smt(100).expect("runs");
        for ((_, d), (_, s)) in dedicated.jobs.iter().zip(&smt.jobs) {
            assert!(
                s.slb_access_hit_rate <= d.slb_access_hit_rate + 0.02,
                "partitioned SLB cannot out-hit the full one: {} vs {}",
                s.slb_access_hit_rate,
                d.slb_access_hit_rate
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn empty_machine_rejected() {
        let _ = Machine::new(SimConfig::table_ii(), vec![]);
    }
}
