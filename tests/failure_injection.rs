//! Failure injection: table pressure, speculative squashes, context-switch
//! storms, and mid-trace denials must never change decisions — only
//! costs.

use draco::core::{DracoChecker, DracoProcess, ProcessId};
use draco::profiles::{ProfileGenerator, ProfileKind, ProfileSpec};
use draco::sim::{DracoHwCore, SimConfig};
use draco::syscalls::{ArgSet, SyscallId, SyscallRequest};
use draco::workloads::{catalog, timing, SyscallTrace, TraceGenerator, TraceOp};

/// A profile admitting `read` with `sets` distinct (fd, count) pairs.
fn read_profile(sets: usize) -> ProfileSpec {
    let mut gen = ProfileGenerator::new("inject");
    for i in 0..sets {
        gen.observe(&SyscallRequest::new(
            0x1000,
            SyscallId::new(0),
            ArgSet::from_slice(&[i as u64, 0, 64]),
        ));
    }
    gen.emit(ProfileKind::SyscallComplete)
}

#[test]
fn vat_pressure_evictions_only_cost_revalidation() {
    // Overwhelm one syscall's VAT table with far more argument sets than
    // it holds: entries get evicted, but every re-encounter revalidates
    // through the filter and is still allowed.
    let sets = 512;
    let profile = read_profile(sets);
    // An OS under memory pressure caps the VAT far below the whitelist.
    let mut checker = DracoChecker::from_profile(&profile)
        .unwrap()
        .with_vat_capacity_cap(32);
    // Three sweeps over all sets.
    for sweep in 0..3 {
        for i in 0..sets {
            let req = SyscallRequest::new(
                0x1000,
                SyscallId::new(0),
                ArgSet::from_slice(&[i as u64, 0xdead, 64]),
            );
            let result = checker.check(&req);
            assert!(result.action.permits(), "sweep {sweep}, set {i}");
        }
    }
    let evictions = checker.vat().total_evictions();
    assert!(evictions > 0, "pressure must evict");
    // A cyclic sweep over 512 sets through a 32-entry table is pure
    // capacity streaming — but a hot set re-touched immediately still
    // hits, proving eviction didn't poison the cache.
    let hot = SyscallRequest::new(
        0x1000,
        SyscallId::new(0),
        ArgSet::from_slice(&[1, 0, 64]),
    );
    checker.check(&hot);
    let before = checker.stats().vat_hits;
    checker.check(&hot);
    assert_eq!(checker.stats().vat_hits, before + 1);
}

#[test]
fn squash_storm_never_corrupts_decisions() {
    let spec = catalog::by_name("pipe").unwrap();
    let trace = TraceGenerator::new(&spec, 3).generate(2_000);
    let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
    let mut config = SimConfig::table_ii();
    config.ctx_quantum_cycles = 0;
    let mut core = DracoHwCore::new(config, &profile).unwrap();
    // Interleave single-op runs with squashes.
    let mut denials = 0;
    for op in trace.ops() {
        let r = core.run(&SyscallTrace::from_ops("one", vec![*op]));
        denials = r.denials;
        core.inject_squash();
        assert!(core.temp_buffer().is_empty());
    }
    assert_eq!(denials, 0, "squashes must not flip verdicts");
}

#[test]
fn context_switch_storm_preserves_decisions_and_costs_more() {
    let spec = catalog::by_name("unixbench-syscall").unwrap();
    let trace = TraceGenerator::new(&spec, 9).generate(10_000);
    let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);

    let mut calm_cfg = SimConfig::table_ii();
    calm_cfg.ctx_quantum_cycles = 0;
    let mut calm = DracoHwCore::new(calm_cfg, &profile).unwrap();
    let calm_report = calm.run(&trace);

    let mut stormy_cfg = SimConfig::table_ii();
    stormy_cfg.ctx_quantum_cycles = 50_000; // absurdly frequent
    let mut stormy = DracoHwCore::new(stormy_cfg, &profile).unwrap();
    let stormy_report = stormy.run(&trace);

    assert_eq!(calm_report.denials, 0);
    assert_eq!(stormy_report.denials, 0);
    assert!(stormy_report.ctx_switches > 100);
    assert!(
        stormy_report.check_cycles > calm_report.check_cycles,
        "cold tables must cost cycles: {} vs {}",
        stormy_report.check_cycles,
        calm_report.check_cycles
    );
}

#[test]
fn denial_mid_trace_kills_the_process_exactly_once() {
    let mut gen = ProfileGenerator::new("strict");
    gen.observe(&SyscallRequest::new(
        0,
        SyscallId::new(39),
        ArgSet::empty(),
    ));
    let profile = gen.emit(ProfileKind::SyscallComplete);
    let mut proc = DracoProcess::spawn(ProcessId(1), &profile).unwrap();

    // Allowed call works.
    let ok = proc.syscall(&SyscallRequest::new(0, SyscallId::new(39), ArgSet::empty()));
    assert!(ok.action.permits());
    assert!(proc.is_alive());
    // Forbidden call kills.
    let bad = proc.syscall(&SyscallRequest::new(0, SyscallId::new(41), ArgSet::empty()));
    assert!(!bad.action.permits());
    assert!(!proc.is_alive());
    // The checker never runs again for the dead process.
    let total_before = proc.stats().total();
    let _ = proc.syscall(&SyscallRequest::new(0, SyscallId::new(39), ArgSet::empty()));
    assert_eq!(proc.stats().total(), total_before);
}

#[test]
fn flush_mid_stream_only_costs_warmup() {
    let spec = catalog::by_name("fifo").unwrap();
    let trace = TraceGenerator::new(&spec, 4).generate(4_000);
    let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
    let mut checker = DracoChecker::from_profile(&profile).unwrap();
    let mut denied = 0;
    for (i, req) in trace.requests().enumerate() {
        if i % 500 == 499 {
            checker.flush();
        }
        if !checker.check(&req).action.permits() {
            denied += 1;
        }
    }
    assert_eq!(denied, 0);
    // Flushes forced extra filter runs beyond the distinct-set count.
    let stats = checker.stats();
    assert!(stats.filter_runs > 8, "flushes force revalidation");
    assert!(stats.cache_hit_rate() > 0.5, "cache still effective");
}

#[test]
fn tiny_slb_still_correct_just_slower() {
    let spec = catalog::by_name("httpd").unwrap();
    let trace = TraceGenerator::new(&spec, 8).generate(8_000);
    let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);

    let mut tiny_cfg = SimConfig::table_ii();
    for s in &mut tiny_cfg.slb {
        s.entries = 4;
        s.ways = 4;
    }
    tiny_cfg.ctx_quantum_cycles = 0;
    let mut tiny = DracoHwCore::new(tiny_cfg, &profile).unwrap();
    let tiny_report = tiny.run(&trace);

    let mut full_cfg = SimConfig::table_ii();
    full_cfg.ctx_quantum_cycles = 0;
    let mut full = DracoHwCore::new(full_cfg, &profile).unwrap();
    let full_report = full.run(&trace);

    assert_eq!(tiny_report.denials, 0);
    assert!(tiny_report.slb_access_hit_rate < full_report.slb_access_hit_rate);
    assert!(tiny_report.check_cycles > full_report.check_cycles);
}

/// A hot reload refused by `ReloadPolicy::RequireRefinement` mid-traffic
/// is a non-event for the tenant: the old filter keeps serving, nothing
/// is flushed (warmed keys still hit), decisions are unchanged, and the
/// refusal is counted — not silently swallowed, not a kill.
#[test]
fn refused_reload_mid_traffic_keeps_serving_on_the_old_filter() {
    use draco::core::{DracoError, ReloadPolicy};
    use draco::dracod::{DracoService, ServiceConfig, ServiceError};

    let profile = read_profile(4);
    // A *relaxation*: everything the old profile admits plus write(2),
    // which was never observed. RequireRefinement must refuse it.
    let relaxed = {
        let mut gen = ProfileGenerator::new("inject-relaxed");
        for i in 0..4 {
            gen.observe(&SyscallRequest::new(
                0x1000,
                SyscallId::new(0),
                ArgSet::from_slice(&[i as u64, 0, 64]),
            ));
        }
        gen.observe(&SyscallRequest::new(
            0x1000,
            SyscallId::new(1),
            ArgSet::from_slice(&[1, 0, 8]),
        ));
        gen.emit(ProfileKind::SyscallComplete)
    };

    let mut svc = DracoService::new(ServiceConfig {
        reload_policy: ReloadPolicy::RequireRefinement,
        ..ServiceConfig::default()
    });
    let tenant = svc.register(&profile).unwrap();
    let stream: Vec<SyscallRequest> = (0..32u64)
        .map(|n| {
            SyscallRequest::new(
                0x1000,
                SyscallId::new(0),
                ArgSet::from_slice(&[n % 4, 0, 64]),
            )
        })
        .collect();

    // Warm the tables mid-traffic, then inject the refused reload.
    let mut before = Vec::new();
    svc.submit_all(tenant, &stream).unwrap();
    svc.drain_with(|_, _, d| before.push(d));
    assert!(before.iter().all(|d| d.action.permits()));

    let err = svc.reload(tenant, &relaxed).expect_err("relaxation refused");
    assert!(
        matches!(
            err,
            ServiceError::Draco(DracoError::ReloadRejected { .. })
        ),
        "unexpected error: {err}"
    );

    // Traffic continues on the old filter: same decisions, and the
    // warmed keys still come from the cache — a flush would betray a
    // partially applied reload.
    let mut after = Vec::new();
    svc.submit_all(tenant, &stream).unwrap();
    svc.drain_with(|_, _, d| after.push(d));
    assert_eq!(after.len(), before.len());
    assert!(after.iter().all(|d| d.action.permits()));
    assert!(
        after.iter().all(|d| d.path.is_cache_hit()),
        "refusal must not flush the tenant's tables"
    );
    // And write(2) — the relaxation's new admission — is still denied.
    let mut write_decision = None;
    svc.submit(
        tenant,
        SyscallRequest::new(0x1000, SyscallId::new(1), ArgSet::from_slice(&[1, 0, 8])),
    )
    .unwrap();
    svc.drain_with(|_, _, d| write_decision = Some(d));
    assert!(!write_decision.unwrap().action.permits());

    // The refusal is counted, on the tenant and on the service.
    let stats = svc.tenant_stats(tenant).unwrap();
    assert_eq!(stats.reloads_refused, 1);
    assert_eq!(stats.reloads_permitted, 0);
    assert_eq!(svc.counters().reloads_refused, 1);
}

#[test]
fn trace_with_unknown_syscall_ids_is_denied_not_crashed() {
    let profile = read_profile(2);
    let mut checker = DracoChecker::from_profile(&profile).unwrap();
    for nr in [391u16, 423, 999, u16::MAX] {
        let req = SyscallRequest::new(0, SyscallId::new(nr), ArgSet::empty());
        let r = checker.check(&req);
        assert!(!r.action.permits(), "nr {nr}");
    }
    // Hardware path handles them too.
    let mut core = DracoHwCore::new(SimConfig::table_ii(), &profile).unwrap();
    let ops = vec![TraceOp {
        compute_ns: 10,
        pc: 0x10,
        nr: 999,
        args: [0; 6],
    }];
    let r = core.run(&SyscallTrace::from_ops("weird", ops));
    assert_eq!(r.denials, 1);
}
