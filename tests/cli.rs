//! End-to-end tests of the `dracoctl` binary.

use std::process::{Command, Stdio};

fn dracoctl(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dracoctl"))
        .args(args)
        .stdin(Stdio::null())
        .output()
        .expect("dracoctl runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn no_args_prints_usage_and_fails() {
    let (code, _, err) = dracoctl(&[]);
    assert_eq!(code, 2);
    assert!(err.contains("usage:"));
}

#[test]
fn profile_stats_for_builtins() {
    for (name, syscalls) in [("docker", "358"), ("gvisor", "74"), ("firecracker", "37")] {
        let (code, out, _) = dracoctl(&["profile", "stats", name]);
        assert_eq!(code, 0, "{name}");
        assert!(out.contains(syscalls), "{name}: {out}");
        assert!(out.contains("surface by subsystem"));
        assert!(out.contains("cBPF instructions"));
    }
}

#[test]
fn profile_json_roundtrips_through_a_file() {
    let (code, json, _) = dracoctl(&["profile", "json", "firecracker"]);
    assert_eq!(code, 0);
    let path = std::env::temp_dir().join("dracoctl-cli-test.json");
    std::fs::write(&path, &json).expect("write temp profile");
    let (code, out, _) = dracoctl(&["profile", "stats", path.to_str().unwrap()]);
    assert_eq!(code, 0);
    assert!(out.contains("37 syscalls"));
}

#[test]
fn profile_disasm_emits_listing() {
    let (code, out, _) = dracoctl(&["profile", "disasm", "firecracker"]);
    assert_eq!(code, 0);
    assert!(out.contains("; filter 1 of 1"));
    assert!(out.contains("ld  [4]"), "arch load first");
    assert!(out.contains("ret"));
    // Tree layout also works.
    let (code, tree, _) = dracoctl(&["profile", "disasm", "firecracker", "--tree"]);
    assert_eq!(code, 0);
    assert!(tree.contains("jgt"), "binary search pivots present");
}

#[test]
fn check_exit_code_reflects_verdict() {
    let (code, out, _) = dracoctl(&["check", "docker", "personality", "0xffffffff"]);
    assert_eq!(code, 0);
    assert!(out.contains("allow"));
    assert!(out.contains("VatHit"), "second check hits the cache: {out}");
    let (code, out, _) = dracoctl(&["check", "docker", "ptrace"]);
    assert_eq!(code, 1, "denied verdicts exit nonzero");
    assert!(out.contains("errno"));
}

#[test]
fn check_unknown_syscall_errors() {
    let (code, _, err) = dracoctl(&["check", "docker", "frobnicate"]);
    assert_eq!(code, 1);
    assert!(err.contains("unknown syscall"));
}

#[test]
fn trace_gen_and_analyze_pipeline() {
    let (code, json, _) = dracoctl(&["trace", "gen", "pipe", "--ops", "200", "--seed", "9"]);
    assert_eq!(code, 0);
    let path = std::env::temp_dir().join("dracoctl-cli-trace.json");
    std::fs::write(&path, &json).expect("write temp trace");
    let (code, out, _) = dracoctl(&["trace", "analyze", path.to_str().unwrap()]);
    assert_eq!(code, 0);
    assert!(out.contains("pipe: 200 calls"));
    assert!(out.contains("read"));
}

#[test]
fn stats_json_round_trips_through_the_registry_schema() {
    let (code, out, _) = dracoctl(&["stats", "pipe", "--ops", "500", "--json"]);
    assert_eq!(code, 0);
    // The emitted JSON is a complete, parseable MetricsRegistry.
    let registry: draco::obs::MetricsRegistry =
        serde_json::from_str(&out).expect("stats --json is a MetricsRegistry");
    assert_eq!(registry.checker.total(), 500);
    assert!(registry.checker.vat_hits > 0);
    assert!(registry.cuckoo.probe_length.count() > 0);
    // And it survives a second round trip bit-identically.
    let again = serde_json::to_string(&registry).expect("serializes");
    let back: draco::obs::MetricsRegistry = serde_json::from_str(&again).expect("parses");
    assert_eq!(back, registry);
}

#[test]
fn stats_prints_quantile_upper_bounds() {
    let (code, out, _) = dracoctl(&["stats", "pipe", "--ops", "500"]);
    assert_eq!(code, 0);
    assert!(out.contains("quantile upper bounds"), "{out}");
    assert!(out.contains("probe-length     : p50<="), "{out}");
    assert!(out.contains("insns/filter-run : p50<="), "{out}");
}

#[test]
fn trace_span_chrome_format_is_valid_and_staged() {
    let (code, out, _) = dracoctl(&[
        "trace", "pipe", "--ops", "500", "--sample", "1", "--format", "chrome",
    ]);
    assert_eq!(code, 0);
    let doc: serde_json::Value = serde_json::from_str(&out).expect("chrome trace is JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut stages = std::collections::BTreeSet::new();
    for ev in events {
        assert_eq!(ev.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert!(ev.get("dur").and_then(serde_json::Value::as_f64).is_some());
        stages.insert(ev.get("name").and_then(|v| v.as_str()).expect("name").to_owned());
    }
    assert!(stages.len() >= 4, "distinct stages: {stages:?}");
    assert!(stages.contains("spt-lookup"), "{stages:?}");
    assert!(stages.contains("filter-exec"), "{stages:?}");
}

#[test]
fn trace_span_folded_format_collapses_stacks() {
    let (code, out, _) = dracoctl(&[
        "trace", "pipe", "--ops", "500", "--sample", "1", "--format", "folded",
    ]);
    assert_eq!(code, 0);
    assert!(!out.is_empty());
    for line in out.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("`stack count` shape");
        assert!(stack.contains(';'), "class;stage frames: {line}");
        count.parse::<u64>().expect("numeric count");
    }
    assert!(out.contains("vat-hit;"), "{out}");
    // Hardware spans surface the sim-only stages.
    let (code, hw, _) = dracoctl(&[
        "trace", "pipe", "--ops", "500", "--sample", "1", "--format", "folded", "--hw",
    ]);
    assert_eq!(code, 0);
    assert!(hw.contains("stb-predict"), "{hw}");
    assert!(hw.contains("slb-access"), "{hw}");
}

#[test]
fn trace_span_rejects_bad_format() {
    let (code, _, err) = dracoctl(&["trace", "pipe", "--format", "xml"]);
    assert_eq!(code, 2);
    assert!(err.contains("chrome"), "{err}");
}

#[test]
fn workloads_lists_the_catalog() {
    let (code, out, _) = dracoctl(&["workloads"]);
    assert_eq!(code, 0);
    for name in ["httpd", "elasticsearch", "mq", "hpcc"] {
        assert!(out.contains(name), "{name} missing");
    }
    assert_eq!(out.lines().count(), 15);
}
