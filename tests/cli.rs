//! End-to-end tests of the `dracoctl` binary.

use std::process::{Command, Stdio};

fn dracoctl(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dracoctl"))
        .args(args)
        .stdin(Stdio::null())
        .output()
        .expect("dracoctl runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn no_args_prints_usage_and_fails() {
    let (code, _, err) = dracoctl(&[]);
    assert_eq!(code, 2);
    assert!(err.contains("usage:"));
}

#[test]
fn profile_stats_for_builtins() {
    for (name, syscalls) in [("docker", "358"), ("gvisor", "74"), ("firecracker", "37")] {
        let (code, out, _) = dracoctl(&["profile", "stats", name]);
        assert_eq!(code, 0, "{name}");
        assert!(out.contains(syscalls), "{name}: {out}");
        assert!(out.contains("surface by subsystem"));
        assert!(out.contains("cBPF instructions"));
    }
}

#[test]
fn profile_json_roundtrips_through_a_file() {
    let (code, json, _) = dracoctl(&["profile", "json", "firecracker"]);
    assert_eq!(code, 0);
    let path = std::env::temp_dir().join("dracoctl-cli-test.json");
    std::fs::write(&path, &json).expect("write temp profile");
    let (code, out, _) = dracoctl(&["profile", "stats", path.to_str().unwrap()]);
    assert_eq!(code, 0);
    assert!(out.contains("37 syscalls"));
}

#[test]
fn profile_disasm_emits_listing() {
    let (code, out, _) = dracoctl(&["profile", "disasm", "firecracker"]);
    assert_eq!(code, 0);
    assert!(out.contains("; filter 1 of 1"));
    assert!(out.contains("ld  [4]"), "arch load first");
    assert!(out.contains("ret"));
    // Tree layout also works.
    let (code, tree, _) = dracoctl(&["profile", "disasm", "firecracker", "--tree"]);
    assert_eq!(code, 0);
    assert!(tree.contains("jgt"), "binary search pivots present");
}

#[test]
fn check_exit_code_reflects_verdict() {
    let (code, out, _) = dracoctl(&["check", "docker", "personality", "0xffffffff"]);
    assert_eq!(code, 0);
    assert!(out.contains("allow"));
    assert!(out.contains("VatHit"), "second check hits the cache: {out}");
    let (code, out, _) = dracoctl(&["check", "docker", "ptrace"]);
    assert_eq!(code, 1, "denied verdicts exit nonzero");
    assert!(out.contains("errno"));
}

#[test]
fn check_unknown_syscall_errors() {
    let (code, _, err) = dracoctl(&["check", "docker", "frobnicate"]);
    assert_eq!(code, 1);
    assert!(err.contains("unknown syscall"));
}

#[test]
fn trace_gen_and_analyze_pipeline() {
    let (code, json, _) = dracoctl(&["trace", "gen", "pipe", "--ops", "200", "--seed", "9"]);
    assert_eq!(code, 0);
    let path = std::env::temp_dir().join("dracoctl-cli-trace.json");
    std::fs::write(&path, &json).expect("write temp trace");
    let (code, out, _) = dracoctl(&["trace", "analyze", path.to_str().unwrap()]);
    assert_eq!(code, 0);
    assert!(out.contains("pipe: 200 calls"));
    assert!(out.contains("read"));
}

#[test]
fn workloads_lists_the_catalog() {
    let (code, out, _) = dracoctl(&["workloads"]);
    assert_eq!(code, 0);
    for name in ["httpd", "elasticsearch", "mq", "hpcc"] {
        assert!(out.contains(name), "{name} missing");
    }
    assert_eq!(out.lines().count(), 15);
}
