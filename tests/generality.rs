//! §VIII generality, end to end: Draco over non-syscall transition
//! interfaces (hypercalls), non-standard register conventions, and
//! multithreaded processes sharing one set of tables.

use draco::bpf::SeccompAction;
use draco::core::DracoChecker;
use draco::profiles::{ArgPolicy, ProfileSpec, RuleSource, SyscallRule};
use draco::syscalls::{
    ArgBitmask, ArgRegisterMap, ArgSet, Register, RegisterFile, SyscallId, SyscallTable,
};
use draco::workloads::{catalog, timing, SyscallTrace, TraceGenerator};

#[test]
fn hypercall_interface_checks_with_unmodified_machinery() {
    let hypercalls = SyscallTable::kvm_hypercalls();
    let kick = hypercalls.by_name("kvm_hc_kick_cpu").unwrap();
    let mut policy = ProfileSpec::new("guest", SeccompAction::KillProcess);
    policy.allow(
        kick.id(),
        SyscallRule {
            args: ArgPolicy::whitelist(kick.bitmask(), [ArgSet::from_slice(&[0, 3])]),
            source: RuleSource::Application,
        },
    );
    let mut guard = DracoChecker::from_profile(&policy).unwrap();
    let good = draco::syscalls::SyscallRequest::new(
        0x8000,
        kick.id(),
        ArgSet::from_slice(&[0, 3]),
    );
    assert!(guard.check(&good).action.permits());
    assert!(guard.check(&good).path.is_cache_hit());
    let bad = draco::syscalls::SyscallRequest::new(
        0x8000,
        kick.id(),
        ArgSet::from_slice(&[0, 4]),
    );
    assert!(!guard.check(&bad).action.permits());
}

#[test]
fn custom_register_convention_feeds_the_same_checker() {
    // An OS that passes the ID in rbx and arguments in reverse order
    // (§VIII's OS-programmable mapping): the decoded request is
    // convention-independent, so the checker needs no changes.
    let map = ArgRegisterMap::custom(
        Register::Rbx,
        [
            Register::R9,
            Register::R8,
            Register::R10,
            Register::Rdx,
            Register::Rsi,
            Register::Rdi,
        ],
    );
    let mut regs = RegisterFile::new();
    regs.set(Register::Rbx, 0) // read
        .set(Register::R9, 3) // fd in the "first" slot
        .set(Register::R10, 4096); // count in the "third" slot
    let req = regs.request(0x1234, &map);
    assert_eq!(req.id, SyscallId::new(0));
    assert_eq!(req.args.get(0), 3);
    assert_eq!(req.args.get(2), 4096);

    let mut gen = draco::profiles::ProfileGenerator::new("alt-abi");
    gen.observe(&req);
    let profile = gen.emit(draco::profiles::ProfileKind::SyscallComplete);
    let mut checker = DracoChecker::from_profile(&profile).unwrap();
    assert!(checker.check(&req).action.permits());
    // Linux-convention registers holding the same logical call also pass:
    // only the decoded request matters.
    let mut linux_regs = RegisterFile::new();
    linux_regs
        .set(Register::Rax, 0)
        .set(Register::Rdi, 3)
        .set(Register::Rdx, 4096);
    let linux_req = linux_regs.request(0x1234, &ArgRegisterMap::linux_x86_64());
    assert_eq!(checker.check(&linux_req).action, SeccompAction::Allow);
}

#[test]
fn threads_share_tables_and_locality() {
    // Four threads of one nginx worker share a process — and its Draco
    // tables. The interleaved stream keeps the cache hit rate of the
    // single-threaded case because the hot argument sets are shared.
    let spec = catalog::by_name("nginx").unwrap();
    let threads: Vec<SyscallTrace> = (0..4)
        .map(|t| TraceGenerator::new(&spec, 100 + t).generate(4_000))
        .collect();
    let merged = SyscallTrace::interleave(&threads);
    assert_eq!(merged.len(), 16_000);
    let profile = timing::profile_for_trace(&merged, draco::profiles::ProfileKind::SyscallComplete);
    let mut checker = DracoChecker::from_profile(&profile).unwrap();
    for req in merged.requests() {
        assert!(checker.check(&req).action.permits(), "{req}");
    }
    assert!(
        checker.stats().cache_hit_rate() > 0.9,
        "hit rate {}",
        checker.stats().cache_hit_rate()
    );
}

#[test]
fn hypercall_profile_compiles_to_filters_too() {
    // The BPF backend is interface-agnostic as well: a hypercall policy
    // compiles and the interpreter agrees with the oracle.
    let hypercalls = SyscallTable::kvm_hypercalls();
    let mut policy = ProfileSpec::new("guest", SeccompAction::KillProcess);
    for desc in hypercalls.iter() {
        if desc.checked_arg_count() == 0 {
            policy.allow(desc.id(), SyscallRule::any(RuleSource::Runtime));
        }
    }
    let yield_id = hypercalls.by_name("kvm_hc_sched_yield").unwrap().id();
    policy.allow(
        yield_id,
        SyscallRule {
            args: ArgPolicy::whitelist(
                ArgBitmask::from_widths([4, 0, 0, 0, 0, 0]),
                [ArgSet::from_slice(&[2])],
            ),
            source: RuleSource::Application,
        },
    );
    let stack = draco::profiles::compile_stacked(
        &policy,
        draco::profiles::FilterLayout::Linear,
    )
    .unwrap();
    for (nr, arg0, want) in [
        (1u16, 0u64, true),   // vapic_poll_irq: any-args
        (11, 2, true),        // sched_yield(2): whitelisted
        (11, 3, false),       // sched_yield(3): not whitelisted
        (12, 0, false),       // map_gpa_range: no rule
    ] {
        let req = draco::syscalls::SyscallRequest::new(
            0,
            SyscallId::new(nr),
            ArgSet::from_slice(&[arg0]),
        );
        let out = stack
            .run(&draco::bpf::SeccompData::from_request(&req))
            .unwrap();
        assert_eq!(out.action.permits(), want, "nr {nr} arg {arg0}");
        assert_eq!(out.action.permits(), policy.evaluate(&req).permits());
    }
}
