//! Directed reproduction of paper Table I: every execution flow of the
//! hardware Draco engine, triggered deterministically.

use draco::profiles::{ProfileGenerator, ProfileKind};
use draco::sim::{DracoHwCore, FlowCounts, SimConfig};
use draco::syscalls::{ArgSet, SyscallId, SyscallRequest};
use draco::workloads::{SyscallTrace, TraceOp};

/// read(fd, buf, count): argument-checked under a complete profile.
const READ: u16 = 0;

fn op(pc: u64, nr: u16, args: [u64; 6]) -> TraceOp {
    TraceOp {
        compute_ns: 10,
        pc,
        nr,
        args,
    }
}

fn read_args(fd: u64, count: u64) -> [u64; 6] {
    [fd, 0x7f00_dead_beef, count, 0, 0, 0]
}

/// Builds a core whose profile admits read() with the given (fd, count)
/// pairs, and with context switches disabled for determinism.
fn core_with_read_sets(sets: &[(u64, u64)]) -> DracoHwCore {
    let mut gen = ProfileGenerator::new("flows");
    for &(fd, count) in sets {
        gen.observe(&SyscallRequest::new(
            0x1000,
            SyscallId::new(READ),
            ArgSet::new(read_args(fd, count)),
        ));
    }
    let profile = gen.emit(ProfileKind::SyscallComplete);
    let mut config = SimConfig::table_ii();
    config.ctx_quantum_cycles = 0;
    DracoHwCore::new(config, &profile).expect("core builds")
}

/// Runs one op and returns the flow-count delta.
fn step(core: &mut DracoHwCore, one: TraceOp) -> FlowCounts {
    let before = core.run(&SyscallTrace::from_ops("probe", vec![])).flows;
    let after = core.run(&SyscallTrace::from_ops("step", vec![one])).flows;
    FlowCounts {
        spt_only: after.spt_only - before.spt_only,
        f1: after.f1 - before.f1,
        f2: after.f2 - before.f2,
        f3: after.f3 - before.f3,
        f4: after.f4 - before.f4,
        f5: after.f5 - before.f5,
        f6: after.f6 - before.f6,
        fallback: after.fallback - before.fallback,
    }
}

#[test]
fn cold_start_is_fallback_then_f6_then_f1() {
    let mut core = core_with_read_sets(&[(3, 64)]);
    let pc = 0x40_0000;
    // 1. Cold: SPT miss → OS check (fallback).
    let d = step(&mut core, op(pc, READ, read_args(3, 64)));
    assert_eq!(d.fallback, 1, "{d:?}");
    // 2. SPT now valid, but STB and SLB are cold: STB miss + SLB access
    //    miss + VAT hit = Flow 6.
    let d = step(&mut core, op(pc, READ, read_args(3, 64)));
    assert_eq!(d.f6, 1, "{d:?}");
    // 3. Everything warm: Flow 1.
    let d = step(&mut core, op(pc, READ, read_args(3, 64)));
    assert_eq!(d.f1, 1, "{d:?}");
}

#[test]
fn flow_5_new_call_site_same_arguments() {
    let mut core = core_with_read_sets(&[(3, 64)]);
    let pc1 = 0x40_0000;
    let pc2 = 0x40_9000;
    step(&mut core, op(pc1, READ, read_args(3, 64))); // fallback
    step(&mut core, op(pc1, READ, read_args(3, 64))); // F6
    // New PC, same argument set: STB miss, SLB access hit = Flow 5.
    let d = step(&mut core, op(pc2, READ, read_args(3, 64)));
    assert_eq!(d.f5, 1, "{d:?}");
    // And the STB learned pc2: Flow 1 next.
    let d = step(&mut core, op(pc2, READ, read_args(3, 64)));
    assert_eq!(d.f1, 1, "{d:?}");
}

#[test]
fn flow_2_stale_stb_hash_but_entry_evicted() {
    // Five argument sets rotate through one 4-way SLB set: the oldest is
    // evicted. The STB still predicts the *last* set's hash (preload
    // hit), but the access wants the evicted set = Flow 2.
    let sets: Vec<(u64, u64)> = (0..5).map(|i| (3 + i, 64)).collect();
    let mut core = core_with_read_sets(&sets);
    let pc = 0x40_0000;
    for &(fd, count) in &sets {
        step(&mut core, op(pc, READ, read_args(fd, count))); // fallback each
        step(&mut core, op(pc, READ, read_args(fd, count))); // F2/F6 warm
    }
    // (3,64) was LRU-evicted from the SLB by the fifth set. The STB's
    // hash is the last set's (7,64) — present in the SLB → preload hit;
    // access for (3,64) misses → Flow 2.
    let d = step(&mut core, op(pc, READ, read_args(3, 64)));
    assert_eq!(d.f2, 1, "{d:?}");
}

#[test]
fn flow_3_preload_fetches_the_right_entry_early() {
    // Two call sites, each pinned to its own argument set. Evict both
    // sets' SLB entries with four fresh sets, then revisit site 1: the
    // STB predicts set A's hash, the SLB lacks it (preload miss), the
    // early VAT fetch stages it, and the access hits = Flow 3.
    let mut sets: Vec<(u64, u64)> = vec![(3, 64), (4, 128)];
    sets.extend((0..4).map(|i| (10 + i, 256)));
    let mut core = core_with_read_sets(&sets);
    let pc_a = 0x40_0000;
    let pc_b = 0x40_9000;
    // Warm A at site a, B at site b.
    for _ in 0..2 {
        step(&mut core, op(pc_a, READ, read_args(3, 64)));
        step(&mut core, op(pc_b, READ, read_args(4, 128)));
    }
    // Evict A and B from the SLB set with four other argument sets
    // (validated via two visits each from other sites).
    for (i, &(fd, count)) in sets[2..].iter().enumerate() {
        let pc = 0x41_0000 + i as u64 * 0x100;
        step(&mut core, op(pc, READ, read_args(fd, count)));
        step(&mut core, op(pc, READ, read_args(fd, count)));
        step(&mut core, op(pc, READ, read_args(fd, count)));
    }
    // Site a again: STB hit (hash A), preload miss, temp-buffer commit,
    // access hit = Flow 3.
    let d = step(&mut core, op(pc_a, READ, read_args(3, 64)));
    assert_eq!(d.f3, 1, "{d:?}");
}

#[test]
fn flow_4_stale_stb_and_evicted_target() {
    // Site alternates between two argument sets; then both its last-used
    // set and the requested set are evicted: STB hit, preload miss,
    // access miss, VAT hit = Flow 4.
    let mut sets: Vec<(u64, u64)> = vec![(3, 64), (4, 128)];
    sets.extend((0..4).map(|i| (10 + i, 256)));
    let mut core = core_with_read_sets(&sets);
    let pc = 0x40_0000;
    // Validate A then B at the same site (STB ends predicting B).
    for &(fd, count) in &sets[..2] {
        step(&mut core, op(pc, READ, read_args(fd, count)));
        step(&mut core, op(pc, READ, read_args(fd, count)));
    }
    // Evict A and B from the SLB.
    for (i, &(fd, count)) in sets[2..].iter().enumerate() {
        let pc_i = 0x41_0000 + i as u64 * 0x100;
        step(&mut core, op(pc_i, READ, read_args(fd, count)));
        step(&mut core, op(pc_i, READ, read_args(fd, count)));
        step(&mut core, op(pc_i, READ, read_args(fd, count)));
    }
    // Request A at the site whose STB predicts B: preload (B) misses and
    // stages B; access (A) misses; VAT has A = Flow 4.
    let d = step(&mut core, op(pc, READ, read_args(3, 64)));
    assert_eq!(d.f4, 1, "{d:?}");
}

#[test]
fn spt_only_flow_for_unchecked_syscalls() {
    // getpid has no checkable arguments: after one fallback the SPT valid
    // bit admits it forever.
    let mut gen = ProfileGenerator::new("flows");
    gen.observe(&SyscallRequest::new(
        0x1000,
        SyscallId::new(39),
        ArgSet::empty(),
    ));
    let profile = gen.emit(ProfileKind::SyscallComplete);
    let mut config = SimConfig::table_ii();
    config.ctx_quantum_cycles = 0;
    let mut core = DracoHwCore::new(config, &profile).unwrap();
    let d = step(&mut core, op(0x100, 39, [0; 6]));
    assert_eq!(d.fallback, 1);
    for _ in 0..3 {
        let d = step(&mut core, op(0x100, 39, [0; 6]));
        assert_eq!(d.spt_only, 1, "{d:?}");
    }
}

#[test]
fn fast_flows_cost_less_than_slow_flows() {
    // Timing side of Table I: measure per-step check cycles.
    let mut core = core_with_read_sets(&[(3, 64)]);
    let pc = 0x40_0000;
    let cost = |core: &mut DracoHwCore, o: TraceOp| {
        let before = core.run(&SyscallTrace::from_ops("probe", vec![])).check_cycles;
        let after = core.run(&SyscallTrace::from_ops("step", vec![o])).check_cycles;
        after - before
    };
    let fallback_cost = cost(&mut core, op(pc, READ, read_args(3, 64)));
    let f6_cost = cost(&mut core, op(pc, READ, read_args(3, 64)));
    let f1_cost = cost(&mut core, op(pc, READ, read_args(3, 64)));
    assert!(f1_cost < f6_cost, "fast {f1_cost} < slow {f6_cost}");
    assert!(f6_cost < fallback_cost, "slow {f6_cost} < OS {fallback_cost}");
    assert_eq!(f1_cost, 2, "fast path is one SLB access");
}

#[test]
fn context_switch_resets_to_flow_6_not_fallback() {
    // With SPT save/restore, a context switch costs an SLB/STB refill
    // (Flow 6) but not a software check.
    let mut core = core_with_read_sets(&[(3, 64)]);
    let pc = 0x40_0000;
    step(&mut core, op(pc, READ, read_args(3, 64))); // fallback
    step(&mut core, op(pc, READ, read_args(3, 64))); // F6
    step(&mut core, op(pc, READ, read_args(3, 64))); // F1
    core.inject_context_switch();
    let d = step(&mut core, op(pc, READ, read_args(3, 64)));
    assert_eq!(d.f6, 1, "{d:?}");
    assert_eq!(d.fallback, 0, "SPT survived via save/restore");
}
