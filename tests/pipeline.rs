//! End-to-end pipeline tests: workload → trace → profile → checkers →
//! timing, across the full catalog.

use draco::core::DracoChecker;
use draco::profiles::{ProfileKind, ProfileStats};
use draco::sim::{DracoHwCore, SimConfig};
use draco::workloads::{catalog, timing, TraceGenerator};

#[test]
fn every_workload_flows_through_the_whole_stack() {
    // The paper warms the architectural state before measuring (§X-C);
    // we do the same: the first quarter of each trace is warm-up.
    let model = timing::KernelCostModel::ubuntu_18_04();
    for spec in catalog::all() {
        let trace = TraceGenerator::new(&spec, 42).generate(8_000);
        let warmup = 2_000;
        let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);

        // Software paths (measured on the post-warm-up suffix).
        let measured = trace.skip(warmup);
        let insecure = timing::run_insecure(&measured, &model);
        let seccomp = timing::run_seccomp(&measured, &profile, &model).expect("seccomp runs");
        let draco = timing::run_draco_sw_with_warmup(&trace, &profile, &model, warmup)
            .expect("draco runs");
        assert!(insecure.total_ns <= draco.total_ns, "{}", spec.name);
        // Draco beats Seccomp wherever checking matters at all; for
        // compute-bound hpcc both are within noise of the baseline.
        assert!(
            draco.total_ns <= seccomp.total_ns * 1.001,
            "{}: draco {} vs seccomp {}",
            spec.name,
            draco.total_ns,
            seccomp.total_ns
        );

        // Hardware path.
        let mut core = DracoHwCore::new(SimConfig::table_ii(), &profile).expect("core");
        let hw = core.run_measured(&trace, warmup);
        assert!(
            hw.normalized_overhead() < 1.02,
            "{}: hw overhead {}",
            spec.name,
            hw.normalized_overhead()
        );
        assert_eq!(hw.denials, 0, "{}: steady state denies nothing", spec.name);
    }
}

#[test]
fn generated_profiles_land_in_paper_size_band() {
    // Fig. 15a: app-specific profiles allow 50–100 syscalls with ~20%
    // runtime-required.
    for spec in catalog::all() {
        let trace = TraceGenerator::new(&spec, 1).generate(8_000);
        let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
        let stats = ProfileStats::for_profile(&profile);
        assert!(
            (50..=100).contains(&stats.allowed_syscalls),
            "{}: {} syscalls",
            spec.name,
            stats.allowed_syscalls
        );
        let fraction = stats.runtime_fraction();
        assert!(
            (0.10..=0.45).contains(&fraction),
            "{}: runtime fraction {fraction}",
            spec.name
        );
    }
}

#[test]
fn complete_profiles_hit_paper_value_ranges() {
    // Fig. 15b: 23–142 arguments checked, 127–2458 values allowed.
    let mut min_args = usize::MAX;
    let mut max_args = 0;
    let mut min_vals = usize::MAX;
    let mut max_vals = 0;
    for spec in catalog::all() {
        let trace = TraceGenerator::new(&spec, 1).generate(spec.default_ops);
        let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
        let stats = ProfileStats::for_profile(&profile);
        min_args = min_args.min(stats.args_checked);
        max_args = max_args.max(stats.args_checked);
        min_vals = min_vals.min(stats.distinct_values_allowed);
        max_vals = max_vals.max(stats.distinct_values_allowed);
    }
    // Shape: tens of argument positions, hundreds-to-thousands of values,
    // with a wide spread across applications.
    assert!(min_args >= 20 && max_args <= 200, "args {min_args}..{max_args}");
    assert!(min_vals >= 100, "min values {min_vals}");
    assert!(max_vals >= 800, "max values {max_vals}");
    assert!(max_vals > 3 * min_vals, "spread {min_vals}..{max_vals}");
}

#[test]
fn draco_sw_cache_rate_grows_with_trace_length() {
    let spec = catalog::by_name("httpd").unwrap();
    let model = timing::KernelCostModel::ubuntu_18_04();
    let short = TraceGenerator::new(&spec, 9).generate(500);
    let long = TraceGenerator::new(&spec, 9).generate(20_000);
    let profile = timing::profile_for_trace(&long, ProfileKind::SyscallComplete);
    let rs = timing::run_draco_sw(&short, &profile, &model).unwrap();
    let rl = timing::run_draco_sw(&long, &profile, &model).unwrap();
    let rate = |r: &timing::RunReport| r.cache_hits as f64 / r.syscalls as f64;
    assert!(rate(&rl) > rate(&rs), "warm-up amortizes");
    assert!(rate(&rl) > 0.9);
}

#[test]
fn checker_agrees_with_profile_on_full_traces() {
    for name in ["nginx", "unixbench-syscall", "domain"] {
        let spec = catalog::by_name(name).unwrap();
        let trace = TraceGenerator::new(&spec, 77).generate(5_000);
        let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
        let mut checker = DracoChecker::from_profile(&profile).unwrap();
        for req in trace.requests() {
            let got = checker.check(&req).action;
            let want = profile.evaluate(&req);
            assert_eq!(got, want, "{name}: {req}");
        }
    }
}

#[test]
fn docker_default_keeps_all_workloads_alive() {
    let docker = draco::profiles::docker_default();
    for spec in catalog::all() {
        let trace = TraceGenerator::new(&spec, 5).generate(3_000);
        let mut checker = DracoChecker::from_profile(&docker).unwrap();
        for req in trace.requests() {
            assert!(
                checker.check(&req).action.permits(),
                "{}: {} denied by docker-default",
                spec.name,
                req
            );
        }
    }
}

#[test]
fn vat_footprint_is_kilobytes_scale() {
    // §XI-C: geometric mean VAT size ≈ 6.98 KB per process.
    let mut log_sum = 0.0;
    let mut n = 0.0;
    for spec in catalog::all() {
        let trace = TraceGenerator::new(&spec, 3).generate(spec.default_ops);
        let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
        let mut checker = DracoChecker::from_profile(&profile).unwrap();
        for req in trace.requests() {
            checker.check(&req);
        }
        let kb = checker.vat().footprint_bytes() as f64 / 1024.0;
        assert!(kb > 0.1 && kb < 512.0, "{}: {kb} KB", spec.name);
        log_sum += kb.ln();
        n += 1.0;
    }
    let geomean = (log_sum / n).exp();
    assert!(
        (1.0..=64.0).contains(&geomean),
        "geomean VAT footprint {geomean} KB (paper: 6.98 KB)"
    );
}
