//! Round-trips a real Docker default-profile JSON fixture through the
//! whole policy pipeline — `import_docker_json` → analyze → compile →
//! semantic diff — and pins the `errnoRet` semantics the importer
//! documents: the document's `defaultErrnoRet` decides what every
//! denial returns, and deny-rules over a deny default are no-ops.

use draco::bpf::semdiff::{DiffConfig, Relation};
use draco::bpf::{SeccompAction, SeccompData};
use draco::profiles::{
    analyze_profile, compile_dag_checked, compile_stacked, diff_profiles, import_docker_json,
    FilterLayout,
};
use draco::syscalls::{ArgSet, SyscallRequest, SyscallTable};

const FIXTURE: &str = include_str!("fixtures/docker-default-seed.json");

fn nr(name: &str) -> u16 {
    SyscallTable::shared()
        .by_name(name)
        .unwrap_or_else(|| panic!("fixture syscall `{name}` missing from table"))
        .id()
        .as_u16()
}

fn request(name: &str, args: [u64; 6]) -> SyscallRequest {
    SyscallRequest::new(
        0x40_0000,
        draco::syscalls::SyscallId::new(nr(name)),
        ArgSet::from_slice(&args),
    )
}

#[test]
fn docker_fixture_imports_with_foreign_arch_names_skipped() {
    let import = import_docker_json(FIXTURE, "docker-seed").expect("fixture imports");
    // The multi-arch Moby document lists arm-only names; the importer
    // reports them instead of silently dropping them.
    for foreign in ["arm_fadvise64_64", "breakpoint", "cacheflush", "set_tls"] {
        assert!(
            import.skipped.iter().any(|s| s == foreign),
            "{foreign} should be skipped, got {:?}",
            import.skipped
        );
    }
    // defaultErrnoRet: 1 → every denial is EPERM.
    assert_eq!(
        import.profile.default_action(),
        SeccompAction::Errno(1),
        "document defaultErrnoRet pins the denial errno"
    );
}

#[test]
fn fixture_errno_ret_semantics_hold_in_spec_filter_and_dag() {
    let profile = import_docker_json(FIXTURE, "docker-seed")
        .expect("fixture imports")
        .profile;
    let stack = compile_stacked(&profile, FilterLayout::BinaryTree).expect("compiles");
    let dags = compile_dag_checked(&profile).expect("DAGs prove equivalent to their filters");

    // (request, expected action) triples pinning the importer's
    // documented semantics.
    let cases = [
        // Plain whitelisted syscall.
        (request("read", [3, 0, 64, 0, 0, 0]), SeccompAction::Allow),
        // Whitelisted argument tuple (personality persona values).
        (
            request("personality", [0xffff_ffff, 0, 0, 0, 0, 0]),
            SeccompAction::Allow,
        ),
        // Off-whitelist argument → the document's defaultErrnoRet.
        (
            request("personality", [1, 0, 0, 0, 0, 0]),
            SeccompAction::Errno(1),
        ),
        // Unlisted syscall → defaultErrnoRet.
        (
            request("ptrace", [0, 0, 0, 0, 0, 0]),
            SeccompAction::Errno(1),
        ),
        // clone3 carries an SCMP_ACT_ERRNO entry with errnoRet 38; in
        // the exact-match subset a deny-rule over a deny default is a
        // no-op, so the *default* errno (1, not 38) applies.
        (
            request("clone3", [0, 0, 0, 0, 0, 0]),
            SeccompAction::Errno(1),
        ),
    ];
    for (req, want) in cases {
        let nr = req.id.as_u16();
        assert_eq!(profile.evaluate(&req), want, "spec oracle, nr {nr}");
        let args: [u64; 6] = std::array::from_fn(|i| req.args.get(i));
        let data = SeccompData::for_syscall(i32::from(nr), &args);
        let via_filter = stack.run(&data).expect("filter runs").action;
        assert_eq!(via_filter, want, "compiled filter, nr {nr}");
        let via_dag = dags.run(&data).expect("dag runs").action;
        assert_eq!(via_dag, want, "compiled DAG, nr {nr}");
    }
}

#[test]
fn fixture_round_trip_analyze_compile_semdiff() {
    let profile = import_docker_json(FIXTURE, "docker-seed")
        .expect("fixture imports")
        .profile;

    // Analyze: no error-severity lints, and the whitelist survives —
    // read is always-allow, personality argument-dependent.
    let analysis = analyze_profile(&profile).expect("analyzes");
    assert!(
        analysis
            .lints()
            .iter()
            .all(|l| l.lint.kind.severity() != draco::bpf::Severity::Error),
        "{:?}",
        analysis.lints()
    );

    // The semantic differ proves the profile equivalent to itself
    // (spec → two independent compilations → product interpretation).
    let diff = diff_profiles(&profile, &profile).expect("diffs");
    assert_eq!(diff.report.relation, Relation::Equivalent);
    assert!(diff.report.fully_proven(), "no truncated searches expected");
    assert!(
        diff.dead_old.is_empty() && diff.dead_new.is_empty(),
        "the fixture carries no dead rules"
    );

    // Dropping the personality whitelist tightens the policy: the
    // differ must classify the direction and produce a live witness.
    let mut tightened = draco::profiles::ProfileSpec::new("tight", profile.default_action());
    let personality = nr("personality");
    for (id, rule) in profile.rules() {
        if id.as_u16() != personality {
            tightened.allow(id, rule.clone());
        }
    }
    let cfg = DiffConfig {
        max_inputs_per_nr: 1 << 18,
        ..DiffConfig::default()
    };
    let diff = draco::profiles::diff_profiles_with(&profile, &tightened, &cfg).expect("diffs");
    assert_eq!(diff.report.relation, Relation::Refines);
    let divergent: Vec<_> = diff.report.divergent().collect();
    assert!(
        divergent
            .iter()
            .any(|d| d.nr == u32::from(personality) && d.witness.is_some()),
        "expected a personality witness, got {divergent:?}"
    );
}
