//! Reproducibility: every artifact in the pipeline — traces, profiles,
//! filters, timing reports, hardware runs — is a deterministic function
//! of (workload, seed, configuration), and serialized artifacts
//! round-trip exactly. This is what makes the `repro` harness's output
//! stable across machines.

use draco::profiles::{
    compile_stacked, profile_from_json, profile_to_json, FilterLayout, ProfileKind,
};
use draco::sim::{DracoHwCore, SimConfig};
use draco::workloads::{catalog, timing, SyscallTrace, TraceGenerator};

#[test]
fn traces_are_pure_functions_of_spec_and_seed() {
    for spec in catalog::all() {
        let a = TraceGenerator::new(&spec, 123).generate(1_000);
        let b = TraceGenerator::new(&spec, 123).generate(1_000);
        assert_eq!(a, b, "{}", spec.name);
        let c = TraceGenerator::new(&spec, 124).generate(1_000);
        assert_ne!(a, c, "{}: different seed, different trace", spec.name);
    }
}

#[test]
fn trace_json_roundtrip_is_exact() {
    let spec = catalog::by_name("cassandra").unwrap();
    let trace = TraceGenerator::new(&spec, 55).generate(2_000);
    let back = SyscallTrace::from_json(&trace.to_json()).expect("decodes");
    assert_eq!(back, trace);
}

#[test]
fn profiles_and_filters_are_deterministic() {
    let spec = catalog::by_name("mysql").unwrap();
    let trace = TraceGenerator::new(&spec, 7).generate(5_000);
    let p1 = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
    let p2 = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
    assert_eq!(p1, p2);
    let s1 = compile_stacked(&p1, FilterLayout::Linear).unwrap();
    let s2 = compile_stacked(&p2, FilterLayout::Linear).unwrap();
    assert_eq!(s1.len(), s2.len());
    for (a, b) in s1.programs().iter().zip(s2.programs()) {
        assert_eq!(a.insns(), b.insns());
    }
    // JSON round-trip preserves the profile exactly.
    let back = profile_from_json(&profile_to_json(&p1)).unwrap();
    assert_eq!(back, p1);
}

#[test]
fn timing_reports_are_deterministic() {
    let spec = catalog::by_name("redis").unwrap();
    let trace = TraceGenerator::new(&spec, 31).generate(5_000);
    let model = timing::KernelCostModel::ubuntu_18_04();
    let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
    let a = timing::run_seccomp(&trace, &profile, &model).unwrap();
    let b = timing::run_seccomp(&trace, &profile, &model).unwrap();
    assert_eq!(a, b);
    let a = timing::run_draco_sw(&trace, &profile, &model).unwrap();
    let b = timing::run_draco_sw(&trace, &profile, &model).unwrap();
    assert_eq!(a, b);
}

#[test]
fn hardware_runs_are_deterministic() {
    let spec = catalog::by_name("grep").unwrap();
    let trace = TraceGenerator::new(&spec, 13).generate(5_000);
    let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
    let r1 = DracoHwCore::new(SimConfig::table_ii(), &profile)
        .unwrap()
        .run(&trace);
    let r2 = DracoHwCore::new(SimConfig::table_ii(), &profile)
        .unwrap()
        .run(&trace);
    assert_eq!(r1, r2);
}

#[test]
fn profile_generation_is_trace_order_sensitive_but_stable() {
    // The toolkit lists rules in first-observation order (like strace),
    // so the same trace yields byte-identical filter chains.
    let spec = catalog::by_name("domain").unwrap();
    let trace = TraceGenerator::new(&spec, 2).generate(1_000);
    let p = timing::profile_for_trace(&trace, ProfileKind::SyscallNoargs);
    let ids: Vec<u16> = p.rules().map(|(id, _)| id.as_u16()).collect();
    let p2 = timing::profile_for_trace(&trace, ProfileKind::SyscallNoargs);
    let ids2: Vec<u16> = p2.rules().map(|(id, _)| id.as_u16()).collect();
    assert_eq!(ids, ids2);
    // The startup preamble's execve (59) is observed before the
    // workload's own syscalls, so it leads the chain.
    assert_eq!(ids[0], 59);
}
