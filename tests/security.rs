//! Security-scenario tests tied to the paper's threat model (§III):
//! syscall-interface attacks, the futex CVE mitigation the paper cites,
//! TOCTOU pointer semantics, and cache-bypass attempts.

use draco::bpf::SeccompAction;
use draco::core::{DracoChecker, DracoProcess, ProcessId};
use draco::profiles::{
    docker_default, ArgPolicy, ProfileSpec, RuleSource, SyscallRule,
};
use draco::syscalls::{ArgBitmask, ArgSet, SyscallId, SyscallRequest, SyscallTable};

fn req(nr: u16, args: &[u64]) -> SyscallRequest {
    SyscallRequest::new(0x1000, SyscallId::new(nr), ArgSet::from_slice(args))
}

/// Paper §III: "the mitigation of CVE-2014-3153 is to disallow
/// FUTEX_REQUEUE as the value of the futex_op argument of the futex
/// system call."
#[test]
fn cve_2014_3153_futex_requeue_blocked() {
    const FUTEX_WAIT: u64 = 0;
    const FUTEX_WAKE: u64 = 1;
    const FUTEX_REQUEUE: u64 = 3;

    let table = SyscallTable::shared();
    let futex = table.by_name("futex").expect("futex");
    // Whitelist futex ops except REQUEUE (op is argument position 1).
    let mut mask_widths = [0u8; 6];
    mask_widths[1] = 4;
    let allowed_ops = [FUTEX_WAIT, FUTEX_WAKE, 4, 5, 9, 10];
    let mut profile = ProfileSpec::new("futex-mitigation", SeccompAction::Errno(1));
    profile.allow(
        futex.id(),
        SyscallRule {
            args: ArgPolicy::whitelist(
                ArgBitmask::from_widths(mask_widths),
                allowed_ops.map(|op| ArgSet::empty().with(1, op)),
            ),
            source: RuleSource::Application,
        },
    );
    let mut checker = DracoChecker::from_profile(&profile).unwrap();

    // Benign futex usage works and caches.
    let wait = req(202, &[0x7fff_0000, FUTEX_WAIT, 1]);
    assert!(checker.check(&wait).action.permits());
    assert!(checker.check(&wait).path.is_cache_hit());
    // The exploit's op is rejected — every time, never cached.
    let exploit = req(202, &[0x7fff_0000, FUTEX_REQUEUE, 1, 0x41414141]);
    for _ in 0..3 {
        let r = checker.check(&exploit);
        assert!(!r.action.permits());
        assert!(!r.path.is_cache_hit(), "denials are never cached");
    }
}

/// Paper §II-B: pointer contents can change after the check (TOCTOU), so
/// pointers are never part of the decision — the same policy outcome must
/// hold for any pointer value, checked or cached.
#[test]
fn toctou_pointer_swap_does_not_change_decisions() {
    let mut profile = ProfileSpec::new("t", SeccompAction::KillProcess);
    let table = SyscallTable::shared();
    let read = table.by_name("read").unwrap();
    profile.allow(
        read.id(),
        SyscallRule {
            args: ArgPolicy::whitelist(
                read.bitmask(),
                [ArgSet::from_slice(&[3, 0, 4096])],
            ),
            source: RuleSource::Application,
        },
    );
    let mut checker = DracoChecker::from_profile(&profile).unwrap();
    // Validate with one buffer pointer…
    assert!(checker
        .check(&req(0, &[3, 0xAAAA_0000, 4096]))
        .action
        .permits());
    // …an "attacker" swaps the pointer: still allowed (cached — the
    // pointer never participated), and crucially the *checked* values
    // still gate.
    let swapped = checker.check(&req(0, &[3, 0xBBBB_0000, 4096]));
    assert!(swapped.action.permits());
    assert!(swapped.path.is_cache_hit());
    assert!(!checker
        .check(&req(0, &[4, 0xAAAA_0000, 4096]))
        .action
        .permits());
}

/// A denied (ID, argset) can never be smuggled into the cache by first
/// validating a near-miss: cache keys are the *masked* values, and masks
/// come from the profile, not the attacker.
#[test]
fn near_miss_values_do_not_poison_the_cache() {
    let mut profile = ProfileSpec::new("t", SeccompAction::KillProcess);
    profile.allow(
        SyscallId::new(16), // ioctl
        SyscallRule {
            args: ArgPolicy::whitelist(
                ArgBitmask::from_widths([0, 8, 0, 0, 0, 0]),
                [ArgSet::empty().with(1, 0x5401)],
            ),
            source: RuleSource::Application,
        },
    );
    let mut checker = DracoChecker::from_profile(&profile).unwrap();
    assert!(checker.check(&req(16, &[1, 0x5401])).action.permits());
    // High-bit variants of the cmd must not alias into the cached entry.
    for bad in [0x1_0000_5401u64, 0x5401_0000_0000, 0x5400, 0x5402] {
        let r = checker.check(&req(16, &[1, bad]));
        assert!(!r.action.permits(), "cmd {bad:#x}");
    }
}

/// Syscall numbers outside the interface (including compat aliases and
/// 16-bit truncation edge cases) never pass.
#[test]
fn interface_edges_fail_closed() {
    let docker = docker_default();
    let mut checker = DracoChecker::from_profile(&docker).unwrap();
    for nr in [403u16, 423, 436, 1000, u16::MAX] {
        assert!(
            !checker.check(&req(nr, &[])).action.permits(),
            "nr {nr} must be denied"
        );
    }
}

/// The paper's Fig. 1 scenario end to end: personality(0xffffffff) and
/// personality(0x20008) pass docker-default; anything else is rejected
/// both before and after the good values are cached.
#[test]
fn figure_1_personality_scenario() {
    let mut proc = DracoProcess::spawn(ProcessId(1), &docker_default()).unwrap();
    assert!(proc.syscall(&req(135, &[0xffff_ffff])).action.permits());
    assert!(proc.syscall(&req(135, &[0x2_0008])).action.permits());
    // Cached now — and the bad value still fails.
    assert!(proc.syscall(&req(135, &[0xffff_ffff])).path.is_cache_hit());
    assert_eq!(
        proc.syscall(&req(135, &[0x1234])).action,
        SeccompAction::Errno(1)
    );
    assert!(proc.is_alive(), "errno profile does not kill");
}

/// Stacking a tighter filter mid-run (seccomp semantics) immediately
/// revokes previously cached admissions.
#[test]
fn tightening_policy_revokes_cached_state() {
    let mut base = ProfileSpec::new("base", SeccompAction::KillProcess);
    for nr in [0u16, 1, 39] {
        base.allow(SyscallId::new(nr), SyscallRule::any(RuleSource::Application));
    }
    let mut checker = DracoChecker::from_profile(&base).unwrap();
    assert!(checker.check(&req(1, &[4, 0, 8])).action.permits());
    assert!(checker.check(&req(1, &[4, 0, 8])).path.is_cache_hit());

    // Sandbox tightens: drop write.
    let mut tighter = ProfileSpec::new("no-write", SeccompAction::KillProcess);
    for nr in [0u16, 39] {
        tighter.allow(SyscallId::new(nr), SyscallRule::any(RuleSource::Application));
    }
    checker.install_additional(&tighter).unwrap();
    assert!(
        !checker.check(&req(1, &[4, 0, 8])).action.permits(),
        "cached write admission must not survive the new filter"
    );
    assert!(checker.check(&req(0, &[3, 0, 8])).action.permits());
}

/// Speculative preloads must not leak decisions: a squashed preload
/// leaves no SLB state (the §IX temporary-buffer property, end to end).
#[test]
fn squashed_speculation_leaves_no_architectural_trace() {
    use draco::sim::{DracoHwCore, SimConfig};
    use draco::workloads::{SyscallTrace, TraceOp};

    let mut gen = draco::profiles::ProfileGenerator::new("spec");
    gen.observe(&req(0, &[3, 0, 64]));
    let profile = gen.emit(draco::profiles::ProfileKind::SyscallComplete);
    let mut config = SimConfig::table_ii();
    config.ctx_quantum_cycles = 0;
    let mut core = DracoHwCore::new(config, &profile).unwrap();
    let op = TraceOp {
        compute_ns: 10,
        pc: 0x40_0000,
        nr: 0,
        args: [3, 0, 64, 0, 0, 0],
    };
    // Validate once (fallback), once more (F6 fills SLB/STB).
    core.run(&SyscallTrace::from_ops("warm", vec![op, op]));
    // Mid-flight squash storms do not corrupt the temporary buffer or
    // the SLB: subsequent checks still succeed and stay fast.
    for _ in 0..8 {
        core.inject_squash();
        assert!(core.temp_buffer().is_empty());
    }
    let r = core.run(&SyscallTrace::from_ops("after", vec![op]));
    assert_eq!(r.denials, 0);
    assert_eq!(r.flows.f1, 1, "still a fast hit after the squashes");
}
