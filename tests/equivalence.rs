//! The soundness statement, machine-checked: every checking engine in the
//! workspace — direct profile evaluation, compiled filters (both layouts,
//! both executors, stacked or not), software Draco, and hardware Draco —
//! produces the same allow/deny decisions on arbitrary call streams.

use draco::bpf::SeccompData;
use draco::core::DracoChecker;
use draco::profiles::{
    compile, compile_dag, compile_stacked, DagStack, FilterLayout, FilterStack, ProfileGenerator,
    ProfileKind, ProfileSpec,
};
use draco::syscalls::{ArgSet, SyscallId, SyscallRequest};
use proptest::prelude::*;
use std::sync::OnceLock;

fn arb_request() -> impl Strategy<Value = SyscallRequest> {
    (0u16..436, proptest::array::uniform6(0u64..12), 0u64..8).prop_map(|(nr, args, pc)| {
        SyscallRequest::new(0x1000 + pc * 8, SyscallId::new(nr), ArgSet::new(args))
    })
}

/// Queries aimed at the catalog profiles: in- and out-of-whitelist
/// numbers, and argument values straddling the published whitelists
/// (clone flags, personality values) as well as arbitrary ones.
fn arb_catalog_request() -> impl Strategy<Value = SyscallRequest> {
    let arg = prop_oneof![
        0u64..12,
        Just(0xffff_ffffu64),
        Just(0x0002_0008u64),
        Just(0x0001_1000u64), // a clone flag combination
        any::<u64>(),
    ];
    (0u16..512, proptest::array::uniform6(arg)).prop_map(|(nr, args)| {
        SyscallRequest::new(0x1000, SyscallId::new(nr), ArgSet::new(args))
    })
}

/// Catalog profiles compiled once per process: (name, interpreted
/// stack, DAG) triples.
fn catalog_engines() -> &'static [(String, FilterStack, DagStack)] {
    static ENGINES: OnceLock<Vec<(String, FilterStack, DagStack)>> = OnceLock::new();
    ENGINES.get_or_init(|| {
        [
            draco::profiles::docker_default(),
            draco::profiles::gvisor_default(),
            draco::profiles::firecracker(),
        ]
        .into_iter()
        .map(|profile| {
            let stack =
                compile_stacked(&profile, FilterLayout::BinaryTree).expect("catalog compiles");
            let dag = compile_dag(&profile).expect("catalog dag compiles");
            (profile.name().to_owned(), stack, dag)
        })
        .collect()
    })
}

fn profile_from(observations: &[SyscallRequest], kind: ProfileKind) -> ProfileSpec {
    let mut gen = ProfileGenerator::new("prop");
    for req in observations {
        gen.observe(req);
    }
    gen.emit(kind)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compiled filters (all four layout/stacking combinations) agree
    /// with the profile oracle.
    #[test]
    fn filters_agree_with_oracle(
        observed in proptest::collection::vec(arb_request(), 1..20),
        queries in proptest::collection::vec(arb_request(), 1..30),
        complete in any::<bool>(),
    ) {
        let kind = if complete { ProfileKind::SyscallComplete } else { ProfileKind::SyscallNoargs };
        let profile = profile_from(&observed, kind);
        for layout in [FilterLayout::Linear, FilterLayout::BinaryTree] {
            let single = compile(&profile, layout).expect("compiles");
            let stack = compile_stacked(&profile, layout).expect("stacks");
            let compiled = stack.compiled();
            for req in &queries {
                let want = profile.evaluate(req);
                let data = SeccompData::from_request(req);
                let a = draco::bpf::Interpreter::new(&single).run(&data).unwrap().action;
                let b = stack.run(&data).unwrap().action;
                let c = compiled.run(&data).unwrap().action;
                prop_assert_eq!(a, want);
                prop_assert_eq!(b, want);
                prop_assert_eq!(c, want);
            }
        }
    }

    /// The specializing decision-DAG engine is observationally
    /// identical to the interpreted stack — same action, including the
    /// errno value — on generated argument-checking profiles, through
    /// both its pinned dispatch-table entries and its symbolic root
    /// (queries include syscalls outside the profile).
    #[test]
    fn dag_stack_agrees_with_interpreted_stack(
        observed in proptest::collection::vec(arb_request(), 1..20),
        queries in proptest::collection::vec(arb_request(), 1..30),
        complete in any::<bool>(),
    ) {
        let kind = if complete { ProfileKind::SyscallComplete } else { ProfileKind::SyscallNoargs };
        let profile = profile_from(&observed, kind);
        let stack = compile_stacked(&profile, FilterLayout::BinaryTree).expect("stacks");
        let dag = compile_dag(&profile).expect("dag compiles");
        for req in &queries {
            let data = SeccompData::from_request(req);
            let want = stack.run(&data).unwrap().action;
            let got = dag.run(&data).unwrap().action;
            prop_assert_eq!(got, want, "{}", req);
            prop_assert_eq!(got, profile.evaluate(req), "{}", req);
        }
    }

    /// The same exactness statement over every catalog profile
    /// (tentpole acceptance): Docker, gVisor, and Firecracker profiles
    /// — errno defaults and argument whitelists included — decide
    /// identically under the DAG and the concrete VM.
    #[test]
    fn dag_matches_vm_on_every_catalog_profile(
        queries in proptest::collection::vec(arb_catalog_request(), 1..40),
    ) {
        for (name, stack, dag) in catalog_engines() {
            for req in &queries {
                let data = SeccompData::from_request(req);
                let want = stack.run(&data).unwrap().action;
                let got = dag.run(&data).unwrap().action;
                prop_assert_eq!(got, want, "{name}: {}", req);
            }
        }
    }

    /// Software Draco never changes a decision, whatever the order and
    /// repetition of requests (cache warm-up included).
    #[test]
    fn draco_sw_agrees_with_oracle(
        observed in proptest::collection::vec(arb_request(), 1..16),
        stream in proptest::collection::vec(arb_request(), 1..60),
    ) {
        let profile = profile_from(&observed, ProfileKind::SyscallComplete);
        let mut checker = DracoChecker::from_profile(&profile).expect("checker");
        // Issue the stream twice so the second pass exercises hits.
        for req in stream.iter().chain(stream.iter()) {
            prop_assert_eq!(checker.check(req).action, profile.evaluate(req), "{}", req);
        }
    }

    /// Hardware Draco allows exactly what the profile allows.
    #[test]
    fn draco_hw_agrees_with_oracle(
        observed in proptest::collection::vec(arb_request(), 1..12),
        stream in proptest::collection::vec(arb_request(), 1..40),
    ) {
        use draco::sim::{DracoHwCore, SimConfig};
        use draco::workloads::{SyscallTrace, TraceOp};

        let profile = profile_from(&observed, ProfileKind::SyscallComplete);
        let expected_denials: u64 = stream
            .iter()
            .chain(stream.iter())
            .filter(|r| !profile.evaluate(r).permits())
            .count() as u64;
        let ops: Vec<TraceOp> = stream
            .iter()
            .chain(stream.iter())
            .map(|r| TraceOp {
                compute_ns: 100,
                pc: r.pc,
                nr: r.id.as_u16(),
                args: r.args.as_array(),
            })
            .collect();
        let trace = SyscallTrace::from_ops("prop", ops);
        let mut core = DracoHwCore::new(SimConfig::table_ii(), &profile).expect("core");
        let report = core.run(&trace);
        prop_assert_eq!(report.denials, expected_denials);
    }

    /// The staged batch path is byte-identical to the scalar loop —
    /// same decisions, same provenance, and the same `CheckerStats` —
    /// at every batch size, including degenerate ones (1, larger than
    /// the stream) and the whole stream at once.
    #[test]
    fn check_batch_is_byte_identical_to_the_scalar_loop(
        observed in proptest::collection::vec(arb_request(), 1..16),
        stream in proptest::collection::vec(arb_request(), 1..80),
    ) {
        let profile = profile_from(&observed, ProfileKind::SyscallComplete);
        let mut scalar = DracoChecker::from_profile(&profile).expect("checker");
        let expected: Vec<_> = stream.iter().map(|r| scalar.check(r)).collect();
        for batch in [1usize, 7, 64, 1000, stream.len()] {
            let mut batched = DracoChecker::from_profile(&profile).expect("checker");
            let mut got = vec![draco::core::CheckResult::KILLED; stream.len()];
            for (chunk, slots) in stream.chunks(batch).zip(got.chunks_mut(batch)) {
                batched.check_batch(chunk, slots);
            }
            prop_assert_eq!(&got, &expected, "batch={}", batch);
            prop_assert_eq!(batched.stats(), scalar.stats(), "batch={}", batch);
        }
    }

    /// Same statement for the thread-shared checker with a single
    /// handle and no concurrent writer: batching through one
    /// [`draco::core::SharedDracoProcess`] handle reproduces a scalar
    /// handle's decisions, provenance, and stats exactly.
    #[test]
    fn shared_batch_is_byte_identical_to_a_scalar_handle(
        observed in proptest::collection::vec(arb_request(), 1..16),
        stream in proptest::collection::vec(arb_request(), 1..80),
    ) {
        use draco::core::{ProcessId, SharedDracoProcess};

        let profile = profile_from(&observed, ProfileKind::SyscallComplete);
        let scalar_process =
            SharedDracoProcess::spawn(ProcessId(1), &profile).expect("shared spawns");
        let mut scalar = scalar_process.spawn_thread();
        let expected: Vec<_> = stream.iter().map(|r| scalar.check(r)).collect();
        for batch in [1usize, 7, 64, 1000, stream.len()] {
            let process =
                SharedDracoProcess::spawn(ProcessId(2), &profile).expect("shared spawns");
            let mut handle = process.spawn_thread();
            let mut got = vec![draco::core::CheckResult::KILLED; stream.len()];
            for (chunk, slots) in stream.chunks(batch).zip(got.chunks_mut(batch)) {
                handle.check_batch(chunk, slots);
            }
            prop_assert_eq!(&got, &expected, "batch={}", batch);
            prop_assert_eq!(handle.stats(), scalar.stats(), "batch={}", batch);
        }
    }

    /// Cached admissions are replays: a syscall Draco admits from its
    /// tables was admitted by the filter earlier in the same stream.
    #[test]
    fn cache_hits_only_replay_prior_allows(
        observed in proptest::collection::vec(arb_request(), 1..12),
        stream in proptest::collection::vec(arb_request(), 1..50),
    ) {
        let profile = profile_from(&observed, ProfileKind::SyscallComplete);
        let mut checker = DracoChecker::from_profile(&profile).expect("checker");
        let mut allowed_before = std::collections::HashSet::new();
        for req in &stream {
            let result = checker.check(req);
            if result.path.is_cache_hit() {
                let table = draco::syscalls::SyscallTable::shared();
                let key = (req.id, table.get(req.id).map(|d| d.bitmask().masked(&req.args)));
                prop_assert!(
                    allowed_before.contains(&key),
                    "cache hit without prior allow: {}", req
                );
            }
            if result.action.permits() {
                let table = draco::syscalls::SyscallTable::shared();
                let key = (req.id, table.get(req.id).map(|d| d.bitmask().masked(&req.args)));
                allowed_before.insert(key);
            }
        }
    }
}

/// The thread-shared checker is decision-equivalent to the per-process
/// one: N threads replaying **disjoint slices** of a workload trace
/// through one [`draco::core::SharedDracoProcess`] return, per event,
/// exactly the action a single-threaded [`DracoProcess`] oracle returns
/// for that event. Only decisions are compared — cache-hit *counts*
/// legitimately differ, because which thread warms a shared entry first
/// depends on scheduling.
#[test]
fn shared_process_threads_agree_with_the_single_thread_oracle() {
    use draco::core::{DracoProcess, ProcessId, SharedDracoProcess};
    use draco::workloads::{catalog, TraceGenerator};

    let spec = catalog::by_name("nginx").expect("nginx is in the catalog");
    // Profile from one seed, stream from another: the stream's cold
    // argument sets make the filter path (and some denials under the
    // no-args kind below) do real work.
    let observed: Vec<SyscallRequest> = TraceGenerator::new(&spec, 11)
        .generate(300)
        .requests()
        .collect();
    let stream: Vec<SyscallRequest> = TraceGenerator::new(&spec, 99)
        .generate(2_000)
        .requests()
        .collect();
    let profile = profile_from(&observed, ProfileKind::SyscallComplete);

    // Single-threaded oracle: one process, the whole stream in order.
    let mut oracle = DracoProcess::spawn(ProcessId(1), &profile).expect("oracle spawns");
    let expected: Vec<_> = stream
        .iter()
        .map(|req| oracle.checker_mut().check(req).action)
        .collect();
    // Sanity: the stream exercises both outcomes.
    assert!(expected.iter().any(|a| a.permits()));
    assert!(expected.iter().any(|a| !a.permits()));

    const THREADS: usize = 4;
    let process = SharedDracoProcess::spawn(ProcessId(2), &profile).expect("shared spawns");
    let slice_len = stream.len().div_ceil(THREADS);
    let decisions: Vec<Vec<(usize, draco::bpf::SeccompAction)>> = std::thread::scope(|s| {
        let handles: Vec<_> = stream
            .chunks(slice_len)
            .enumerate()
            .map(|(t, slice)| {
                let mut handle = process.spawn_thread();
                s.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(i, req)| (t * slice_len + i, handle.check(req).action))
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut compared = 0usize;
    for (index, action) in decisions.into_iter().flatten() {
        assert_eq!(
            action, expected[index],
            "event {index} ({}) diverged from the oracle",
            stream[index]
        );
        compared += 1;
    }
    assert_eq!(compared, stream.len(), "every event was compared");

    // Both engines admitted the same calls; hit *placement* is left
    // unchecked by design (it is scheduling-dependent), but the shared
    // run must still have served a healthy fraction from its tables.
    let shared_stats = process.stats();
    assert_eq!(shared_stats.total(), stream.len() as u64);
    assert_eq!(
        shared_stats.denials,
        expected.iter().filter(|a| !a.permits()).count() as u64
    );
    assert!(
        shared_stats.cache_hit_rate() > 0.5,
        "shared tables barely used: {shared_stats}"
    );
}

/// A kill mid-stream terminates the process identically under the
/// scalar and batched entry points: the killing call gets the same
/// verdict, every later slot is filled with `KILLED`, and the stats are
/// byte-identical (post-kill slots never reach the tables).
#[test]
fn process_batch_kill_matches_the_scalar_syscall_loop() {
    use draco::core::{CheckResult, DracoProcess, ProcessId};
    use draco::profiles::gvisor_default;

    let profile = gvisor_default(); // default action: kill-process
    let stream: Vec<SyscallRequest> = (0..40u16)
        .map(|i| {
            let nr = if i == 23 { 101 } else { 39 }; // ptrace(101) kills at event 23
            SyscallRequest::new(0x1000, SyscallId::new(nr), ArgSet::from_slice(&[0, 0]))
        })
        .collect();
    let mut oracle = DracoProcess::spawn(ProcessId(1), &profile).expect("oracle spawns");
    let expected: Vec<CheckResult> = stream.iter().map(|r| oracle.syscall(r)).collect();
    assert!(!oracle.is_alive(), "the stream must actually kill");
    for batch in [1usize, 7, 16, stream.len()] {
        let mut process = DracoProcess::spawn(ProcessId(2), &profile).expect("spawns");
        let mut got = vec![CheckResult::KILLED; stream.len()];
        for (chunk, slots) in stream.chunks(batch).zip(got.chunks_mut(batch)) {
            process.syscall_batch(chunk, slots);
        }
        assert_eq!(got, expected, "batch={batch}");
        assert_eq!(process.stats(), oracle.stats(), "batch={batch}");
        assert!(!process.is_alive(), "batch={batch}");
    }
}

/// The multithreaded flavor of the batch statement: N threads batching
/// **disjoint slices** through one shared process return, per event,
/// exactly the action the single-threaded oracle returns. Only
/// decisions are compared — hit placement is scheduling-dependent.
#[test]
fn shared_batched_threads_agree_with_the_single_thread_oracle() {
    use draco::core::{CheckResult, DracoProcess, ProcessId, SharedDracoProcess};
    use draco::workloads::{catalog, TraceGenerator};

    let spec = catalog::by_name("nginx").expect("nginx is in the catalog");
    let observed: Vec<SyscallRequest> = TraceGenerator::new(&spec, 11)
        .generate(300)
        .requests()
        .collect();
    let stream: Vec<SyscallRequest> = TraceGenerator::new(&spec, 99)
        .generate(2_000)
        .requests()
        .collect();
    let profile = profile_from(&observed, ProfileKind::SyscallComplete);

    let mut oracle = DracoProcess::spawn(ProcessId(1), &profile).expect("oracle spawns");
    let expected: Vec<_> = stream
        .iter()
        .map(|req| oracle.checker_mut().check(req).action)
        .collect();

    const THREADS: usize = 4;
    const BATCH: usize = 23; // deliberately misaligned with the slice length
    let process = SharedDracoProcess::spawn(ProcessId(2), &profile).expect("shared spawns");
    let slice_len = stream.len().div_ceil(THREADS);
    let decisions: Vec<Vec<(usize, draco::bpf::SeccompAction)>> = std::thread::scope(|s| {
        let handles: Vec<_> = stream
            .chunks(slice_len)
            .enumerate()
            .map(|(t, slice)| {
                let mut handle = process.spawn_thread();
                s.spawn(move || {
                    let mut out = vec![CheckResult::KILLED; slice.len()];
                    for (chunk, slots) in slice.chunks(BATCH).zip(out.chunks_mut(BATCH)) {
                        handle.check_batch(chunk, slots);
                    }
                    out.iter()
                        .enumerate()
                        .map(|(i, result)| (t * slice_len + i, result.action))
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut compared = 0usize;
    for (index, action) in decisions.into_iter().flatten() {
        assert_eq!(
            action, expected[index],
            "event {index} ({}) diverged from the oracle",
            stream[index]
        );
        compared += 1;
    }
    assert_eq!(compared, stream.len(), "every event was compared");
    let shared_stats = process.stats();
    assert_eq!(shared_stats.total(), stream.len() as u64);
}

/// The multi-tenant admission service is observationally transparent:
/// N tenants multiplexed through one `dracod` service — interleaved
/// submission rounds, shared audit ring, batched draining — decide,
/// count, and audit **exactly** like N independent single-process
/// replays of the same per-tenant streams. Decisions are compared
/// including the cache path taken, stats as the full `CheckerStats`,
/// and denials as the per-tenant audit event sequences.
#[test]
fn dracod_tenants_match_independent_process_replays() {
    use draco::core::{CheckResult, DracoProcess};
    use draco::dracod::{DracoService, ServiceConfig, TenantId};
    use draco::obs::{AuditEvent, AuditRing};
    use draco::workloads::{catalog, TraceGenerator};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    const ROUNDS: usize = 3;
    const OPS: usize = 600;
    let workloads = ["pipe", "nginx", "redis", "httpd", "fifo"];

    // Per-tenant profile and stream. Profile from one seed, stream from
    // another: cold argument sets keep the filter path and the denial
    // (audit) path busy, not just the caches.
    let tenants: Vec<(ProfileSpec, Vec<SyscallRequest>)> = workloads
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let spec = catalog::by_name(name).expect("catalog workload");
            let seed = 31 + i as u64;
            let observed: Vec<SyscallRequest> = TraceGenerator::new(&spec, seed)
                .generate(200)
                .requests()
                .collect();
            // Every 9th request has its arguments perturbed outside any
            // observable whitelist, guaranteeing denials (and audit
            // traffic) even for workloads with tiny argument spaces.
            let stream: Vec<SyscallRequest> = TraceGenerator::new(&spec, seed ^ 0xff)
                .generate(OPS)
                .requests()
                .enumerate()
                .map(|(n, req)| {
                    if n % 9 == 8 {
                        let mut args = [0u64; 6];
                        for (slot, value) in args.iter_mut().enumerate() {
                            *value = req.args.get(slot) ^ 0xdead_0000_0000;
                        }
                        SyscallRequest::new(req.pc, req.id, ArgSet::new(args))
                    } else {
                        req
                    }
                })
                .collect();
            (profile_from(&observed, ProfileKind::SyscallComplete), stream)
        })
        .collect();

    // Service run: all tenants registered up front, streams interleaved
    // across submission rounds, one shared audit ring.
    let mut svc = DracoService::new(ServiceConfig::default());
    let ids: Vec<TenantId> = tenants
        .iter()
        .map(|(profile, _)| svc.register(profile).expect("tenant registers"))
        .collect();
    let mut svc_decisions: BTreeMap<TenantId, Vec<CheckResult>> =
        ids.iter().map(|&id| (id, Vec::new())).collect();
    let per_round = OPS.div_ceil(ROUNDS);
    for round in 0..ROUNDS {
        for (&id, (_, stream)) in ids.iter().zip(&tenants) {
            let lo = (round * per_round).min(stream.len());
            let hi = ((round + 1) * per_round).min(stream.len());
            svc.submit_all(id, &stream[lo..hi]).expect("tenant is live");
        }
        svc.drain_with(|tenant, _, decision| {
            svc_decisions.get_mut(&tenant).unwrap().push(decision);
        });
    }
    let mut svc_audit = Vec::new();
    svc.audit_ring().drain(&mut svc_audit);
    assert_eq!(
        svc.audit_ring().events_dropped(),
        0,
        "ring sized to hold every denial"
    );

    // Oracle run: each tenant replayed alone through an independent
    // DracoProcess with the same pid and its own audit ring.
    for (&id, (profile, stream)) in ids.iter().zip(&tenants) {
        let pid = svc.snapshot(id).expect("tenant is live").pid;
        let mut oracle = DracoProcess::spawn(pid, profile).expect("oracle spawns");
        let ring = Arc::new(AuditRing::with_capacity(4096));
        oracle
            .checker_mut()
            .enable_audit(Arc::clone(&ring), pid.0 as u16);
        let expected: Vec<CheckResult> = stream
            .iter()
            .map(|req| oracle.checker_mut().check(req))
            .collect();
        // Sanity: every tenant exercises both outcomes.
        assert!(expected.iter().any(|d| d.action.permits()), "{id}");
        assert!(expected.iter().any(|d| !d.action.permits()), "{id}");

        // Exact decision equality, cache path included.
        assert_eq!(&svc_decisions[&id], &expected, "{id} diverged");
        // Exact CheckerStats equality: multiplexing and batching must
        // not change a single counter.
        assert_eq!(
            svc.tenant_stats(id).expect("tenant is live"),
            oracle.stats(),
            "{id} counters diverged"
        );
        // Exact denial-audit equality: the service's shared stream,
        // restricted to this tenant's pid tag, is the oracle's stream.
        let mut oracle_audit = Vec::new();
        ring.drain(&mut oracle_audit);
        let tenant_audit: Vec<AuditEvent> = svc_audit
            .iter()
            .copied()
            .filter(|event| event.source == pid.0 as u16)
            .collect();
        assert_eq!(tenant_audit, oracle_audit, "{id} audit diverged");
        assert!(!oracle_audit.is_empty(), "{id} denials must be audited");
    }
    // Nothing in the shared stream came from anyone else.
    let known: std::collections::BTreeSet<u16> = ids
        .iter()
        .map(|&id| svc.snapshot(id).unwrap().pid.0 as u16)
        .collect();
    assert!(svc_audit.iter().all(|event| known.contains(&event.source)));
}

#[test]
fn twox_profiles_agree_with_oracle_too() {
    let reqs: Vec<SyscallRequest> = (0..8)
        .map(|i| {
            SyscallRequest::new(
                0x1000,
                SyscallId::new(i),
                ArgSet::from_slice(&[u64::from(i), 2, 3]),
            )
        })
        .collect();
    let profile = profile_from(&reqs, ProfileKind::SyscallComplete2x);
    let stack = compile_stacked(&profile, FilterLayout::Linear).unwrap();
    for req in &reqs {
        let data = SeccompData::from_request(req);
        assert_eq!(stack.run(&data).unwrap().action, profile.evaluate(req));
    }
    // And a denied variant.
    let bad = SyscallRequest::new(0x1000, SyscallId::new(0), ArgSet::from_slice(&[99, 2, 3]));
    assert_eq!(
        stack
            .run(&SeccompData::from_request(&bad))
            .unwrap()
            .action,
        profile.evaluate(&bad)
    );
}
