//! Self-contained fuzzing runner: corpus replay plus a timed
//! random-mutation loop.
//!
//! The environment this workspace builds in has no network access, so
//! `libfuzzer-sys`/`cargo-fuzz` are unavailable; this crate keeps their
//! *shape* — each harness is one `fuzz_target!(|data: &[u8]| { ... })`
//! binary — on top of a deterministic runner:
//!
//! 1. **Replay**: every file in `corpus/<target>/` runs first, so the
//!    committed corpus acts as a regression suite on every invocation
//!    (including `--seconds 0`).
//! 2. **Mutate**: for the configured wall-clock budget, inputs are drawn
//!    by mutating random corpus entries (byte flips, splices, truncation,
//!    extension) or generated fresh, seeded from `--seed`/`FUZZ_SEED` so
//!    failures reproduce.
//!
//! A panicking input is written to `artifacts/<target>/` before the
//! panic is re-raised, so CI failures leave the crasher behind. Flags:
//! `--seconds N` (default 10; env `FUZZ_SECONDS`), `--seed N` (env
//! `FUZZ_SEED`), `--corpus DIR`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Declares the fuzz entry point, cargo-fuzz style. Expands to the
/// target function plus a `main` that hands it to [`fuzz_main`].
#[macro_export]
macro_rules! fuzz_target {
    (|$data:ident: &[u8]| $body:block) => {
        fn fuzz_one($data: &[u8]) $body

        fn main() {
            $crate::fuzz_main(env!("CARGO_BIN_NAME"), fuzz_one);
        }
    };
}

/// Largest input the mutator will grow to. Filters are capped at
/// `BPF_MAXINSNS` (4096) instructions = 32 KiB of quadruples; inputs
/// beyond that only exercise the "too long" validator arm.
const MAX_LEN: usize = 4096;

struct Options {
    seconds: u64,
    seed: u64,
    corpus: PathBuf,
}

fn parse_options(target: &str) -> Options {
    let mut seconds = std::env::var("FUZZ_SECONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let mut seed = std::env::var("FUZZ_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5eed_f00d);
    let mut corpus =
        PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus")).join(target);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("usage: {target} [--seconds N] [--seed N] [--corpus DIR]");
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--seconds" => {
                seconds = value(&mut i).parse().unwrap_or_else(|_| {
                    eprintln!("--seconds needs a number");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                seed = value(&mut i).parse().unwrap_or_else(|_| {
                    eprintln!("--seed needs a number");
                    std::process::exit(2);
                });
            }
            "--corpus" => corpus = PathBuf::from(value(&mut i)),
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!("usage: {target} [--seconds N] [--seed N] [--corpus DIR]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    Options {
        seconds,
        seed,
        corpus,
    }
}

fn load_corpus(dir: &PathBuf) -> Vec<(String, Vec<u8>)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files: Vec<(String, Vec<u8>)> = entries
        .filter_map(Result::ok)
        .filter(|e| e.path().is_file())
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            std::fs::read(e.path()).ok().map(|bytes| (name, bytes))
        })
        .collect();
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files
}

/// One mutation step: flip, overwrite, truncate, extend, or splice.
fn mutate(rng: &mut SmallRng, base: &[u8]) -> Vec<u8> {
    let mut out = base.to_vec();
    for _ in 0..rng.gen_range(1u32..8) {
        match rng.gen_range(0u32..5) {
            0 if !out.is_empty() => {
                // Flip one bit.
                let at = rng.gen_range(0usize..out.len());
                out[at] ^= 1 << rng.gen_range(0u32..8);
            }
            1 if !out.is_empty() => {
                // Overwrite a byte with an interesting value.
                let at = rng.gen_range(0usize..out.len());
                const INTERESTING: [u8; 8] = [0x00, 0x01, 0x06, 0x15, 0x16, 0x20, 0x7f, 0xff];
                out[at] = INTERESTING[rng.gen_range(0usize..INTERESTING.len())];
            }
            2 if out.len() > 1 => {
                // Truncate at a random point.
                out.truncate(rng.gen_range(1usize..out.len()));
            }
            3 if out.len() < MAX_LEN => {
                // Extend with random bytes (quadruple-sized chunks keep
                // instruction alignment interesting).
                for _ in 0..rng.gen_range(1usize..=8).min(MAX_LEN - out.len()) {
                    out.push(rng.next_u64() as u8);
                }
            }
            _ if !out.is_empty() => {
                // Rotate a window (cheap splice).
                let at = rng.gen_range(0usize..out.len());
                out.rotate_left(at);
            }
            _ => out.push(rng.next_u64() as u8),
        }
    }
    out
}

fn save_artifact(target: &str, data: &[u8]) -> Option<PathBuf> {
    // FNV-1a content hash names the crasher, so repeats overwrite.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in data {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/artifacts")).join(target);
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("crash-{hash:016x}"));
    std::fs::write(&path, data).ok()?;
    Some(path)
}

fn run_guarded(target: &str, f: fn(&[u8]), data: &[u8], origin: &str) {
    let result = catch_unwind(AssertUnwindSafe(|| f(data)));
    if let Err(panic) = result {
        let saved = save_artifact(target, data);
        eprintln!(
            "{target}: input from {origin} ({} bytes) panicked{}",
            data.len(),
            saved.map_or(String::new(), |p| format!(", saved to {}", p.display())),
        );
        std::panic::resume_unwind(panic);
    }
}

/// Runs one fuzz target: corpus replay, then timed mutation.
pub fn fuzz_main(target: &str, f: fn(&[u8])) {
    let opts = parse_options(target);
    let corpus = load_corpus(&opts.corpus);
    if corpus.is_empty() {
        eprintln!(
            "{target}: warning: empty corpus at {} — mutating from scratch",
            opts.corpus.display()
        );
    }
    for (name, bytes) in &corpus {
        run_guarded(target, f, bytes, &format!("corpus/{name}"));
    }

    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let deadline = Instant::now() + Duration::from_secs(opts.seconds);
    let mut executions = 0u64;
    while Instant::now() < deadline {
        // Batch between clock reads; gettime per input would dominate.
        for _ in 0..64 {
            let input = if corpus.is_empty() || rng.gen_range(0u32..4) == 0 {
                let len = rng.gen_range(0usize..64) * 8 + rng.gen_range(0usize..8);
                let mut fresh = Vec::with_capacity(len);
                for _ in 0..len {
                    fresh.push(rng.next_u64() as u8);
                }
                fresh
            } else {
                let base = &corpus[rng.gen_range(0usize..corpus.len())].1;
                mutate(&mut rng, base)
            };
            run_guarded(target, f, &input, "mutator");
            executions += 1;
        }
    }
    println!(
        "{target}: {} corpus inputs replayed, {executions} mutated inputs in {}s (seed {}), no failures",
        corpus.len(),
        opts.seconds,
        opts.seed
    );
}

/// Splits a fuzz input into raw `sock_filter` quadruples plus trailing
/// data bytes the harnesses use to derive VM inputs. Shared by both
/// targets so corpus files are interchangeable between them.
pub fn split_program_bytes(data: &[u8]) -> (Vec<(u16, u8, u8, u32)>, &[u8]) {
    // First byte picks how many quadruples follow (bounded by what is
    // actually present); the rest of the tail seeds SeccompData values.
    let Some((&n, rest)) = data.split_first() else {
        return (Vec::new(), data);
    };
    let avail = rest.len() / 8;
    let count = (usize::from(n) % (avail + 1)).min(avail);
    let mut insns = Vec::with_capacity(count);
    for chunk in rest.chunks_exact(8).take(count) {
        insns.push((
            u16::from_le_bytes([chunk[0], chunk[1]]),
            chunk[2],
            chunk[3],
            u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]),
        ));
    }
    (insns, &rest[count * 8..])
}

/// Derives a deterministic stream of `(nr, ip, args)` VM inputs from the
/// tail bytes of a fuzz input.
pub fn vm_inputs(tail: &[u8], rounds: usize) -> Vec<(i32, u64, [u64; 6])> {
    let mut seed = 0x9e37_79b9u64;
    for b in tail {
        seed = seed.wrapping_mul(31).wrapping_add(u64::from(*b));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..rounds)
        .map(|_| {
            // Small syscall numbers dominate (they are what filters
            // branch on), with occasional huge/negative outliers.
            let nr = if rng.gen_range(0u32..8) == 0 {
                rng.next_u32() as i32
            } else {
                rng.gen_range(0u32..512) as i32
            };
            let ip = rng.next_u64();
            let mut args = [0u64; 6];
            for a in &mut args {
                *a = if rng.gen_range(0u32..4) == 0 {
                    rng.next_u64()
                } else {
                    u64::from(rng.gen_range(0u32..16))
                };
            }
            (nr, ip, args)
        })
        .collect()
}
