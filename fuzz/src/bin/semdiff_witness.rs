//! Differential target: **semantic policy differ vs concrete VM**.
//!
//! `semdiff` classifies two filters per syscall as equivalent /
//! refines / relaxes / incomparable and emits concrete divergence
//! witnesses. Its claims gate hot reloads and certify compiled DAGs,
//! so an unsound classification is a policy-enforcement bug. The input
//! encodes *two* programs (each length-prefixed, same framing as the
//! other targets) plus a probe tail; the target checks, against the
//! real VM:
//!
//! * every emitted witness re-executes divergently, and the recorded
//!   per-side decisions match the replay;
//! * a syscall classified `Equivalent` never diverges on random inputs;
//! * under an ordered claim (`Refines`/`Relaxes`), any divergence on
//!   random inputs goes the claimed direction only (kernel action
//!   precedence);
//! * a program never produces a witness against its own compiled DAG.

use draco_bpf::semdiff::{
    diff_filter_vs_dag, diff_filters, interesting_nrs, DiffConfig, Relation, SemSide, SideDecision,
};
use draco_bpf::{CompiledDag, Interpreter, Program, SeccompData, AUDIT_ARCH_X86_64};
use draco_fuzz::{fuzz_target, split_program_bytes, vm_inputs};

fn decide(program: &Program, data: &SeccompData) -> SideDecision {
    match Interpreter::new(program).run(data) {
        Ok(out) => SideDecision::Action(out.action),
        Err(_) => SideDecision::Fault,
    }
}

fuzz_target!(|data: &[u8]| {
    let (raw_a, tail) = split_program_bytes(data);
    let Ok(a) = Program::from_raw(&raw_a) else {
        return;
    };
    let (raw_b, tail) = split_program_bytes(tail);
    let Ok(b) = Program::from_raw(&raw_b) else {
        return;
    };

    let cfg = DiffConfig {
        // Keep one fuzz input cheap; a truncated search only degrades
        // proofs to Bounded, never to an unsound claim.
        max_inputs_per_nr: 512,
        ..DiffConfig::default()
    };
    let probes = vm_inputs(tail, 8);
    let extra = probes
        .iter()
        .filter_map(|&(nr, _, _)| u32::try_from(nr).ok());
    let mut nrs = interesting_nrs(&SemSide::filter(&a), &SemSide::filter(&b), extra);
    nrs.truncate(32);
    let report = diff_filters(&a, &b, &nrs, &cfg);

    // Witness validity: replays divergently, decisions as recorded.
    for w in report.witnesses() {
        let va = decide(&a, &w.data);
        let vb = decide(&b, &w.data);
        assert!(va != vb, "witness {:?} does not diverge on replay", w.data);
        assert_eq!(va, w.old, "old-side decision drifted on {:?}", w.data);
        assert_eq!(vb, w.new, "new-side decision drifted on {:?}", w.data);
    }

    // Classification soundness on random probes.
    for s in &report.syscalls {
        for &(_, ip, args) in &probes {
            let data = SeccompData {
                nr: s.nr as i32,
                arch: AUDIT_ARCH_X86_64,
                instruction_pointer: ip,
                args,
            };
            let va = decide(&a, &data);
            let vb = decide(&b, &data);
            match s.relation {
                Relation::Equivalent => assert_eq!(
                    va, vb,
                    "claimed equivalent at nr {} but diverges on {data:?}",
                    s.nr
                ),
                Relation::Refines | Relation::Relaxes => {
                    let (SideDecision::Action(old), SideDecision::Action(new)) = (va, vb) else {
                        continue;
                    };
                    if old == new {
                        continue;
                    }
                    // precedence(): lower value = more restrictive.
                    let tightens = new.precedence() < old.precedence();
                    assert_eq!(
                        tightens,
                        s.relation == Relation::Refines,
                        "nr {} claimed {:?} but {data:?} moves {old} -> {new}",
                        s.nr,
                        s.relation
                    );
                }
                Relation::Incomparable => {}
            }
        }
    }

    // A program never witnesses against its own compiled DAG.
    let dag = CompiledDag::compile(&a, &nrs);
    let self_report = diff_filter_vs_dag(&a, &dag, &nrs, &cfg);
    assert!(
        self_report.witnesses().next().is_none(),
        "DAG diverges from its own source program"
    );
});
