//! Differential target: **specialized decision DAG vs concrete VM**.
//!
//! `CompiledDag::compile` partially evaluates a filter per syscall
//! number, folding constant comparisons into direct verdicts and
//! keeping a VM fallback only for paths it cannot close. The DAG serves
//! Draco's miss path, so any divergence from the interpreter is a
//! policy-enforcement bug. For fuzzed programs this target specializes
//! on a handful of the input-derived syscall numbers (so both
//! table-entry and unpinned-root dispatch get exercised) and demands
//! exact decision equality — action, raw return word, and error arm —
//! on every input.

use draco_bpf::{CompiledDag, Interpreter, Program, SeccompData, AUDIT_ARCH_X86_64};
use draco_fuzz::{fuzz_target, split_program_bytes, vm_inputs};

fuzz_target!(|data: &[u8]| {
    let (raw, tail) = split_program_bytes(data);
    let Ok(program) = Program::from_raw(&raw) else {
        return;
    };
    let interp = Interpreter::new(&program);
    let inputs = vm_inputs(tail, 12);
    // Pin the first few numbers into the dispatch table; the rest of the
    // inputs route through the unpinned root entry.
    let nrs: Vec<u32> = inputs
        .iter()
        .take(4)
        .filter_map(|&(nr, _, _)| u32::try_from(nr).ok())
        .collect();
    let dag = CompiledDag::compile(&program, &nrs);
    for &(nr, ip, args) in &inputs {
        let data = SeccompData {
            nr,
            arch: AUDIT_ARCH_X86_64,
            instruction_pointer: ip,
            args,
        };
        let vm = interp.run(&data);
        let specialized = dag.run(&data);
        match (&vm, &specialized) {
            (Ok(v), Ok(s)) => {
                assert_eq!(
                    (v.action, v.raw),
                    (s.action, s.raw),
                    "DAG diverges from the VM on {data:?} (pinned: {nrs:?})"
                );
            }
            (Err(v), Err(s)) => {
                assert_eq!(
                    format!("{v}"),
                    format!("{s}"),
                    "DAG faults differently from the VM on {data:?}"
                );
            }
            _ => panic!(
                "DAG and VM disagree on faulting: vm={vm:?} dag={specialized:?} on {data:?}"
            ),
        }
    }
});
