//! Differential target: **validator → interpreter vs pre-decoded
//! compiler**.
//!
//! Any byte string decodes (or fails to decode) into a cBPF program via
//! the wire format `Program::from_raw` accepts. For every program the
//! validator admits, the reference [`Interpreter`] and the pre-decoded
//! [`CompiledFilter`] must agree on *every* input — same action, same
//! raw return word, same runtime fault — and on the instruction count
//! their executions report. A divergence means the compiler changed
//! filter semantics, which for Draco is a sandbox escape.

use draco_bpf::{CompiledFilter, Interpreter, Program, SeccompData, AUDIT_ARCH_X86_64};
use draco_fuzz::{fuzz_target, split_program_bytes, vm_inputs};

fuzz_target!(|data: &[u8]| {
    let (raw, tail) = split_program_bytes(data);
    let Ok(program) = Program::from_raw(&raw) else {
        // Validator rejection is a fine outcome; it must simply not
        // panic (that is what this arm fuzzes).
        return;
    };
    let compiled = CompiledFilter::compile(&program);
    let interp = Interpreter::new(&program);
    for (nr, ip, args) in vm_inputs(tail, 16) {
        // Both the pinned x86-64 arch (the hot path) and a fuzzed arch
        // word (the mismatch path filters open with).
        for arch in [AUDIT_ARCH_X86_64, ip as u32] {
            let data = SeccompData {
                nr,
                arch,
                instruction_pointer: ip,
                args,
            };
            let a = interp.run(&data);
            let b = compiled.run(&data);
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(
                        x.action, y.action,
                        "interpreter/compiled action divergence on {data:?}"
                    );
                    assert_eq!(x.raw, y.raw, "raw return divergence on {data:?}");
                    assert_eq!(
                        x.insns_executed, y.insns_executed,
                        "cost-model divergence on {data:?}"
                    );
                }
                (Err(x), Err(y)) => {
                    assert_eq!(
                        format!("{x}"),
                        format!("{y}"),
                        "fault divergence on {data:?}"
                    );
                }
                (a, b) => panic!("one engine faulted, the other did not: {a:?} vs {b:?}"),
            }
        }
    }
});
