//! Differential target: **abstract interpretation vs concrete VM**.
//!
//! `analyze_syscall` claims, per syscall number, that a filter is
//! constant (always-allow / always-deny) or argument-dependent, and
//! that its decision reads only the argument bytes in the derived mask.
//! The claims feed Draco's SPT fast path, so an unsound verdict is a
//! security bug. For fuzzed programs and syscall numbers this target
//! checks against the concrete interpreter:
//!
//! * `AlwaysAllow` / `AlwaysDeny` ⇒ every concrete run returns exactly
//!   that action and never faults;
//! * any verdict ⇒ inputs differing only in bytes *outside* the derived
//!   mask (ip included, unless flagged `ip_dependent`) decide
//!   identically.

use draco_bpf::{analyze_syscall, Interpreter, Program, SeccompData, Verdict, AUDIT_ARCH_X86_64};
use draco_fuzz::{fuzz_target, split_program_bytes, vm_inputs};
use draco_syscalls::ArgSet;

fuzz_target!(|data: &[u8]| {
    let (raw, tail) = split_program_bytes(data);
    let Ok(program) = Program::from_raw(&raw) else {
        return;
    };
    let interp = Interpreter::new(&program);
    let inputs = vm_inputs(tail, 12);
    for &(nr, _, _) in inputs.iter().take(4) {
        let Ok(nr_u32) = u32::try_from(nr) else {
            continue;
        };
        let verdict = analyze_syscall(&program, nr_u32);
        for &(_, ip, args) in &inputs {
            let data = SeccompData {
                nr,
                arch: AUDIT_ARCH_X86_64,
                instruction_pointer: ip,
                args,
            };
            let concrete = interp.run(&data);
            match verdict.verdict {
                Verdict::AlwaysAllow => {
                    let outcome = concrete.unwrap_or_else(|e| {
                        panic!("always-allow verdict but the VM faulted ({e}) on {data:?}")
                    });
                    assert!(
                        outcome.action.permits(),
                        "always-allow verdict but the VM returned {} on {data:?}",
                        outcome.action
                    );
                }
                Verdict::AlwaysDeny(action) => {
                    let outcome = concrete.unwrap_or_else(|e| {
                        panic!("always-deny verdict but the VM faulted ({e}) on {data:?}")
                    });
                    assert_eq!(
                        outcome.action, action,
                        "always-deny({action}) verdict diverges on {data:?}"
                    );
                }
                Verdict::ArgDependent => {
                    // Mask soundness: zero the bytes the analysis says
                    // are irrelevant — the decision must not move.
                    if verdict.may_fault || verdict.ip_dependent {
                        continue;
                    }
                    let masked_args = verdict.mask.masked(&ArgSet::new(args)).as_array();
                    let masked = SeccompData {
                        nr,
                        arch: AUDIT_ARCH_X86_64,
                        instruction_pointer: 0,
                        args: masked_args,
                    };
                    let a = interp.run(&data).map(|o| o.action);
                    let b = interp.run(&masked).map(|o| o.action);
                    assert_eq!(
                        a.as_ref().ok(),
                        b.as_ref().ok(),
                        "bytes outside the derived mask changed the decision: {data:?} vs {masked:?}"
                    );
                }
            }
        }
    }
});
