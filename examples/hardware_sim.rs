//! Drive the hardware-Draco timing model directly: Table I flows,
//! Fig. 13 hit rates, and the Table III energy estimate for one run.
//!
//! ```text
//! cargo run --release --example hardware_sim [workload]
//! ```

use draco::profiles::ProfileKind;
use draco::sim::{energy, DracoHwCore, SimConfig};
use draco::workloads::{catalog, timing, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mysql".into());
    let spec = catalog::by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload `{name}`; try one of {:?}",
            catalog::all().iter().map(|w| w.name).collect::<Vec<_>>()));
    let trace = TraceGenerator::new(&spec, 7).generate(50_000);
    let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);

    let config = SimConfig::table_ii();
    let mut core = DracoHwCore::new(config.clone(), &profile)?;
    let report = core.run(&trace);

    println!("workload {name}: {} syscalls through hardware Draco", trace.len());
    println!(
        "\nexecution: {} cycles total, {} baseline, {} checking ({:+.3}%)",
        report.total_cycles,
        report.baseline_cycles,
        report.check_cycles,
        (report.normalized_overhead() - 1.0) * 100.0
    );

    println!("\nTable I execution flows:");
    let f = &report.flows;
    for (label, count, fast) in [
        ("SPT-only (no arg checks)", f.spt_only, true),
        ("1: STB hit, preload hit, access hit", f.f1, true),
        ("2: STB hit, preload hit, access miss", f.f2, false),
        ("3: STB hit, preload miss, access hit", f.f3, true),
        ("4: STB hit, preload miss, access miss", f.f4, false),
        ("5: STB miss, access hit", f.f5, true),
        ("6: STB miss, access miss", f.f6, false),
        ("fallback: VAT miss, Seccomp ran", f.fallback, false),
    ] {
        println!(
            "  {:<40} {:>8}  ({})",
            label,
            count,
            if fast { "fast" } else { "slow" }
        );
    }
    println!(
        "  fast/slow: {}/{} ({:.1}% fast)",
        f.fast(),
        f.slow(),
        f.fast() as f64 / f.total() as f64 * 100.0
    );

    println!("\nFig. 13 hit rates:");
    println!("  STB         {:.1}%", report.stb_hit_rate * 100.0);
    println!("  SLB access  {:.1}%", report.slb_access_hit_rate * 100.0);
    println!("  SLB preload {:.1}%", report.slb_preload_hit_rate * 100.0);

    let seconds = config.cycles_to_ns(report.total_cycles) / 1e9;
    let e = energy::estimate(&report.accesses, seconds);
    println!("\nTable III energy model ({:.3} ms run):", seconds * 1e3);
    println!(
        "  draco area {:.4} mm^2, leakage {:.2} mW, run energy {}",
        energy::total_area_mm2(),
        energy::total_leakage_mw(),
        e
    );
    println!("  VAT footprint: {} bytes", report.vat_footprint_bytes);
    let [l1, l2, l3] = report.cache_levels;
    println!(
        "  VAT cache traffic: L1 {}/{} hits, L2 {}/{}, L3 {}/{}",
        l1.0,
        l1.0 + l1.1,
        l2.0,
        l2.0 + l2.1,
        l3.0,
        l3.0 + l3.1
    );
    Ok(())
}
