//! §VIII generality: Draco guarding a *different* privilege transition —
//! KVM hypercalls from a guest OS into the hypervisor.
//!
//! The paper argues the Draco structures apply to any privilege-domain
//! crossing ("such as when the guest OS invokes the hypervisor through
//! hypercalls"). Nothing in the checker is syscall-specific: install a
//! whitelist over the hypercall interface and the same SPT/VAT machinery
//! caches validated `(hypercall, argument)` pairs.
//!
//! ```text
//! cargo run --release --example hypercall_guard
//! ```

use draco::bpf::SeccompAction;
use draco::core::{CheckPath, DracoChecker};
use draco::profiles::{ArgPolicy, ProfileSpec, RuleSource, SyscallRule};
use draco::syscalls::{ArgBitmask, ArgSet, SyscallRequest, SyscallTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hypercalls = SyscallTable::kvm_hypercalls();
    println!("hypercall interface: {} transitions", hypercalls.len());
    for desc in hypercalls.iter() {
        println!(
            "  {:>2}  {:<24} {} checkable args",
            desc.id().as_u16(),
            desc.name(),
            desc.checked_arg_count()
        );
    }

    // A hypervisor policy: this guest may yield, kick one specific vCPU,
    // and map GPA ranges only with attribute word 0 (shared).
    let mut policy = ProfileSpec::new("guest-7-hypercalls", SeccompAction::KillProcess);
    let kick = hypercalls.by_name("kvm_hc_kick_cpu").expect("in table");
    policy.allow(
        kick.id(),
        SyscallRule {
            // flags must be 0, apic_id must be 3.
            args: ArgPolicy::whitelist(
                kick.bitmask(),
                [ArgSet::from_slice(&[0, 3])],
            ),
            source: RuleSource::Application,
        },
    );
    let yield_ = hypercalls.by_name("kvm_hc_sched_yield").expect("in table");
    policy.allow(yield_.id(), SyscallRule::any(RuleSource::Runtime));
    let map = hypercalls.by_name("kvm_hc_map_gpa_range").expect("in table");
    policy.allow(
        map.id(),
        SyscallRule {
            // (gpa, npages) free within two observed windows; attrs == 0.
            args: ArgPolicy::whitelist(
                ArgBitmask::from_widths([8, 8, 8, 0, 0, 0]),
                [
                    ArgSet::from_slice(&[0x1000_0000, 16, 0]),
                    ArgSet::from_slice(&[0x2000_0000, 64, 0]),
                ],
            ),
            source: RuleSource::Application,
        },
    );

    let mut guard = DracoChecker::from_profile(&policy)?;
    println!("\nguest hypercall stream:");
    let stream = [
        ("sched_yield(2)", 11u16, vec![2u64]),
        ("kick_cpu(0, 3)", 5, vec![0, 3]),
        ("kick_cpu(0, 3)", 5, vec![0, 3]),
        ("map_gpa_range(0x10000000, 16, 0)", 12, vec![0x1000_0000, 16, 0]),
        ("map_gpa_range(0x10000000, 16, 0)", 12, vec![0x1000_0000, 16, 0]),
        ("kick_cpu(0, 9)  [wrong vCPU]", 5, vec![0, 9]),
        ("send_ipi(..)    [not allowed]", 10, vec![1, 0, 0, 0]),
    ];
    for (label, nr, args) in stream {
        let req = SyscallRequest::new(
            0x8000 + u64::from(nr),
            draco::syscalls::SyscallId::new(nr),
            ArgSet::from_slice(&args),
        );
        let result = guard.check(&req);
        let how = match result.path {
            CheckPath::SptHit => "SPT hit",
            CheckPath::VatHit => "VAT hit",
            CheckPath::FilterRun { insns } => {
                println!("  {:<36} -> {:<13} [checked: {insns} insns]", label, result.action);
                continue;
            }
        };
        println!("  {:<36} -> {:<13} [{how}]", label, result.action);
    }
    let stats = guard.stats();
    println!(
        "\n{} hypercalls checked, {:.0}% from Draco's cache — same machinery, new interface",
        stats.total(),
        stats.cache_hit_rate() * 100.0
    );
    Ok(())
}
