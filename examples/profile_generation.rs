//! The §X-B toolkit end to end: trace a workload, emit the three
//! application-specific profiles, compare their security statistics
//! against docker-default (paper Fig. 15), and save the complete profile
//! as JSON.
//!
//! ```text
//! cargo run --release --example profile_generation [workload]
//! ```

use draco::profiles::{
    compile_stacked, docker_default, profile_to_json, FilterLayout, ProfileKind, ProfileStats,
};
use draco::syscalls::SyscallTable;
use draco::workloads::{catalog, timing, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "redis".into());
    let spec = catalog::by_name(&name).expect("workload in catalog");
    let trace = TraceGenerator::new(&spec, 11).generate(30_000);
    println!("traced {} system calls from {name}", trace.len());

    println!(
        "\n{:<28} {:>9} {:>8} {:>8} {:>9} {:>8}",
        "profile", "#syscalls", "runtime", "app", "args-chk", "values"
    );
    let row = |label: &str, stats: &ProfileStats| {
        println!(
            "{:<28} {:>9} {:>8} {:>8} {:>9} {:>8}",
            label,
            stats.allowed_syscalls,
            stats.runtime_required,
            stats.application_specific,
            stats.args_checked,
            stats.distinct_values_allowed
        );
    };
    row("linux (no filtering)", &ProfileStats {
        allowed_syscalls: SyscallTable::shared().len(),
        ..Default::default()
    });
    row("docker-default", &ProfileStats::for_profile(&docker_default()));

    for kind in [
        ProfileKind::SyscallNoargs,
        ProfileKind::SyscallComplete,
        ProfileKind::SyscallComplete2x,
    ] {
        let profile = timing::profile_for_trace(&trace, kind);
        row(kind.label(), &ProfileStats::for_profile(&profile));
        if kind == ProfileKind::SyscallComplete {
            let stack = compile_stacked(&profile, FilterLayout::Linear)?;
            println!(
                "  -> compiles to {} filter(s), {} cBPF instructions total",
                stack.len(),
                stack.total_insns()
            );
            let json = profile_to_json(&profile);
            let path = std::env::temp_dir().join(format!("{name}-syscall-complete.json"));
            std::fs::write(&path, &json)?;
            println!("  -> saved {} bytes to {}", json.len(), path.display());
        }
    }

    println!(
        "\nFig. 15a shape: app-specific profiles allow 50-100 syscalls vs \
         docker-default's 358, with ~20% required by the container runtime."
    );
    Ok(())
}
