//! Multi-tenant scenario: several containers with different profiles on
//! one Draco machine — dedicated cores (the paper's setup) vs aggressive
//! time-sharing, plus the OS-level process view.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use draco::core::DracoOs;
use draco::profiles::ProfileKind;
use draco::sim::{Job, Machine, SimConfig};
use draco::workloads::{catalog, timing, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tenants = ["nginx", "redis", "mysql", "grep"];
    let jobs: Vec<Job> = tenants
        .iter()
        .map(|name| {
            let spec = catalog::by_name(name).expect("workload exists");
            let trace = TraceGenerator::new(&spec, 99).generate(12_000);
            let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
            Job {
                name: (*name).to_owned(),
                profile,
                trace,
            }
        })
        .collect();

    let mut config = SimConfig::table_ii();
    config.ctx_quantum_cycles = 0; // switching is driven by the scheduler below
    let machine = Machine::new(config, jobs.clone());

    println!("== dedicated cores (paper setup) ==");
    let dedicated = machine.run_dedicated(3_000)?;
    for (name, r) in &dedicated.jobs {
        println!(
            "  {:<8} overhead {:+.3}%  (STB {:.1}%, SLB {:.1}%, {} fallbacks)",
            name,
            (r.normalized_overhead() - 1.0) * 100.0,
            r.stb_hit_rate * 100.0,
            r.slb_access_hit_rate * 100.0,
            r.filter_runs
        );
    }
    println!("  {dedicated}");

    println!("\n== time-shared cores, 500-syscall quanta ==");
    let shared = machine.run_timeshared(500)?;
    for (name, r) in &shared.jobs {
        println!(
            "  {:<8} overhead {:+.3}%  ({} context switches, {} fallbacks)",
            name,
            (r.normalized_overhead() - 1.0) * 100.0,
            r.ctx_switches,
            r.filter_runs
        );
    }
    println!("  {shared}");

    // The software-OS view of the same fleet.
    println!("\n== software Draco, OS process table ==");
    let mut os = DracoOs::new();
    let mut pids = Vec::new();
    for job in &jobs {
        pids.push((job.name.clone(), os.spawn(&job.profile)?));
    }
    for (job, (_, pid)) in jobs.iter().zip(&pids) {
        for req in job.trace.requests().take(6_000) {
            os.syscall(*pid, &req)?;
        }
    }
    for (name, pid) in &pids {
        let p = os.process(*pid).expect("live");
        println!(
            "  {:<8} {} — VAT {:.1} KB",
            name,
            p.stats(),
            p.checker().vat().footprint_bytes() as f64 / 1024.0
        );
    }
    println!("  {os}");
    Ok(())
}
