//! The §IV-C locality study (paper Fig. 3): merge the macro-benchmark
//! traces, rank system calls by frequency, and show per-call argument-set
//! breakdowns and reuse distances — the evidence Draco's caching rests
//! on.
//!
//! ```text
//! cargo run --release --example locality_analysis
//! ```

use draco::workloads::{catalog, LocalityReport, SyscallTrace, TraceGenerator};

fn main() {
    let traces: Vec<SyscallTrace> = catalog::macro_benchmarks()
        .iter()
        .map(|w| TraceGenerator::new(w, 3).generate(20_000))
        .collect();
    let report = LocalityReport::analyze_merged(&traces);

    println!(
        "merged {} calls from {} macro benchmarks\n",
        report.total_calls(),
        traces.len()
    );
    println!(
        "{:<16} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>5}",
        "syscall", "freq", "set1", "set2", "set3", "other", "sets", "dist"
    );
    for row in report.rows().iter().take(20) {
        let b = &row.breakdown;
        println!(
            "{:<16} {:>6.2}% {:>5.2} {:>6.2} {:>6.2} {:>6.2} {:>6} {:>5.0}",
            row.name,
            row.fraction * 100.0,
            if b.no_arg > 0.0 { b.no_arg } else { b.top_sets[0] },
            b.top_sets[1],
            b.top_sets[2],
            b.top_sets[3] + b.top_sets[4] + b.other,
            b.distinct_sets,
            row.hot_mean_reuse_distance,
        );
    }
    println!(
        "\ntop-20 coverage: {:.1}% (paper: ~86%)",
        report.top_n_coverage(20) * 100.0
    );
    println!(
        "argument-count distribution (fraction of calls): \
         0:{:.2} 1:{:.2} 2:{:.2} 3:{:.2} 4:{:.2} 5:{:.2} 6:{:.2}",
        report.arg_count_fraction(0),
        report.arg_count_fraction(1),
        report.arg_count_fraction(2),
        report.arg_count_fraction(3),
        report.arg_count_fraction(4),
        report.arg_count_fraction(5),
        report.arg_count_fraction(6),
    );
    println!(
        "mean checkable arguments per call: {:.2}",
        report.mean_checked_args()
    );
}
