//! Quickstart: install a profile, check system calls, watch Draco cache.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use draco::core::{CheckPath, DracoChecker};
use draco::profiles::{docker_default, ProfileStats};
use draco::syscalls::{ArgSet, SyscallId, SyscallRequest, SyscallTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The policy: Docker's default seccomp profile (358 syscalls,
    //    argument checks on clone and personality).
    let profile = docker_default();
    println!("profile: {}", profile.name());
    println!("  {}", ProfileStats::for_profile(&profile));

    // 2. A software-Draco checker enforcing it.
    let mut checker = DracoChecker::from_profile(&profile)?;
    let table = SyscallTable::shared();

    // 3. Issue some system calls.
    let calls = [
        ("read", 0u16, vec![3u64, 0x7fff_0000, 4096]),
        ("read", 0, vec![3, 0x7fff_2000, 4096]), // same fd/count, new buf
        ("personality", 135, vec![0xffff_ffff]),
        ("personality", 135, vec![0xffff_ffff]),
        ("personality", 135, vec![0x1234]), // not whitelisted
        ("ptrace", 101, vec![0, 1234]),     // denied syscall
    ];
    for (name, nr, args) in calls {
        let req = SyscallRequest::new(
            0x40_1000 + u64::from(nr),
            SyscallId::new(nr),
            ArgSet::from_slice(&args),
        );
        let result = checker.check(&req);
        let path = match result.path {
            CheckPath::SptHit => "SPT hit  ",
            CheckPath::VatHit => "VAT hit  ",
            CheckPath::FilterRun { insns } => {
                println!(
                    "  {:<12} -> {:<13} [filter ran: {insns} cBPF insns]",
                    name, result.action
                );
                continue;
            }
        };
        println!("  {:<12} -> {:<13} [{path}]", name, result.action);
        let _ = table; // looked up implicitly by the checker
    }

    // 4. The locality dividend.
    let stats = checker.stats();
    println!("\n{stats}");
    println!(
        "cache hit rate: {:.0}% — the filter work Draco skipped",
        stats.cache_hit_rate() * 100.0
    );
    Ok(())
}
