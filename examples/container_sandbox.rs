//! Container sandboxing scenario: an NGINX-like server under four
//! checking regimes, reproducing the shape of the paper's Figs. 2 and 11
//! for one workload.
//!
//! ```text
//! cargo run --release --example container_sandbox
//! ```

use draco::profiles::{docker_default, ProfileKind};
use draco::sim::{DracoHwCore, SimConfig};
use draco::workloads::{catalog, timing, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = catalog::by_name("nginx").expect("nginx in catalog");
    let trace = TraceGenerator::new(&spec, 2026).generate(40_000);
    let model = timing::KernelCostModel::ubuntu_18_04();
    println!(
        "workload: {} ({} syscalls, {} distinct)",
        trace.workload(),
        trace.len(),
        timing::distinct_syscalls(&trace)
    );

    let insecure = timing::run_insecure(&trace, &model);
    println!("\n{:<32} {:>10} {:>8}", "configuration", "time (ms)", "vs insec");
    let row = |label: &str, total_ns: f64| {
        println!(
            "{:<32} {:>10.2} {:>7.3}x",
            label,
            total_ns / 1e6,
            total_ns / insecure.total_ns
        );
    };
    row("insecure (no checks)", insecure.total_ns);

    // Conventional Seccomp under three profiles.
    let docker = docker_default();
    let seccomp_docker = timing::run_seccomp(&trace, &docker, &model)?;
    row("seccomp docker-default", seccomp_docker.total_ns);

    let noargs = timing::profile_for_trace(&trace, ProfileKind::SyscallNoargs);
    row(
        "seccomp syscall-noargs",
        timing::run_seccomp(&trace, &noargs, &model)?.total_ns,
    );
    let complete = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
    row(
        "seccomp syscall-complete",
        timing::run_seccomp(&trace, &complete, &model)?.total_ns,
    );

    // Software Draco in front of the same profiles.
    row(
        "draco-sw syscall-complete",
        timing::run_draco_sw(&trace, &complete, &model)?.total_ns,
    );

    // Hardware Draco: cycle model at 2 GHz, converted to the same scale.
    let mut core = DracoHwCore::new(SimConfig::table_ii(), &complete)?;
    let hw = core.run(&trace);
    let cfg = SimConfig::table_ii();
    let hw_ns = cfg.cycles_to_ns(hw.total_cycles);
    let hw_base_ns = cfg.cycles_to_ns(hw.baseline_cycles);
    println!(
        "{:<32} {:>10.2} {:>7.3}x   (own baseline; paper Fig. 12: ~1.01x)",
        "draco-hw syscall-complete",
        hw_ns / 1e6,
        hw_ns / hw_base_ns
    );
    println!(
        "\nhardware hit rates: STB {:.1}%, SLB access {:.1}%, SLB preload {:.1}%",
        hw.stb_hit_rate * 100.0,
        hw.slb_access_hit_rate * 100.0,
        hw.slb_preload_hit_rate * 100.0
    );
    Ok(())
}
