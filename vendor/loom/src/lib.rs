//! Offline stand-in for the `loom` concurrency model checker.
//!
//! The build environment has no network access, so the workspace vendors
//! the `loom` API subset its concurrency tests use. Real loom replaces
//! `std::sync` with instrumented types and *exhaustively* enumerates
//! thread interleavings under a C11-memory-model simulator. This stand-in
//! keeps the API — `loom::model`, `loom::thread`, `loom::sync` — but runs
//! each model **many times with real OS threads** instead: a stochastic
//! smoke of the interleaving space, not a proof. Tests written against
//! this shim compile unchanged against upstream loom, so an environment
//! with the real crate gets exhaustive checking for free (swap the
//! `[patch]`/path in `Cargo.toml` and re-run `cargo test --cfg loom`).
//!
//! The iteration count defaults to [`DEFAULT_ITERATIONS`] and can be
//! raised via the `LOOM_MAX_PREEMPTIONS`-adjacent env var
//! `LOOM_SHIM_ITERATIONS` (the shim repurposes it as "runs per model").

#![forbid(unsafe_code)]

/// Iterations each [`model`] runs when `LOOM_SHIM_ITERATIONS` is unset.
pub const DEFAULT_ITERATIONS: usize = 256;

/// Synchronization primitives, re-exported from `std`. Upstream loom
/// substitutes instrumented versions; the shim runs the real ones.
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard,
        RwLockWriteGuard};

    /// Atomic types and fences.
    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

/// Thread spawning, re-exported from `std`.
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// Cell types. Upstream loom's `UnsafeCell` has a checked access API;
/// the workspace forbids `unsafe` and never uses it, so only the safe
/// types are re-exported.
pub mod cell {
    pub use std::cell::{Cell, RefCell};
}

/// Runs a concurrency model.
///
/// Upstream loom explores every interleaving the memory model allows.
/// This shim executes the closure `LOOM_SHIM_ITERATIONS` (default
/// [`DEFAULT_ITERATIONS`]) times with real threads, so races are probed
/// stochastically rather than exhaustively — honest smoke coverage, and
/// the scheduler noise of repeated runs does shake out torn-read and
/// ordering bugs in practice.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iterations = std::env::var("LOOM_SHIM_ITERATIONS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_ITERATIONS);
    for _ in 0..iterations {
        f();
    }
}

/// Model-building API surface (`loom::model::Builder`) for tests that
/// tune preemption bounds. The shim maps `max_threads`/`preemption`
/// knobs onto nothing and only honours the iteration behaviour.
pub mod model {
    /// Configurable model runner (API-compatible skeleton).
    #[derive(Debug, Default, Clone)]
    pub struct Builder {
        /// Upstream: bound on preemptions explored. Ignored by the shim.
        pub preemption_bound: Option<usize>,
        /// Upstream: max threads per model. Ignored by the shim.
        pub max_threads: usize,
    }

    impl Builder {
        /// Creates a builder with default settings.
        pub fn new() -> Self {
            Self::default()
        }

        /// Runs the model (same stochastic semantics as [`super::model`]).
        pub fn check<F>(&self, f: F)
        where
            F: Fn() + Sync + Send + 'static,
        {
            super::model(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_closure_many_times() {
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        super::model(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert!(count.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn model_spawns_real_threads() {
        let seen = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&seen);
        super::model(move || {
            let s2 = Arc::clone(&s);
            let h = super::thread::spawn(move || s2.fetch_add(1, Ordering::Relaxed));
            h.join().unwrap();
        });
        assert!(seen.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn builder_check_works() {
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        super::model::Builder::new().check(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert!(count.load(Ordering::Relaxed) >= 1);
    }
}
