//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use (`criterion_group!`,
//! `criterion_main!`, `Criterion`, `BenchmarkGroup`, `BenchmarkId`,
//! `Throughput`, `Bencher::iter`) backed by a simple wall-clock measurement
//! loop: short warmup, then timed batches until a minimum measurement window
//! is filled, reporting mean ns/iter. No statistics, plots, or persistence —
//! just honest relative numbers so `cargo bench` works without the network.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 16;
const MIN_MEASURE: Duration = Duration::from_millis(20);
const BATCH: u64 = 64;
const MAX_ITERS: u64 = 2_000_000;

/// Top-level bench context handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchLabel>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(None, &id.into().0, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchLabel>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(Some(&self.name), &id.into().0, f);
        self
    }

    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter, e.g. `table/48`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Internal label newtype so `bench_function` accepts both `&str` and
/// `BenchmarkId`.
pub struct BenchLabel(String);

impl From<&str> for BenchLabel {
    fn from(s: &str) -> Self {
        BenchLabel(s.to_string())
    }
}

impl From<String> for BenchLabel {
    fn from(s: String) -> Self {
        BenchLabel(s)
    }
}

impl From<BenchmarkId> for BenchLabel {
    fn from(id: BenchmarkId) -> Self {
        BenchLabel(id.label)
    }
}

/// Declared throughput of a benchmark (accepted and ignored).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < MIN_MEASURE && iters < MAX_ITERS {
            for _ in 0..BATCH {
                black_box(routine());
            }
            iters += BATCH;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(group: Option<&str>, label: &str, mut f: F) {
    let full = match group {
        Some(g) => format!("{g}/{label}"),
        None => label.to_string(),
    };
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let ns_per_iter = if b.iters == 0 {
        f64::NAN
    } else {
        b.elapsed.as_nanos() as f64 / b.iters as f64
    };
    println!("{full:<48} time: {ns_per_iter:>12.2} ns/iter  ({} iters)", b.iters);
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (`--bench`,
            // `--test`, filters); this minimal harness accepts and ignores
            // them. Under `cargo test` (no `--bench`), skip measurement so
            // bench targets compile-check quickly.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
