//! Offline stand-in for the `serde` crate.
//!
//! Instead of upstream's visitor-based zero-copy data model, this stub uses a
//! simple owned **content tree** ([`Content`]): `Serialize` lowers a value
//! into the tree and `Deserialize` rebuilds a value from it. The companion
//! `serde_derive` stub generates impls of these traits for plain
//! named-field structs, and the `serde_json` stub converts the tree to and
//! from JSON text. The API surface (trait names, derive attribute grammar)
//! matches the subset of upstream serde the workspace uses, so the
//! workspace's source code is unchanged.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing interchange tree both traits speak.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Insertion-ordered map (struct field order / JSON document order).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up a key in a `Map`; `None` for absent keys or non-maps.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "boolean",
            Content::U64(_) | Content::I64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// Deserialization error: a plain message, like `serde::de::Error::custom`.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    pub fn missing_field(field: &str) -> Self {
        DeError::custom(format!("missing field `{field}`"))
    }

    pub fn invalid_type(expected: &str, got: &Content) -> Self {
        DeError::custom(format!("invalid type: expected {expected}, found {}", got.type_name()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn to_content(&self) -> Content;
}

pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let raw = match content {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => *v as u64,
                    other => return Err(DeError::invalid_type("unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let raw = match content {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::custom(format!("integer {v} out of range")))?,
                    Content::F64(v) if v.fract() == 0.0 => *v as i64,
                    other => return Err(DeError::invalid_type("integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(DeError::invalid_type("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::invalid_type("boolean", other)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::invalid_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::invalid_type("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let items = match content {
            Content::Seq(items) => items,
            other => return Err(DeError::invalid_type("array", other)),
        };
        let parsed: Vec<T> = items.iter().map(T::from_content).collect::<Result<_, _>>()?;
        let len = parsed.len();
        parsed
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u16::from_content(&42u16.to_content()), Ok(42));
        assert_eq!(i32::from_content(&(-9i32).to_content()), Ok(-9));
        assert_eq!(String::from_content(&"hi".to_content()), Ok("hi".to_string()));
        assert_eq!(Option::<u64>::from_content(&Content::Null), Ok(None));
        assert_eq!(<[u64; 3]>::from_content(&[1u64, 2, 3].to_content()), Ok([1, 2, 3]));
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u8::from_content(&Content::Str("x".into())).is_err());
        assert!(u8::from_content(&Content::U64(300)).is_err());
        assert!(<Vec<u64>>::from_content(&Content::Bool(true)).is_err());
    }
}
