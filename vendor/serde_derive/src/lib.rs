//! Offline stand-in for `serde_derive`.
//!
//! Upstream serde_derive pulls in `syn`/`quote`, which are unavailable in
//! this offline build, so this stub parses the token stream by hand. It
//! supports exactly what the workspace needs: **plain named-field structs**
//! (no generics, enums, or tuple structs) and the attribute subset
//! `#[serde(rename_all = "camelCase")]`, `#[serde(default)]`, and
//! `#[serde(skip_serializing_if = "Option::is_none")]`. Anything else
//! panics at compile time with a clear message rather than silently
//! misbehaving.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct FieldDef {
    name: String,
    key: String,
    is_option: bool,
    has_default: bool,
    skip_if_none: bool,
}

struct StructDef {
    name: String,
    fields: Vec<FieldDef>,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let mut body = String::new();
    for f in &def.fields {
        let push = format!(
            "__fields.push((\"{key}\".to_string(), ::serde::Serialize::to_content(&self.{name})));",
            key = f.key,
            name = f.name
        );
        if f.skip_if_none {
            body.push_str(&format!(
                "if !::std::option::Option::is_none(&self.{name}) {{ {push} }}\n",
                name = f.name
            ));
        } else {
            body.push_str(&push);
            body.push('\n');
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Content)> =\n\
                     ::std::vec::Vec::new();\n\
                 {body}\
                 ::serde::Content::Map(__fields)\n\
             }}\n\
         }}",
        name = def.name
    )
    .parse()
    .expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let mut inits = String::new();
    for f in &def.fields {
        let missing = if f.has_default || f.is_option {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::DeError::missing_field(\"{key}\"))",
                key = f.key
            )
        };
        inits.push_str(&format!(
            "{name}: match __map.iter().find(|(__k, _)| __k == \"{key}\") {{\n\
                 ::std::option::Option::Some((_, __v)) => ::serde::Deserialize::from_content(__v)?,\n\
                 ::std::option::Option::None => {missing},\n\
             }},\n",
            name = f.name,
            key = f.key
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(__content: &::serde::Content)\n\
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let __map = match __content {{\n\
                     ::serde::Content::Map(__m) => __m,\n\
                     __other => return ::std::result::Result::Err(\n\
                         ::serde::DeError::invalid_type(\"object\", __other)),\n\
                 }};\n\
                 ::std::result::Result::Ok({name} {{\n\
                     {inits}\
                 }})\n\
             }}\n\
         }}",
        name = def.name
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl parses")
}

/// Attributes found in one `#[serde(...)]` (or other) attribute group.
#[derive(Default)]
struct AttrFlags {
    rename_all_camel: bool,
    has_default: bool,
    skip_if_none: bool,
}

fn parse_struct(input: TokenStream) -> StructDef {
    let mut iter = input.into_iter().peekable();
    let mut container = AttrFlags::default();

    // Container: attributes, visibility, `struct Name`.
    let name = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let group = match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                    other => panic!("serde_derive: malformed attribute: {other:?}"),
                };
                inspect_attr(&group, &mut container);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => break n.to_string(),
                    other => panic!("serde_derive: expected struct name, got {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) => {
                panic!("serde_derive: only structs are supported, found `{id}`")
            }
            other => panic!("serde_derive: unexpected token {other:?}"),
        }
    };

    let fields_group = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!(
            "serde_derive: only named-field structs are supported (struct {name}, found {other:?})"
        ),
    };

    StructDef {
        fields: parse_fields(fields_group.stream(), container.rename_all_camel),
        name,
    }
}

fn parse_fields(stream: TokenStream, rename_all_camel: bool) -> Vec<FieldDef> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        // Field attributes (doc comments included).
        let mut flags = AttrFlags::default();
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    match iter.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                            inspect_attr(&g, &mut flags)
                        }
                        other => panic!("serde_derive: malformed field attribute: {other:?}"),
                    }
                }
                Some(_) => break,
                None => return fields,
            }
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = iter.peek() {
            if id.to_string() == "pub" {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after `{name}`, got {other:?}"),
        }
        // Type: consume until a comma at angle-bracket depth zero. Only the
        // head identifier matters (to spot `Option<...>` fields).
        let mut angle_depth = 0i32;
        let mut head: Option<String> = None;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    iter.next();
                    break;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    iter.next();
                }
                Some(tt) => {
                    if head.is_none() {
                        if let TokenTree::Ident(id) = tt {
                            head = Some(id.to_string());
                        }
                    }
                    iter.next();
                }
                None => break,
            }
        }
        let key = if rename_all_camel { camel_case(&name) } else { name.clone() };
        fields.push(FieldDef {
            is_option: head.as_deref() == Some("Option"),
            has_default: flags.has_default,
            skip_if_none: flags.skip_if_none,
            name,
            key,
        });
    }
}

/// Inspects one bracketed attribute body. Non-`serde` attributes (doc
/// comments, other derives) are ignored; unsupported `serde` options panic.
fn inspect_attr(group: &proc_macro::Group, flags: &mut AttrFlags) {
    let mut iter = group.stream().into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let args = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        other => panic!("serde_derive: malformed #[serde] attribute: {other:?}"),
    };
    let mut args = args.stream().into_iter().peekable();
    while let Some(tt) = args.next() {
        let TokenTree::Ident(id) = &tt else {
            continue; // separators: `,` `=`
        };
        match id.to_string().as_str() {
            "default" => flags.has_default = true,
            "rename_all" => {
                let value = expect_str_value(&mut args, "rename_all");
                if value != "camelCase" {
                    panic!("serde_derive: unsupported rename_all value {value:?}");
                }
                flags.rename_all_camel = true;
            }
            "skip_serializing_if" => {
                let value = expect_str_value(&mut args, "skip_serializing_if");
                if value != "Option::is_none" {
                    panic!("serde_derive: unsupported skip_serializing_if {value:?}");
                }
                flags.skip_if_none = true;
            }
            other => panic!("serde_derive: unsupported serde attribute `{other}`"),
        }
    }
}

fn expect_str_value(
    iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
    what: &str,
) -> String {
    match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
        other => panic!("serde_derive: expected `=` after {what}, got {other:?}"),
    }
    match iter.next() {
        Some(TokenTree::Literal(lit)) => {
            let s = lit.to_string();
            s.trim_matches('"').to_string()
        }
        other => panic!("serde_derive: expected string value for {what}, got {other:?}"),
    }
}

fn camel_case(snake: &str) -> String {
    let mut out = String::with_capacity(snake.len());
    let mut upper_next = false;
    for ch in snake.chars() {
        if ch == '_' {
            upper_next = true;
        } else if upper_next {
            out.extend(ch.to_uppercase());
            upper_next = false;
        } else {
            out.push(ch);
        }
    }
    out
}
