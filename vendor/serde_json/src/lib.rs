//! Offline stand-in for the `serde_json` crate.
//!
//! Bridges JSON text to the vendored `serde` stub's [`serde::Content`] tree:
//! a hand-written recursive-descent parser on one side and a
//! compact/pretty printer on the other, plus the [`Value`] convenience type
//! and a `json!` macro covering the object/expression forms the workspace
//! uses. Object key order is preserved (insertion order), so output is
//! deterministic run to run.

#![forbid(unsafe_code)]

use serde::{Content, DeError, Deserialize, Serialize};

/// Parse/serialize error. Mirrors `serde_json::Error` closely enough for the
/// workspace's error-wrapping enums (`Display` + `std::error::Error`).
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Exact numeric repr so `u64::MAX` and friends survive a round trip.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::PosInt(v) => *v as f64,
            Number::NegInt(v) => *v as f64,
            Number::Float(v) => *v,
        }
    }
}

/// Owned JSON document, mirroring `serde_json::Value`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered, like serde_json with `preserve_order`.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v),
            Value::Number(Number::Float(f)) if f.fract() == 0.0 && *f >= 0.0 => Some(*f as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(v)) => i64::try_from(*v).ok(),
            Value::Number(Number::NegInt(v)) => Some(*v),
            Value::Number(Number::Float(f)) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&write_content(&self.to_content(), None))
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::PosInt(v)) => Content::U64(*v),
            Value::Number(Number::NegInt(v)) => Content::I64(*v),
            Value::Number(Number::Float(v)) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Serialize::to_content).collect()),
            Value::Object(entries) => Content::Map(
                entries.iter().map(|(k, v)| (k.clone(), v.to_content())).collect(),
            ),
        }
    }
}

impl Deserialize for Value {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(match content {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::U64(v) => Value::Number(Number::PosInt(*v)),
            Content::I64(v) if *v >= 0 => Value::Number(Number::PosInt(*v as u64)),
            Content::I64(v) => Value::Number(Number::NegInt(*v)),
            Content::F64(v) => Value::Number(Number::Float(*v)),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(
                items.iter().map(Value::from_content).collect::<Result<_, _>>()?,
            ),
            Content::Map(entries) => Value::Object(
                entries
                    .iter()
                    .map(|(k, v)| Value::from_content(v).map(|v| (k.clone(), v)))
                    .collect::<Result<_, _>>()?,
            ),
        })
    }
}

/// Converts any serializable value into a [`Value`] (infallible here; the
/// content tree is already self-describing). Used by the `json!` macro.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    Value::from_content(&value.to_content()).expect("content -> value is total")
}

pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let content = Parser::new(input).parse_document()?;
    Ok(T::from_content(&content)?)
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write_content(&value.to_content(), None))
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write_content(&value.to_content(), Some(0)))
}

#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __entries: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $(__entries.push(($key.to_string(), $crate::to_value(&$value)));)*
        $crate::Value::Object(__entries)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Serializes a content tree. `indent = None` is compact; `Some(depth)`
/// pretty-prints with two-space indentation (serde_json's default style).
fn write_content(content: &Content, indent: Option<usize>) -> String {
    let mut out = String::new();
    write_into(&mut out, content, indent);
    out
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_into(out: &mut String, content: &Content, indent: Option<usize>) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match indent {
                    Some(depth) => {
                        newline_indent(out, depth + 1);
                        write_into(out, item, Some(depth + 1));
                    }
                    None => write_into(out, item, None),
                }
            }
            if let Some(depth) = indent {
                newline_indent(out, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match indent {
                    Some(depth) => {
                        newline_indent(out, depth + 1);
                        write_escaped(out, key);
                        out.push_str(": ");
                        write_into(out, value, Some(depth + 1));
                    }
                    None => {
                        write_escaped(out, key);
                        out.push(':');
                        write_into(out, value, None);
                    }
                }
            }
            if let Some(depth) = indent {
                newline_indent(out, depth);
            }
            out.push('}');
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        if v.fract() == 0.0 && v.abs() < 1e15 {
            // Match serde_json: floats always carry a decimal point.
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&v.to_string());
        }
    } else {
        // serde_json emits null for non-finite floats.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { bytes: input.as_bytes(), pos: 0 }
    }

    fn parse_document(&mut self) -> Result<Content, Error> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(value)
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected character `{}`", b as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len()
                        && self.bytes[end] & 0xc0 == 0x80
                    {
                        end += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return Err(self.err("invalid utf-8")),
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| self.err("invalid number"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|v| i64::try_from(v).ok().map(|v| Content::I64(-v)))
                .or_else(|| text.parse::<f64>().ok().map(Content::F64))
                .ok_or_else(|| self.err("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .or_else(|_| text.parse::<f64>().map(Content::F64))
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\\n\""] {
            let v: Value = from_str(text).expect(text);
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).expect("reparse");
            assert_eq!(v, v2, "{text}");
        }
    }

    #[test]
    fn object_order_preserved() {
        let v: Value = from_str(r#"{"b": 1, "a": [2, 3], "c": {"x": null}}"#).unwrap();
        assert_eq!(to_string(&v).unwrap(), r#"{"b":1,"a":[2,3],"c":{"x":null}}"#);
        assert_eq!(v["a"][1].as_u64(), Some(3));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn pretty_printing_shape() {
        let v = json!({"k": 1, "list": [true]});
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"k\": 1,\n  \"list\": [\n    true\n  ]\n}");
    }

    #[test]
    fn json_macro_forms() {
        let rows = vec![1u64, 2, 3];
        let v = json!({
            "name": "x",
            "rows": rows.iter().map(|r| json!({"v": r})).collect::<Vec<_>>(),
            "opt": if rows.len() > 2 { Some(9u64) } else { None },
        });
        assert_eq!(v["rows"].as_array().unwrap().len(), 3);
        assert_eq!(v["rows"][2]["v"].as_u64(), Some(3));
        assert_eq!(v["opt"].as_u64(), Some(9));
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(2.5).as_f64(), Some(2.5));
    }

    #[test]
    fn errors_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn float_formatting() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }
}
