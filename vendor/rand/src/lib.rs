//! Offline stand-in for the `rand` crate (0.8-compatible API subset).
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the handful of `rand` APIs it actually uses. The
//! generator is a deterministic xoshiro256++ seeded through SplitMix64 —
//! statistically solid and stable across runs, which is what the workspace's
//! determinism tests require. Exact stream compatibility with the upstream
//! crate is *not* promised (and nothing in the workspace depends on it).

#![forbid(unsafe_code)]

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface. Only `seed_from_u64` is provided; it is the only
/// constructor the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling interface, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be drawn uniformly from their "natural" distribution
/// (the `Standard` distribution in upstream `rand`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, as upstream does.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same family upstream `SmallRng` uses on 64-bit
    /// targets. Seeded via SplitMix64 like upstream.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(0u32..=4);
            assert!(w <= 4);
        }
    }
}
