//! Offline stand-in for the `proptest` crate.
//!
//! Implements the `Strategy` combinator surface the workspace's property
//! tests use (`proptest!`, `prop_oneof!`, `prop_assert*!`, `Just`, `any`,
//! ranges, tuples, `collection::vec`, `array::uniform6`, `option::of`,
//! `.prop_map`) on top of a deterministic SplitMix64 generator. There is no
//! shrinking: a failing case panics with the case number so it can be
//! re-run deterministically. Case counts honor
//! `ProptestConfig::with_cases`.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// Failure raised by `prop_assert!`-style macros inside a proptest body.
#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => f.write_str(msg),
        }
    }
}

/// Per-test configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; keep the stub snappy but meaningful.
        ProptestConfig { cases: 96 }
    }
}

pub mod test_runner {
    pub use crate::ProptestConfig as Config;

    /// Deterministic SplitMix64 stream; every test run sees the same cases.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic() -> Self {
            TestRng { state: 0x3243_f6a8_885a_308d }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform index in `[0, n)` (for choosing union arms / lengths).
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "cannot sample from empty set");
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use super::Rc;

    /// Value generator. Unlike upstream there is no intermediate value
    /// tree (no shrinking); a strategy simply samples values.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// `prop_oneof!`: uniform choice between boxed arms. `Rc` makes the
    /// union cheaply cloneable, which the workspace relies on
    /// (`strategy.clone()` inside larger unions).
    pub struct Union<T> {
        arms: Rc<Vec<BoxedStrategy<T>>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            Union { arms: Rc::new(arms) }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { arms: Rc::clone(&self.arms) }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].sample(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (start as i128 + offset) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::PhantomData;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn generate(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn generate(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn generate(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<A>(PhantomData<A>);

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn sample(&self, rng: &mut TestRng) -> A {
            A::generate(rng)
        }
    }

    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::Range;

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod array {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    #[derive(Clone, Debug)]
    pub struct Uniform6<S>(S);

    impl<S: Strategy> Strategy for Uniform6<S> {
        type Value = [S::Value; 6];

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            [
                self.0.sample(rng),
                self.0.sample(rng),
                self.0.sample(rng),
                self.0.sample(rng),
                self.0.sample(rng),
                self.0.sample(rng),
            ]
        }
    }

    pub fn uniform6<S: Strategy>(element: S) -> Uniform6<S> {
        Uniform6(element)
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            // Bias toward Some, like upstream's default (p = 0.75).
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); ) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            $(let $arg = $strategy;)+
            // Shadow the strategies with per-case samples inside the loop.
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$arg, &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__err) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        __case + 1, __config.cases, __err
                    );
                }
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {{
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __left, __right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __left, __right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if __left == __right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), __left
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..500 {
            let v = Strategy::sample(&(3u16..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::sample(&(-4i32..=4), &mut rng);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let cloned = strat.clone();
        let mut rng = TestRng::deterministic();
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::sample(&cloned, &mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro supports configs, doc comments, and multiple args.
        #[test]
        fn macro_end_to_end(
            xs in crate::collection::vec(0u32..50, 1..10),
            pair in (any::<u8>(), crate::option::of(0u64..5)),
            arr in crate::array::uniform6(0u64..12),
        ) {
            prop_assert!(!xs.is_empty(), "vec length respects range");
            prop_assert!(xs.iter().all(|&x| x < 50));
            if let Some(v) = pair.1 {
                prop_assert!(v < 5);
            }
            prop_assert_eq!(arr.len(), 6);
            prop_assert!(arr.iter().all(|&a| a < 12));
        }

        #[test]
        fn map_applies(v in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 20);
        }
    }
}
